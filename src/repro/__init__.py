"""repro — reproduction of "ESTIMA: Extrapolating ScalabiliTy of In-Memory Applications".

The package is organised in layers:

* :mod:`repro.core` — the ESTIMA tool itself: stalled-cycle extrapolation,
  the time-extrapolation baseline, weak scaling, plugins.
* :mod:`repro.machine` — parametric models of the paper's machines (topology,
  caches, memory system, performance-counter catalogues).
* :mod:`repro.sync` — synchronization substrates (locks, barriers, STM,
  lock-free retries) that produce software stalls.
* :mod:`repro.workloads` — the 21 evaluation workloads plus memcached and
  SQLite/TPC-C as parametric demand models.
* :mod:`repro.simulation` — composes workloads with machines into the stall
  counters and execution times ESTIMA consumes.
* :mod:`repro.runner` — measurement campaigns over workloads x machines.
* :mod:`repro.analysis` — correlation studies, bottleneck identification and
  paper-style report tables.

Quickstart::

    from repro import EstimaPredictor, MachineSimulator, get_machine, get_workload

    machine = get_machine("opteron48")
    measurements = MachineSimulator(machine).sweep(get_workload("intruder"))
    prediction = EstimaPredictor().predict(
        measurements.restrict_to(12), target_cores=48
    )
    print(prediction.summary())
"""

from .core import (
    EstimaConfig,
    EstimaPredictor,
    Measurement,
    MeasurementSet,
    PluginSet,
    ScalabilityPrediction,
    StallPlugin,
    TimeExtrapolation,
)
from .machine import MachineSpec, get_machine
from .simulation import MachineSimulator, SimulationResult
from .workloads import Workload, WorkloadProfile, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "EstimaConfig",
    "EstimaPredictor",
    "MachineSimulator",
    "MachineSpec",
    "Measurement",
    "MeasurementSet",
    "PluginSet",
    "ScalabilityPrediction",
    "SimulationResult",
    "StallPlugin",
    "TimeExtrapolation",
    "Workload",
    "WorkloadProfile",
    "__version__",
    "get_machine",
    "get_workload",
    "workload_names",
]
