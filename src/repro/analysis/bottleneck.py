"""Bottleneck identification from extrapolated stall categories (Section 4.6).

ESTIMA is primarily a scalability predictor, but the same per-category
extrapolations reveal *which* stall source will dominate at higher core
counts.  The paper's workflow is:

1. extrapolate stalls, look at the categories that grow fastest / dominate at
   the target core count;
2. attribute those categories to code sites (the paper uses ``perf``; the
   simulation substrate attributes synchronization categories to the
   synchronization model that produced them);
3. apply the suggested fix (cheaper locks for streamcluster, coarser decode
   batching for intruder) and re-measure.

:class:`BottleneckReport` implements steps 1-2 on a
:class:`~repro.core.result.ScalabilityPrediction`, and
:func:`optimization_improvement` quantifies step 3 by comparing the original
and optimized workload variants (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.measurement import MeasurementSet
from repro.core.result import ScalabilityPrediction

__all__ = ["CategoryGrowth", "BottleneckReport", "optimization_improvement"]

#: Known attribution of stall categories to the code level responsible for
#: them.  Hardware categories map to micro-architectural resources; software
#: categories map to the synchronization construct whose runtime reported them.
CATEGORY_HINTS: Mapping[str, str] = {
    "stm_aborted_tx_cycles": "aborted STM transactions (contended shared data structure)",
    "lock_spin_cycles": "spinning on busy locks",
    "lock_block_cycles": "blocking on pthread mutexes / trylock loops",
    "barrier_wait_cycles": "waiting at barriers (load imbalance or barrier protocol)",
    "cas_retry_cycles": "failed compare-and-swap retries",
    "dispatch_stall_reorder_buffer_full": "long-latency memory accesses (cache misses, NUMA)",
    "resource_stalls_rob": "long-latency memory accesses (cache misses, NUMA)",
    "dispatch_stall_ls_full": "store/write-bandwidth pressure",
    "resource_stalls_sb": "store/write-bandwidth pressure",
    "dispatch_stall_reservation_station_full": "dependency chains starving the scheduler",
    "resource_stalls_rs": "dependency chains starving the scheduler",
    "dispatch_stall_fpu_full": "floating-point unit pressure",
    "dispatch_stall_branch_abort": "branch mispredictions",
    "stall_iq_full": "pipeline-recovery backpressure",
    "resource_stalls_any": "generic allocation backpressure",
}


@dataclass(frozen=True)
class CategoryGrowth:
    """How one stall category evolves between the measured and target core counts."""

    category: str
    value_at_measured: float
    value_at_target: float
    share_at_target: float
    hint: str

    @property
    def growth_factor(self) -> float:
        if self.value_at_measured <= 0.0:
            return float("inf") if self.value_at_target > 0 else 1.0
        return self.value_at_target / self.value_at_measured


@dataclass(frozen=True)
class BottleneckReport:
    """Ranked stall categories at the prediction target."""

    workload: str
    measured_cores: int
    target_cores: int
    growths: tuple[CategoryGrowth, ...]

    @classmethod
    def from_prediction(cls, prediction: ScalabilityPrediction) -> "BottleneckReport":
        measured_cores = prediction.measured.max_cores
        target = prediction.target_cores
        values_target = {
            name: float(max(res.predict(target), 0.0))
            for name, res in prediction.category_extrapolations.items()
        }
        total = sum(values_target.values())
        growths = []
        for name, res in prediction.category_extrapolations.items():
            at_measured = float(max(res.predict(measured_cores), 0.0))
            at_target = values_target[name]
            growths.append(
                CategoryGrowth(
                    category=name,
                    value_at_measured=at_measured,
                    value_at_target=at_target,
                    share_at_target=(at_target / total) if total > 0 else 0.0,
                    hint=CATEGORY_HINTS.get(name, "application-specific stalls"),
                )
            )
        growths.sort(key=lambda g: g.value_at_target, reverse=True)
        return cls(
            workload=prediction.workload,
            measured_cores=measured_cores,
            target_cores=target,
            growths=tuple(growths),
        )

    def dominant(self, top: int = 3) -> tuple[CategoryGrowth, ...]:
        """The categories contributing most at the target core count."""
        return self.growths[:top]

    def fastest_growing(self, top: int = 3) -> tuple[CategoryGrowth, ...]:
        """The categories growing fastest between measurement and target."""
        ranked = sorted(self.growths, key=lambda g: g.growth_factor, reverse=True)
        return tuple(ranked[:top])

    def format_report(self, top: int = 5) -> str:
        lines = [
            f"Bottleneck report for {self.workload} "
            f"(measured {self.measured_cores} cores, target {self.target_cores}):"
        ]
        for growth in self.dominant(top):
            lines.append(
                f"  {growth.category:<42s} {growth.share_at_target * 100:5.1f}% of stalls, "
                f"x{growth.growth_factor:.1f} vs {self.measured_cores} cores — {growth.hint}"
            )
        return "\n".join(lines)


def optimization_improvement(
    original: MeasurementSet, optimized: MeasurementSet, *, core_counts: Sequence[int] | None = None
) -> dict[int, float]:
    """Execution-time improvement (percent) of the optimized variant per core count.

    Reproduces the Figure-11 comparison: positive values mean the optimized
    application is faster at that core count.
    """
    if core_counts is None:
        core_counts = [int(c) for c in original.cores if c in set(int(x) for x in optimized.cores)]
    improvements: dict[int, float] = {}
    for cores in core_counts:
        before = original.time_at(int(cores))
        after = optimized.time_at(int(cores))
        improvements[int(cores)] = float((before - after) / before * 100.0)
    return improvements
