"""Correlation studies between stalled cycles per core and execution time.

Section 5.1 of the paper validates ESTIMA's central assumption — that stalled
cycles per core track execution time — by measuring both over full machines
and reporting their Pearson correlation for every workload (Table 5).
Section 5.2 repeats the exercise with frontend stalls added (Table 6) to show
they contribute nothing, and Section 5.3 with and without software stalls
(Figure 14).

These helpers compute exactly those numbers from measurement sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.measurement import MeasurementSet
from repro.core.metrics import pearson_correlation

__all__ = [
    "stalls_time_correlation",
    "frontend_correlation_delta",
    "CorrelationStudy",
    "CorrelationRow",
]


def stalls_time_correlation(
    measurements: MeasurementSet,
    *,
    software: bool = True,
    frontend: bool = False,
) -> float:
    """Pearson correlation of stalled cycles per core with execution time."""
    spc = measurements.stalls_per_core(software=software, frontend=frontend)
    return pearson_correlation(spc, measurements.times)


def frontend_correlation_delta(measurements: MeasurementSet, *, software: bool = True) -> float:
    """Correlation change (percentage points x100 of correlation) from adding frontend stalls.

    Positive values mean frontend stalls improved the correlation; the paper's
    Table 6 shows the average is ~zero or negative, justifying their exclusion.
    Returned in percent, like the paper ("improvement over backend-only (%)").
    """
    base = stalls_time_correlation(measurements, software=software, frontend=False)
    with_frontend = stalls_time_correlation(measurements, software=software, frontend=True)
    if base == 0.0:
        return 0.0
    return float((with_frontend - base) / abs(base) * 100.0)


@dataclass(frozen=True)
class CorrelationRow:
    """One workload's correlations on one machine."""

    workload: str
    machine: str
    correlation: float
    correlation_hw_only: float
    correlation_with_frontend: float

    @property
    def frontend_improvement_pct(self) -> float:
        if self.correlation == 0.0:
            return 0.0
        return float(
            (self.correlation_with_frontend - self.correlation) / abs(self.correlation) * 100.0
        )


@dataclass(frozen=True)
class CorrelationStudy:
    """Table-5 / Table-6 style correlation summary over many workloads."""

    rows: tuple[CorrelationRow, ...]

    @classmethod
    def from_measurements(
        cls, measurement_sets: Iterable[MeasurementSet]
    ) -> "CorrelationStudy":
        rows = []
        for ms in measurement_sets:
            rows.append(
                CorrelationRow(
                    workload=ms.workload,
                    machine=ms.machine,
                    correlation=stalls_time_correlation(ms, software=True),
                    correlation_hw_only=stalls_time_correlation(ms, software=False),
                    correlation_with_frontend=stalls_time_correlation(
                        ms, software=True, frontend=True
                    ),
                )
            )
        return cls(rows=tuple(rows))

    def correlations(self) -> np.ndarray:
        return np.asarray([row.correlation for row in self.rows], dtype=float)

    def average(self) -> float:
        return float(np.mean(self.correlations()))

    def minimum(self) -> float:
        return float(np.min(self.correlations()))

    def std(self) -> float:
        return float(np.std(self.correlations()))

    def frontend_improvements(self) -> np.ndarray:
        return np.asarray([row.frontend_improvement_pct for row in self.rows], dtype=float)

    def by_workload(self) -> Mapping[str, CorrelationRow]:
        return {row.workload: row for row in self.rows}

    def format_table(self) -> str:
        header = f"{'Benchmark':<18s} {'corr':>6s} {'hw-only':>8s} {'+frontend %':>12s}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workload:<18s} {row.correlation:>6.2f} {row.correlation_hw_only:>8.2f} "
                f"{row.frontend_improvement_pct:>12.2f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<18s} {self.average():>6.2f} "
            f"{np.mean([r.correlation_hw_only for r in self.rows]):>8.2f} "
            f"{np.mean(self.frontend_improvements()):>12.2f}"
        )
        return "\n".join(lines)
