"""Paper-style report formatting.

The benchmark harness regenerates every table and figure of the evaluation;
this module owns the shared formatting so benches print rows that read like
the paper's tables (benchmark name, per-target errors, summary statistics) and
figure series (core count vs value pairs) in a stable, diffable layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["figure_series", "comparison_table", "PaperComparison", "format_paper_comparison"]


def figure_series(
    title: str,
    cores: Sequence[int] | np.ndarray,
    series: Mapping[str, Sequence[float] | np.ndarray],
    *,
    unit: str = "s",
) -> str:
    """Render one figure as aligned text columns (cores + one column per curve)."""
    cores = np.asarray(cores, dtype=int)
    names = list(series)
    header = f"{'cores':>6s} " + " ".join(f"{name:>16s}" for name in names)
    lines = [f"# {title} (values in {unit})", header]
    arrays = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    for name, values in arrays.items():
        if values.shape[0] != cores.shape[0]:
            raise ValueError(f"series {name!r} length {values.shape[0]} != cores {cores.shape[0]}")
    for i, c in enumerate(cores):
        row = " ".join(f"{arrays[name][i]:>16.4f}" for name in names)
        lines.append(f"{int(c):>6d} {row}")
    return "\n".join(lines)


def comparison_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    *,
    decimals: int = 1,
) -> str:
    """Render a nested mapping {row: {column: value}} as an aligned table."""
    if not rows:
        raise ValueError("comparison_table needs at least one row")
    columns = list(next(iter(rows.values())).keys())
    header = f"{'benchmark':<20s} " + " ".join(f"{c:>14s}" for c in columns)
    lines = [f"# {title}", header, "-" * len(header)]
    for name, cells in rows.items():
        row = " ".join(f"{cells[c]:>14.{decimals}f}" for c in columns)
        lines.append(f"{name:<20s} {row}")
    return "\n".join(lines)


@dataclass(frozen=True)
class PaperComparison:
    """Paper-reported value vs the value this reproduction measured."""

    experiment: str
    metric: str
    paper_value: float
    measured_value: float
    note: str = ""

    @property
    def matches_direction(self) -> bool:
        """Whether both values point the same way (sign / above-below-zero)."""
        return bool(np.sign(self.paper_value) == np.sign(self.measured_value))


def format_paper_comparison(comparisons: Iterable[PaperComparison]) -> str:
    """Render paper-vs-measured rows (the EXPERIMENTS.md format)."""
    header = f"{'experiment':<28s} {'metric':<38s} {'paper':>10s} {'measured':>10s}  note"
    lines = [header, "-" * len(header)]
    for comp in comparisons:
        lines.append(
            f"{comp.experiment:<28s} {comp.metric:<38s} {comp.paper_value:>10.2f} "
            f"{comp.measured_value:>10.2f}  {comp.note}"
        )
    return "\n".join(lines)
