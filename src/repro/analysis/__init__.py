"""Analysis utilities: correlation studies, bottleneck reports, paper-style tables."""

from .bottleneck import BottleneckReport, CategoryGrowth, optimization_improvement
from .correlation import (
    CorrelationRow,
    CorrelationStudy,
    frontend_correlation_delta,
    stalls_time_correlation,
)
from .report import PaperComparison, comparison_table, figure_series, format_paper_comparison

__all__ = [
    "BottleneckReport",
    "CategoryGrowth",
    "CorrelationRow",
    "CorrelationStudy",
    "PaperComparison",
    "comparison_table",
    "figure_series",
    "format_paper_comparison",
    "frontend_correlation_delta",
    "optimization_improvement",
    "stalls_time_correlation",
]
