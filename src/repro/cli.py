"""Command-line interface: an ``estima``-style tool around the library.

The original ESTIMA is driven from the command line: point it at an
application, let it collect counters for increasing core counts, and get a
scalability prediction back.  This CLI mirrors that workflow on top of the
simulation substrate:

``estima predict --workload intruder --machine opteron48 --measure-cores 12 --target-cores 48``
    Simulate the measurement runs, run the extrapolation, print the predicted
    execution times and the bottleneck report.

``estima measure --workload intruder --machine opteron48 --cores 12 --output meas.json``
    Only collect (simulated) measurements and write them to a JSON file that
    ``estima predict --input meas.json`` can consume later — the same
    file-oriented flow the original tool uses with real ``perf`` data.

``estima list``
    Show the available workloads and machines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.bottleneck import BottleneckReport
from repro.core import EstimaConfig, EstimaPredictor, MeasurementSet, TimeExtrapolation
from repro.machine.machines import MACHINES, get_machine
from repro.simulation import MachineSimulator
from repro.workloads.registry import WORKLOADS, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="estima",
        description="Extrapolate the scalability of in-memory applications from stalled cycles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available workloads and machines")
    list_cmd.set_defaults(func=_cmd_list)

    measure = sub.add_parser("measure", help="collect (simulated) measurements to a JSON file")
    measure.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    measure.add_argument("--machine", required=True, choices=sorted(MACHINES))
    measure.add_argument("--cores", type=int, default=None, help="highest core count to measure")
    measure.add_argument("--dataset-scale", type=float, default=1.0)
    measure.add_argument("--output", required=True, help="output JSON path")
    measure.set_defaults(func=_cmd_measure)

    predict = sub.add_parser("predict", help="predict scalability for a larger core count")
    predict.add_argument("--workload", choices=sorted(WORKLOADS), help="workload to simulate")
    predict.add_argument("--machine", choices=sorted(MACHINES), help="machine to simulate on")
    predict.add_argument("--input", help="measurement JSON produced by 'estima measure'")
    predict.add_argument("--measure-cores", type=int, default=None)
    predict.add_argument("--target-cores", type=int, required=True)
    predict.add_argument("--checkpoints", type=int, default=2)
    predict.add_argument("--no-software-stalls", action="store_true")
    predict.add_argument("--baseline", action="store_true", help="also run time extrapolation")
    predict.add_argument("--dataset-ratio", type=float, default=1.0)
    predict.set_defaults(func=_cmd_predict)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("Workloads:")
    for name in sorted(WORKLOADS):
        workload = get_workload(name)
        print(f"  {name:<24s} [{workload.suite:<10s}] {workload.description}")
    print("\nMachines:")
    for name in sorted(MACHINES):
        print(f"  {get_machine(name).describe()}")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    workload = get_workload(args.workload)
    cores = args.cores or machine.total_threads
    simulator = MachineSimulator(machine)
    measurements = simulator.sweep(
        workload,
        core_counts=[c for c in machine.core_counts() if c <= cores],
        dataset_scale=args.dataset_scale,
    )
    measurements.save(args.output)
    print(
        f"wrote {len(measurements)} measurements of {workload.name} on {machine.name} "
        f"to {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.input:
        measurements = MeasurementSet.load(Path(args.input))
    elif args.workload and args.machine:
        machine = get_machine(args.machine)
        workload = get_workload(args.workload)
        cores = args.measure_cores or machine.total_threads
        measurements = MachineSimulator(machine).sweep(
            workload, core_counts=[c for c in machine.core_counts() if c <= cores]
        )
    else:
        print("predict needs either --input or both --workload and --machine", file=sys.stderr)
        return 2

    if args.measure_cores:
        measurements = measurements.restrict_to(args.measure_cores)

    config = EstimaConfig(
        checkpoints=args.checkpoints,
        use_software_stalls=not args.no_software_stalls,
        dataset_ratio=args.dataset_ratio,
    )
    prediction = EstimaPredictor(config).predict(measurements, target_cores=args.target_cores)
    print(prediction.summary())
    print()
    print(f"{'cores':>6s} {'predicted time (s)':>20s} {'stalls/core':>16s}")
    for i, cores in enumerate(prediction.prediction_cores):
        print(
            f"{int(cores):>6d} {prediction.predicted_times[i]:>20.4f} "
            f"{prediction.stalls_per_core[i]:>16.3e}"
        )
    print()
    print(BottleneckReport.from_prediction(prediction).format_report())

    if args.baseline:
        baseline = TimeExtrapolation(config).predict(measurements, target_cores=args.target_cores)
        print("\nTime-extrapolation baseline:")
        print(f"  predicted best core count: {baseline.predicted_peak_cores()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
