"""Command-line interface: an ``estima``-style tool around the library.

The original ESTIMA is driven from the command line: point it at an
application, let it collect counters for increasing core counts, and get a
scalability prediction back.  This CLI mirrors that workflow on top of the
simulation substrate:

``estima predict --workload intruder --machine opteron48 --measure-cores 12 --target-cores 48``
    Simulate the measurement runs, run the extrapolation, print the predicted
    execution times and the bottleneck report.

``estima measure --workload intruder --machine opteron48 --cores 12 --output meas.json``
    Only collect (simulated) measurements and write them to a JSON file that
    ``estima predict --input meas.json`` can consume later — the same
    file-oriented flow the original tool uses with real ``perf`` data.

``estima campaign --machine opteron48 --measure-cores 12 --targets "2 CPUs=24,4 CPUs=48" --workloads genome,intruder``
    Run a multi-workload, multi-target error campaign (a Table-4 style run)
    on the execution engine.  ``--executor parallel[:N]`` fans the workloads
    out over a process pool and ``--fit-cache`` memoizes kernel fits; both are
    verified to produce the same numbers as the serial default.

``estima list``
    Show the available workloads and machines.

``estima predict --json`` emits a machine-readable JSON document instead of
text tables so downstream tooling can consume predictions without scraping.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.bottleneck import BottleneckReport
from repro.core import EstimaConfig, EstimaPredictor, MeasurementSet, TimeExtrapolation
from repro.engine.executor import get_executor
from repro.machine.machines import MACHINES, get_machine
from repro.runner.campaign import ErrorCampaign
from repro.runner.io import save_table
from repro.simulation import MachineSimulator
from repro.workloads.registry import TABLE4_WORKLOADS, WORKLOADS, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="estima",
        description="Extrapolate the scalability of in-memory applications from stalled cycles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available workloads and machines")
    list_cmd.set_defaults(func=_cmd_list)

    measure = sub.add_parser("measure", help="collect (simulated) measurements to a JSON file")
    measure.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    measure.add_argument("--machine", required=True, choices=sorted(MACHINES))
    measure.add_argument("--cores", type=int, default=None, help="highest core count to measure")
    measure.add_argument("--dataset-scale", type=float, default=1.0)
    measure.add_argument("--output", required=True, help="output JSON path")
    measure.set_defaults(func=_cmd_measure)

    predict = sub.add_parser("predict", help="predict scalability for a larger core count")
    predict.add_argument("--workload", choices=sorted(WORKLOADS), help="workload to simulate")
    predict.add_argument("--machine", choices=sorted(MACHINES), help="machine to simulate on")
    predict.add_argument("--input", help="measurement JSON produced by 'estima measure'")
    predict.add_argument("--measure-cores", type=int, default=None)
    predict.add_argument("--target-cores", type=int, required=True)
    predict.add_argument("--checkpoints", type=int, default=2)
    predict.add_argument("--no-software-stalls", action="store_true")
    predict.add_argument("--baseline", action="store_true", help="also run time extrapolation")
    predict.add_argument("--dataset-ratio", type=float, default=1.0)
    predict.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON document instead of text tables",
    )
    predict.set_defaults(func=_cmd_predict)

    campaign = sub.add_parser(
        "campaign", help="run a multi-workload, multi-target error campaign"
    )
    campaign.add_argument("--machine", required=True, choices=sorted(MACHINES))
    campaign.add_argument("--measure-cores", type=int, required=True)
    campaign.add_argument(
        "--targets",
        required=True,
        help="comma-separated prediction targets, each 'label=cores' or a bare core count",
    )
    campaign.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the Table-4 set)",
    )
    campaign.add_argument(
        "--core-counts",
        default=None,
        help="comma-separated core counts to sweep (default: every machine core count)",
    )
    campaign.add_argument(
        "--executor",
        default=None,
        help="execution backend: serial, parallel or parallel:<workers> "
        "(default: $ESTIMA_EXECUTOR or serial)",
    )
    campaign.add_argument(
        "--fit-cache",
        action="store_true",
        help="memoize kernel fits and extrapolations (identical numbers, fewer solves)",
    )
    campaign.add_argument("--no-software-stalls", action="store_true")
    campaign.add_argument("--output", default=None, help="also write the rows as CSV")
    campaign.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit rows and aggregates as JSON instead of the text table",
    )
    campaign.set_defaults(func=_cmd_campaign)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("Workloads:")
    for name in sorted(WORKLOADS):
        workload = get_workload(name)
        print(f"  {name:<24s} [{workload.suite:<10s}] {workload.description}")
    print("\nMachines:")
    for name in sorted(MACHINES):
        print(f"  {get_machine(name).describe()}")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    workload = get_workload(args.workload)
    cores = args.cores or machine.total_threads
    simulator = MachineSimulator(machine)
    measurements = simulator.sweep(
        workload,
        core_counts=[c for c in machine.core_counts() if c <= cores],
        dataset_scale=args.dataset_scale,
    )
    measurements.save(args.output)
    print(
        f"wrote {len(measurements)} measurements of {workload.name} on {machine.name} "
        f"to {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.input:
        measurements = MeasurementSet.load(Path(args.input))
    elif args.workload and args.machine:
        machine = get_machine(args.machine)
        workload = get_workload(args.workload)
        cores = args.measure_cores or machine.total_threads
        measurements = MachineSimulator(machine).sweep(
            workload, core_counts=[c for c in machine.core_counts() if c <= cores]
        )
    else:
        print("predict needs either --input or both --workload and --machine", file=sys.stderr)
        return 2

    if args.measure_cores:
        measurements = measurements.restrict_to(args.measure_cores)

    config = EstimaConfig(
        checkpoints=args.checkpoints,
        use_software_stalls=not args.no_software_stalls,
        dataset_ratio=args.dataset_ratio,
    )
    prediction = EstimaPredictor(config).predict(measurements, target_cores=args.target_cores)
    baseline = (
        TimeExtrapolation(config).predict(measurements, target_cores=args.target_cores)
        if args.baseline
        else None
    )

    if args.as_json:
        payload = {
            "workload": prediction.workload,
            "machine": prediction.machine,
            "measured_cores": [int(c) for c in prediction.measured.cores],
            "target_cores": prediction.target_cores,
            "predicted_peak_cores": prediction.predicted_peak_cores(),
            "prediction_cores": [int(c) for c in prediction.prediction_cores],
            "predicted_times_s": [float(t) for t in prediction.predicted_times],
            "stalls_per_core": [float(s) for s in prediction.stalls_per_core],
            "scaling_factor": {
                "kernel": prediction.scaling_factor.kernel_name,
                "correlation": float(prediction.scaling_factor.correlation),
            },
            "category_kernels": {
                name: result.kernel_name
                for name, result in prediction.category_extrapolations.items()
            },
            "dominant_categories": [
                {"category": name, "fraction": float(fraction)}
                for name, fraction in prediction.dominant_categories(prediction.target_cores)
            ],
        }
        if baseline is not None:
            payload["baseline"] = {
                "predicted_peak_cores": baseline.predicted_peak_cores(),
                "predicted_times_s": [float(t) for t in baseline.predicted_times],
            }
        print(json.dumps(payload, indent=2))
        return 0

    print(prediction.summary())
    print()
    print(f"{'cores':>6s} {'predicted time (s)':>20s} {'stalls/core':>16s}")
    for i, cores in enumerate(prediction.prediction_cores):
        print(
            f"{int(cores):>6d} {prediction.predicted_times[i]:>20.4f} "
            f"{prediction.stalls_per_core[i]:>16.3e}"
        )
    print()
    print(BottleneckReport.from_prediction(prediction).format_report())

    if baseline is not None:
        print("\nTime-extrapolation baseline:")
        print(f"  predicted best core count: {baseline.predicted_peak_cores()}")
    return 0


def _parse_targets(spec: str) -> dict[str, int]:
    """Parse ``"2 CPUs=24,4 CPUs=48"`` or ``"24,48"`` into label -> cores."""
    targets: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        label, sep, cores = entry.partition("=")
        if sep:
            targets[label.strip()] = int(cores)
        else:
            targets[f"{int(entry)} cores"] = int(entry)
    if not targets:
        raise ValueError(f"no prediction targets in {spec!r}")
    return targets


def _cmd_campaign(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    try:
        targets = _parse_targets(args.targets)
    except ValueError as exc:
        print(f"invalid --targets: {exc}", file=sys.stderr)
        return 2
    workloads = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else list(TABLE4_WORKLOADS)
    )
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.executor is not None:
        try:
            get_executor(args.executor)
        except ValueError as exc:
            print(f"invalid --executor: {exc}", file=sys.stderr)
            return 2
    try:
        core_counts = (
            [int(c) for c in args.core_counts.split(",")] if args.core_counts else None
        )
    except ValueError:
        print(
            f"invalid --core-counts: expected comma-separated integers, got {args.core_counts!r}",
            file=sys.stderr,
        )
        return 2

    config = EstimaConfig(
        use_software_stalls=not args.no_software_stalls,
        use_fit_cache=args.fit_cache,
    )
    campaign = ErrorCampaign(
        machine=machine,
        measurement_cores=args.measure_cores,
        targets=targets,
        config=config,
        core_counts=core_counts,
        executor=args.executor,
    )
    result = campaign.run(workloads)

    if args.output:
        rows = [
            {
                "workload": row.workload,
                **{f"estima[{label}]": row.max_errors_pct[label] for label in targets},
                **{f"baseline[{label}]": row.baseline_errors_pct[label] for label in targets},
                "behaviour_correct": row.behaviour_correct,
            }
            for row in result.rows
        ]
        save_table(rows, args.output)

    if args.as_json:
        payload = {
            "machine": result.machine,
            "measurement_cores": result.measurement_cores,
            "target_labels": list(result.target_labels),
            "rows": [
                {
                    "workload": row.workload,
                    "max_errors_pct": {k: float(v) for k, v in row.max_errors_pct.items()},
                    "baseline_errors_pct": {
                        k: float(v) for k, v in row.baseline_errors_pct.items()
                    },
                    "behaviour_correct": bool(row.behaviour_correct),
                }
                for row in result.rows
            ],
            "aggregates": {
                label: {
                    "average_error_pct": result.average_error(label),
                    "std_error_pct": result.std_error(label),
                    "max_error_pct": result.max_error(label),
                }
                for label in result.target_labels
            },
            "all_behaviours_correct": bool(result.all_behaviours_correct()),
            "engine": result.engine_stats,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(result.format_table())
    stats = result.engine_stats or {}
    caches = stats.get("caches", {})
    cache_text = ", ".join(
        f"{region} {counts.get('hits', 0)}/{counts.get('hits', 0) + counts.get('misses', 0)} hits"
        for region, counts in sorted(caches.items())
        if counts.get("hits", 0) or counts.get("misses", 0)
    )
    print(
        f"\nengine: executor={stats.get('executor', '?')} "
        f"workloads={stats.get('workloads', len(result.rows))}"
        + (f" | cache: {cache_text}" if cache_text else "")
    )
    if args.output:
        print(f"rows written to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
