"""Command-line interface: an ``estima``-style tool around the library.

The original ESTIMA is driven from the command line: point it at an
application, let it collect counters for increasing core counts, and get a
scalability prediction back.  This CLI mirrors that workflow on top of the
simulation substrate:

``estima predict --workload intruder --machine opteron48 --measure-cores 12 --target-cores 48``
    Simulate the measurement runs, run the extrapolation, print the predicted
    execution times and the bottleneck report.

``estima measure --workload intruder --machine opteron48 --cores 12 --output meas.json``
    Only collect (simulated) measurements and write them to a JSON file that
    ``estima predict --input meas.json`` can consume later — the same
    file-oriented flow the original tool uses with real ``perf`` data.

``estima campaign --machine opteron48 --measure-cores 12 --targets "2 CPUs=24,4 CPUs=48" --workloads genome,intruder``
    Run a multi-workload, multi-target error campaign (a Table-4 style run)
    on the execution engine.  ``--executor parallel[:N]`` fans the workloads
    out over a process pool and ``--fit-cache`` memoizes kernel fits; both are
    verified to produce the same numbers as the serial default.

``estima serve --socket /tmp/estima.sock`` / ``--tcp HOST:PORT`` / ``--http HOST:PORT``
    Long-lived serving mode: accept JSON prediction requests (the
    ``estima predict --json`` schema) over stdin/stdout, a unix socket, a
    raw-TCP NDJSON listener, or the HTTP/JSON gateway (``POST
    /v1/predict``, ``POST /v1/predict_batch``, streamed ``POST
    /v1/campaign``, ``GET /healthz``, ``GET /metrics`` — see
    ``docs/serve-protocol.md``); coalesce concurrent requests into
    micro-batches on the prediction service; with ``--stats``, print the
    throughput/latency/cache counters on shutdown (the same snapshot ``GET
    /metrics`` renders).  ``--workers N`` (or ``ESTIMA_SERVE_WORKERS``)
    forks N worker processes behind the socket — NDJSON and HTTP alike —
    sharing the persistent disk cache tier; a ``{"op": "campaign"}``
    request streams Table-4 style campaign rows over the same protocol as
    they complete.

``estima route --http HOST:PORT --backends host1:port,host2:port``
    Cluster router: serve the gateway's exact HTTP surface but shard every
    predict/batch/campaign request across downstream ``estima serve``
    backends by consistent-hash digest (same request -> same backend -> hot
    shard caches), with per-host retries, health tracking and ring failover;
    ``GET /healthz`` probes the backends, ``GET /metrics`` aggregates router
    and per-backend counters.  ``ESTIMA_ROUTE_BACKENDS`` provides the
    backend-list default.

``estima cache stats|clear|warm|export|import``
    Manage the persistent disk tier of the fit/extrapolation caches
    (``--cache-dir`` / ``ESTIMA_CACHE_DIR``): show per-region entry counts,
    wipe it, or pre-populate it for a workload set so later runs start warm.
    ``export --output fits.tar.gz`` packs the tier into a schema-versioned
    archive and ``import --input fits.tar.gz`` loads one (digest-verified;
    with ``--ring-backends``/``--ring-node`` only this shard's slice) — warm
    fits computed once ship to every serving host.

``estima profile --workload intruder --machine opteron48 --measure-cores 12 --target-cores 48``
    Run the same prediction cold under both fit-grid strategies
    (``serial`` — the scalar reference loop — and ``vectorized`` — the
    batched engine of ``repro.core.fastfit``), verify the predicted rows
    are identical, and print a per-stage timing table (design solves,
    non-linear solves, realism screening, checkpoint scoring) with the
    end-to-end speedup.  ``--json`` emits the comparison machine-readably.

``estima list``
    Show the available workloads and machines.

``estima predict --json`` emits a machine-readable JSON document instead of
text tables so downstream tooling can consume predictions without scraping;
``--stats`` appends engine cache hit/miss and executor counters to either
output form.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from repro.analysis.bottleneck import BottleneckReport
from repro.core import EstimaConfig, EstimaPredictor, MeasurementSet, TimeExtrapolation
from repro.engine.cache import cache_stats, caches_enabled, clear_caches, disk_tier
from repro.engine.executor import get_executor
from repro.engine.profiling import PROFILER, profile_delta
from repro.engine.store import default_cache_dir, store_for
from repro.machine.machines import MACHINES, get_machine
from repro.runner.campaign import ErrorCampaign
from repro.runner.io import campaign_result_payload, prediction_payload, save_table
from repro.simulation import MachineSimulator
from repro.workloads.registry import TABLE4_WORKLOADS, WORKLOADS, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="estima",
        description="Extrapolate the scalability of in-memory applications from stalled cycles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available workloads and machines")
    list_cmd.set_defaults(func=_cmd_list)

    measure = sub.add_parser("measure", help="collect (simulated) measurements to a JSON file")
    measure.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    measure.add_argument("--machine", required=True, choices=sorted(MACHINES))
    measure.add_argument("--cores", type=int, default=None, help="highest core count to measure")
    measure.add_argument("--dataset-scale", type=float, default=1.0)
    measure.add_argument("--output", required=True, help="output JSON path")
    measure.set_defaults(func=_cmd_measure)

    predict = sub.add_parser("predict", help="predict scalability for a larger core count")
    predict.add_argument("--workload", choices=sorted(WORKLOADS), help="workload to simulate")
    predict.add_argument("--machine", choices=sorted(MACHINES), help="machine to simulate on")
    predict.add_argument("--input", help="measurement JSON produced by 'estima measure'")
    predict.add_argument("--measure-cores", type=int, default=None)
    predict.add_argument("--target-cores", type=int, required=True)
    predict.add_argument("--checkpoints", type=int, default=2)
    predict.add_argument("--no-software-stalls", action="store_true")
    predict.add_argument("--baseline", action="store_true", help="also run time extrapolation")
    predict.add_argument("--dataset-ratio", type=float, default=1.0)
    predict.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON document instead of text tables",
    )
    predict.add_argument(
        "--executor",
        default=None,
        help="execution backend: serial, threads[:N] or parallel[:N] "
        "(threads parallelises the kernel fits of this prediction)",
    )
    predict.add_argument(
        "--fit-cache",
        action="store_true",
        help="memoize kernel fits and extrapolations (identical numbers, fewer solves)",
    )
    predict.add_argument(
        "--cache-dir",
        default=None,
        help="persistent disk tier for the fit cache; implies --fit-cache (default: $ESTIMA_CACHE_DIR)",
    )
    predict.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache hit/miss and executor counters after the run",
    )
    predict.set_defaults(func=_cmd_predict)

    campaign = sub.add_parser(
        "campaign", help="run a multi-workload, multi-target error campaign"
    )
    campaign.add_argument("--machine", required=True, choices=sorted(MACHINES))
    campaign.add_argument("--measure-cores", type=int, required=True)
    campaign.add_argument(
        "--targets",
        required=True,
        help="comma-separated prediction targets, each 'label=cores' or a bare core count",
    )
    campaign.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the Table-4 set)",
    )
    campaign.add_argument(
        "--core-counts",
        default=None,
        help="comma-separated core counts to sweep (default: every machine core count)",
    )
    campaign.add_argument(
        "--executor",
        default=None,
        help="execution backend: serial, threads[:N] (fit-level) or "
        "parallel[:N] (workload-level; default: $ESTIMA_EXECUTOR or serial)",
    )
    campaign.add_argument(
        "--fit-cache",
        action="store_true",
        help="memoize kernel fits and extrapolations (identical numbers, fewer solves)",
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="persistent disk tier for the fit cache; implies --fit-cache (default: $ESTIMA_CACHE_DIR)",
    )
    campaign.add_argument(
        "--stats",
        action="store_true",
        help="print detailed engine cache and executor counters after the run",
    )
    campaign.add_argument("--no-software-stalls", action="store_true")
    campaign.add_argument("--output", default=None, help="also write the rows as CSV")
    campaign.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit rows and aggregates as JSON instead of the text table",
    )
    campaign.set_defaults(func=_cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="serve JSON prediction requests over stdin/stdout, a unix socket, TCP or HTTP",
    )
    serve.add_argument(
        "--socket", default=None, help="unix socket path (default: stdin/stdout)"
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="NDJSON TCP listening address (port 0 picks a free port)",
    )
    serve.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="HTTP/JSON gateway listening address (predict/predict_batch/campaign/"
        "healthz/metrics routes; default: $ESTIMA_SERVE_HTTP; port 0 picks a free port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes behind the socket "
        "(default: $ESTIMA_SERVE_WORKERS or 0 = serve in-process; needs --tcp or --socket)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=None, help="micro-batch size bound"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="how long to wait for more requests after the first of a batch",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None, help="bounded request queue (backpressure)"
    )
    serve.add_argument("--fit-cache", action="store_true")
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent disk tier for warm restarts; implies --fit-cache (default: $ESTIMA_CACHE_DIR)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the stats snapshot (one JSON line, the same counters GET /metrics "
        "reports) to stderr on shutdown",
    )
    serve.set_defaults(func=_cmd_serve)

    route = sub.add_parser(
        "route",
        help="HTTP router sharding requests across estima serve backends by digest",
    )
    route.add_argument(
        "--http",
        required=True,
        metavar="HOST:PORT",
        help="router listening address (port 0 picks a free port)",
    )
    route.add_argument(
        "--backends",
        default=None,
        metavar="HOST:PORT,...",
        help="downstream estima serve NDJSON backends "
        "(default: $ESTIMA_ROUTE_BACKENDS)",
    )
    route.add_argument(
        "--vnodes",
        type=int,
        default=None,
        help="virtual nodes per backend on the hash ring (placement knob)",
    )
    route.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request backend socket timeout in seconds "
        "(default: $ESTIMA_REMOTE_TIMEOUT or 30)",
    )
    route.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries per backend before ring failover "
        "(default: $ESTIMA_REMOTE_RETRIES or 2)",
    )
    route.add_argument(
        "--stats",
        action="store_true",
        help="print the router stats snapshot (one JSON line, the same counters "
        "GET /metrics reports) to stderr on shutdown",
    )
    route.set_defaults(func=_cmd_route)

    cache = sub.add_parser(
        "cache", help="inspect or manage the persistent fit-cache disk tier"
    )
    cache.add_argument("action", choices=["stats", "clear", "warm", "export", "import"])
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="disk tier directory (default: $ESTIMA_CACHE_DIR or ~/.cache/estima)",
    )
    cache.add_argument(
        "--json", action="store_true", dest="as_json", help="machine-readable output"
    )
    cache.add_argument(
        "--machine", choices=sorted(MACHINES), help="warm: machine to simulate on"
    )
    cache.add_argument(
        "--workloads",
        default=None,
        help="warm: comma-separated workload names (default: the Table-4 set)",
    )
    cache.add_argument("--measure-cores", type=int, default=None, help="warm: measurement window")
    cache.add_argument("--target-cores", type=int, default=None, help="warm: prediction target")
    cache.add_argument(
        "--output", default=None, help="export: archive path to write (tar.gz)"
    )
    cache.add_argument(
        "--input", default=None, help="import: archive path to read"
    )
    cache.add_argument(
        "--regions",
        default=None,
        help="export: comma-separated region subset (default: every region)",
    )
    cache.add_argument(
        "--ring-backends",
        default=None,
        metavar="HOST:PORT,...",
        help="import: the cluster's backend list; keeps only --ring-node's slice",
    )
    cache.add_argument(
        "--ring-node",
        default=None,
        metavar="HOST:PORT",
        help="import: this host's entry in --ring-backends",
    )
    cache.add_argument(
        "--vnodes",
        type=int,
        default=None,
        help="import: virtual nodes per backend (must match the router's)",
    )
    cache.set_defaults(func=_cmd_cache)

    profile = sub.add_parser(
        "profile",
        help="time one prediction under both fit-grid strategies, stage by stage",
    )
    profile.add_argument("--workload", choices=sorted(WORKLOADS), help="workload to simulate")
    profile.add_argument("--machine", choices=sorted(MACHINES), help="machine to simulate on")
    profile.add_argument("--input", help="measurement JSON produced by 'estima measure'")
    profile.add_argument("--measure-cores", type=int, default=None)
    profile.add_argument("--target-cores", type=int, required=True)
    profile.add_argument("--checkpoints", type=int, default=2)
    profile.add_argument("--no-software-stalls", action="store_true")
    profile.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the per-strategy stage timings as a JSON document",
    )
    profile.set_defaults(func=_cmd_profile)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("Workloads:")
    for name in sorted(WORKLOADS):
        workload = get_workload(name)
        print(f"  {name:<24s} [{workload.suite:<10s}] {workload.description}")
    print("\nMachines:")
    for name in sorted(MACHINES):
        print(f"  {get_machine(name).describe()}")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    workload = get_workload(args.workload)
    cores = args.cores or machine.total_threads
    simulator = MachineSimulator(machine)
    measurements = simulator.sweep(
        workload,
        core_counts=[c for c in machine.core_counts() if c <= cores],
        dataset_scale=args.dataset_scale,
    )
    measurements.save(args.output)
    print(
        f"wrote {len(measurements)} measurements of {workload.name} on {machine.name} "
        f"to {args.output}"
    )
    return 0


def _stats_delta(before, after) -> dict[str, dict[str, int]]:
    """Per-region counter deltas between two ``cache_stats()`` snapshots."""
    delta: dict[str, dict[str, int]] = {}
    for region, counts in after.items():
        prior = before.get(region, {})
        delta[region] = {
            key: int(counts.get(key, 0)) - int(prior.get(key, 0)) for key in counts
        }
    return delta


def _format_cache_lines(caches) -> list[str]:
    """Human-readable per-region, per-tier cache counter lines."""
    lines = []
    for region, counts in sorted(caches.items()):
        lookups = counts.get("hits", 0) + counts.get("misses", 0)
        disk_lookups = counts.get("disk_hits", 0) + counts.get("disk_misses", 0)
        if not lookups and not disk_lookups:
            continue
        line = f"  {region:>13s}: memory {counts.get('hits', 0)}/{lookups} hits"
        if disk_lookups:
            line += f", disk {counts.get('disk_hits', 0)}/{disk_lookups} hits"
        lines.append(line)
    return lines


def _format_profile_lines(profile) -> list[str]:
    """Human-readable per-stage fit timing lines (see repro.engine.profiling)."""
    lines = []
    for stage, stats in sorted(profile.items()):
        calls = int(stats.get("calls", 0))
        if not calls:
            continue
        wall = stats.get("wall_s", 0.0)
        if wall:
            lines.append(f"  {stage:>22s}: {calls:>6d} calls  {wall:>9.4f}s wall")
        else:
            lines.append(f"  {stage:>22s}: {calls:>6d} events")
    return lines


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.input:
        measurements = MeasurementSet.load(Path(args.input))
    elif args.workload and args.machine:
        machine = get_machine(args.machine)
        workload = get_workload(args.workload)
        cores = args.measure_cores or machine.total_threads
        measurements = MachineSimulator(machine).sweep(
            workload, core_counts=[c for c in machine.core_counts() if c <= cores]
        )
    else:
        print("predict needs either --input or both --workload and --machine", file=sys.stderr)
        return 2

    if args.measure_cores:
        measurements = measurements.restrict_to(args.measure_cores)

    if args.executor is not None:
        try:
            get_executor(args.executor)
        except ValueError as exc:
            print(f"invalid --executor: {exc}", file=sys.stderr)
            return 2
    config = EstimaConfig(
        checkpoints=args.checkpoints,
        use_software_stalls=not args.no_software_stalls,
        dataset_ratio=args.dataset_ratio,
        executor=args.executor or "serial",
        # An explicit --cache-dir would be silently useless without the fit
        # cache, so it implies --fit-cache.
        use_fit_cache=args.fit_cache or bool(args.cache_dir),
        **({"cache_dir": args.cache_dir} if args.cache_dir else {}),
    )
    disk_ctx = (
        disk_tier(config.cache_dir, max_bytes=config.cache_max_bytes)
        if config.use_fit_cache and config.cache_dir
        else nullcontext()
    )
    stats_before = cache_stats()
    profile_before = PROFILER.snapshot()
    # Enable (and afterwards restore) the global regions only when asked, so
    # in-process callers of main() keep their cache state.
    cache_ctx = caches_enabled(True) if config.use_fit_cache else nullcontext()
    with disk_ctx, cache_ctx:
        prediction = EstimaPredictor(config).predict(
            measurements, target_cores=args.target_cores
        )
        baseline = (
            TimeExtrapolation(config).predict(
                measurements, target_cores=args.target_cores
            )
            if args.baseline
            else None
        )
    engine_block = {
        "executor": config.executor,
        "caches": _stats_delta(stats_before, cache_stats()),
        "profile": profile_delta(profile_before, PROFILER.snapshot()),
    }

    if args.as_json:
        payload = prediction_payload(prediction)
        if baseline is not None:
            payload["baseline"] = {
                "predicted_peak_cores": baseline.predicted_peak_cores(),
                "predicted_times_s": [float(t) for t in baseline.predicted_times],
            }
        if args.stats:
            payload["engine"] = engine_block
        print(json.dumps(payload, indent=2))
        return 0

    print(prediction.summary())
    print()
    print(f"{'cores':>6s} {'predicted time (s)':>20s} {'stalls/core':>16s}")
    for i, cores in enumerate(prediction.prediction_cores):
        print(
            f"{int(cores):>6d} {prediction.predicted_times[i]:>20.4f} "
            f"{prediction.stalls_per_core[i]:>16.3e}"
        )
    print()
    print(BottleneckReport.from_prediction(prediction).format_report())

    if baseline is not None:
        print("\nTime-extrapolation baseline:")
        print(f"  predicted best core count: {baseline.predicted_peak_cores()}")
    if args.stats:
        print(f"\nengine: executor={config.executor}")
        cache_lines = _format_cache_lines(engine_block["caches"])
        print("\n".join(cache_lines) if cache_lines else "  (no cache lookups)")
        profile_lines = _format_profile_lines(engine_block["profile"])
        if profile_lines:
            print("fit stages:")
            print("\n".join(profile_lines))
    return 0


def _parse_targets(spec: str) -> dict[str, int]:
    """Parse ``"2 CPUs=24,4 CPUs=48"`` or ``"24,48"`` into label -> cores."""
    targets: dict[str, int] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        label, sep, cores = entry.partition("=")
        if sep:
            targets[label.strip()] = int(cores)
        else:
            targets[f"{int(entry)} cores"] = int(entry)
    if not targets:
        raise ValueError(f"no prediction targets in {spec!r}")
    return targets


def _cmd_campaign(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    try:
        targets = _parse_targets(args.targets)
    except ValueError as exc:
        print(f"invalid --targets: {exc}", file=sys.stderr)
        return 2
    workloads = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else list(TABLE4_WORKLOADS)
    )
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.executor is not None:
        try:
            get_executor(args.executor)
        except ValueError as exc:
            print(f"invalid --executor: {exc}", file=sys.stderr)
            return 2
    try:
        core_counts = (
            [int(c) for c in args.core_counts.split(",")] if args.core_counts else None
        )
    except ValueError:
        print(
            f"invalid --core-counts: expected comma-separated integers, got {args.core_counts!r}",
            file=sys.stderr,
        )
        return 2

    config = EstimaConfig(
        use_software_stalls=not args.no_software_stalls,
        # An explicit --cache-dir would be silently useless without the fit
        # cache, so it implies --fit-cache.
        use_fit_cache=args.fit_cache or bool(args.cache_dir),
        **({"cache_dir": args.cache_dir} if args.cache_dir else {}),
    )
    campaign = ErrorCampaign(
        machine=machine,
        measurement_cores=args.measure_cores,
        targets=targets,
        config=config,
        core_counts=core_counts,
        executor=args.executor,
    )
    # Scope the disk tier to this run: the campaign's service attaches it to
    # the process-global regions; restore whatever was attached before so
    # in-process callers of main() keep their cache state.
    disk_ctx = (
        disk_tier(config.cache_dir, max_bytes=config.cache_max_bytes)
        if config.use_fit_cache and config.cache_dir
        else nullcontext()
    )
    with disk_ctx:
        result = campaign.run(workloads)

    if args.output:
        rows = [
            {
                "workload": row.workload,
                **{f"estima[{label}]": row.max_errors_pct[label] for label in targets},
                **{f"baseline[{label}]": row.baseline_errors_pct[label] for label in targets},
                "behaviour_correct": row.behaviour_correct,
            }
            for row in result.rows
        ]
        save_table(rows, args.output)

    if args.as_json:
        # Built by the same helper the serve protocol streams rows through,
        # so `estima serve` campaign rows are bit-identical to this output.
        payload = campaign_result_payload(result)
        payload["engine"] = result.engine_stats
        print(json.dumps(payload, indent=2))
        return 0

    print(result.format_table())
    stats = result.engine_stats or {}
    caches = stats.get("caches", {})
    cache_text = ", ".join(
        f"{region} {counts.get('hits', 0)}/{counts.get('hits', 0) + counts.get('misses', 0)} hits"
        for region, counts in sorted(caches.items())
        if counts.get("hits", 0) or counts.get("misses", 0)
    )
    print(
        f"\nengine: executor={stats.get('executor', '?')} "
        f"workloads={stats.get('workloads', len(result.rows))}"
        + (f" | cache: {cache_text}" if cache_text else "")
    )
    if args.stats:
        executor_stats = stats.get("executor_stats", {})
        detail = " ".join(f"{k}={v}" for k, v in executor_stats.items())
        print(f"executor counters: {detail}" if detail else "executor counters: (none)")
        cache_lines = _format_cache_lines(caches)
        if cache_lines:
            print("cache tiers:")
            print("\n".join(cache_lines))
        profile_lines = _format_profile_lines(stats.get("profile", {}))
        if profile_lines:
            print("fit stages:")
            print("\n".join(profile_lines))
    if args.output:
        print(f"rows written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine.pool import (
        WorkerPool,
        parse_tcp_address,
        serve_http_from_env,
        serve_workers_from_env,
    )
    from repro.engine.server import PredictionServer, serve_stdio, serve_tcp, serve_unix

    if sum(1 for transport in (args.tcp, args.socket, args.http) if transport) > 1:
        print("serve takes at most one of --tcp / --socket / --http", file=sys.stderr)
        return 2
    try:
        workers = args.workers if args.workers is not None else serve_workers_from_env()
        http_address = args.http
        if http_address is None and not (args.tcp or args.socket):
            http_address = serve_http_from_env()
        config = EstimaConfig(
            # An explicit --cache-dir would be silently useless without the
            # fit cache, so it implies --fit-cache.
            use_fit_cache=args.fit_cache or bool(args.cache_dir),
            serve_workers=workers,
            serve_tcp=args.tcp,
            serve_http=http_address,
            **({"cache_dir": args.cache_dir} if args.cache_dir else {}),
        )
    except ValueError as exc:
        print(f"invalid serve configuration: {exc}", file=sys.stderr)
        return 2

    if config.serve_workers:
        # Worker-pool mode: a supervisor accepts on the listening socket and
        # dispatches connections to N forked worker processes, each running
        # the full NDJSON server (or the HTTP gateway on top of it).
        if not (args.tcp or args.socket or config.serve_http):
            print(
                "--workers needs a socket transport (--tcp, --http or --socket)",
                file=sys.stderr,
            )
            return 2
        pool = WorkerPool(
            config,
            workers=config.serve_workers,
            tcp=config.serve_http or args.tcp,
            unix_socket=args.socket,
            max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms,
            queue_limit=args.queue_limit,
            protocol="http" if config.serve_http else "ndjson",
        )
        pool.start()
        if args.socket:
            print(
                f"serving on unix socket {args.socket} with {config.serve_workers} workers",
                file=sys.stderr,
                flush=True,
            )
        else:
            scheme = "http" if config.serve_http else "tcp"
            host, port = pool.address
            print(
                f"serving on {scheme} {host}:{port} with {config.serve_workers} workers",
                file=sys.stderr,
                flush=True,
            )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        summary = pool.stop()
        if args.stats:
            # One machine-readable line: per-worker snapshots (each the dict
            # that worker's /metrics renders) plus the supervisor's merged
            # totals, which no single /metrics scrape can see.
            print(json.dumps(summary), file=sys.stderr)
        return 0

    server = PredictionServer(
        config,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        queue_limit=args.queue_limit,
    )
    stats_source = server.stats

    def announce(scheme: str):
        def on_listening(address: tuple) -> None:
            print(
                f"serving on {scheme} {address[0]}:{address[1]}", file=sys.stderr, flush=True
            )

        return on_listening

    async def run() -> None:
        try:
            if config.serve_http:
                from repro.engine.gateway import HttpGateway, serve_http

                gateway = HttpGateway(server)
                # The shutdown line and GET /metrics now share one snapshot
                # assembly (HttpGateway.stats): they can never disagree.
                nonlocal stats_source
                stats_source = gateway.stats
                host, port = parse_tcp_address(config.serve_http)
                await serve_http(gateway, host, port, on_listening=announce("http"))
            elif args.tcp:
                host, port = parse_tcp_address(args.tcp)
                await serve_tcp(server, host, port, on_listening=announce("tcp"))
            elif args.socket:
                print(f"serving on unix socket {args.socket}", file=sys.stderr, flush=True)
                await serve_unix(server, args.socket)
            else:
                await serve_stdio(server)
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    if args.stats:
        # Shutdown report: one machine-readable line so wrappers can scrape
        # it — the exact snapshot GET /metrics renders in HTTP mode.
        print(json.dumps(stats_source()), file=sys.stderr)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.engine.cluster.remote import route_backends_from_env
    from repro.engine.cluster.ring import DEFAULT_VNODES
    from repro.engine.cluster.router import Router, serve_route
    from repro.engine.pool import parse_tcp_address

    try:
        backends_spec = args.backends or route_backends_from_env()
        if not backends_spec:
            print(
                "route needs --backends (or ESTIMA_ROUTE_BACKENDS)", file=sys.stderr
            )
            return 2
        host, port = parse_tcp_address(args.http)
        # EstimaConfig validates the backend list (and every ESTIMA_* serving
        # variable) strictly up front, the same contract as `estima serve`.
        config = EstimaConfig(route_backends=backends_spec)
        router = Router(
            config.route_backends,
            config=config,
            vnodes=args.vnodes if args.vnodes is not None else DEFAULT_VNODES,
            timeout=args.timeout,
            retries=args.retries,
        )
    except ValueError as exc:
        print(f"invalid route configuration: {exc}", file=sys.stderr)
        return 2

    def on_listening(address: tuple) -> None:
        print(
            f"routing on http {address[0]}:{address[1]} across "
            f"{len(router.pool.backends)} backend(s)",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(serve_route(router, host, port, on_listening=on_listening))
    except KeyboardInterrupt:
        pass
    finally:
        router.close()
    if args.stats:
        # Shutdown report: one machine-readable line, the exact snapshot the
        # router's GET /metrics renders.
        print(json.dumps(router.stats()), file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or str(default_cache_dir())
    store = store_for(cache_dir)

    if args.action == "export":
        if not args.output:
            print("cache export needs --output", file=sys.stderr)
            return 2
        from repro.engine.cluster.archive import export_store

        regions = (
            [r.strip() for r in args.regions.split(",") if r.strip()]
            if args.regions
            else None
        )
        summary = export_store(store, args.output, regions=regions)
        if args.as_json:
            print(json.dumps(summary, indent=2))
        else:
            skipped = summary["skipped"]
            print(
                f"exported {summary['entries']} entries ({summary['bytes']} bytes) "
                f"from {cache_dir} to {summary['path']}"
                + (f", skipped {skipped} unreadable/stale" if skipped else "")
            )
        return 0

    if args.action == "import":
        if not args.input:
            print("cache import needs --input", file=sys.stderr)
            return 2
        from repro.engine.cluster.archive import import_archive

        ring = None
        if args.ring_backends or args.ring_node:
            if not (args.ring_backends and args.ring_node):
                print(
                    "cache import ring filtering needs both --ring-backends and --ring-node",
                    file=sys.stderr,
                )
                return 2
            from repro.engine.cluster.remote import parse_backends
            from repro.engine.cluster.ring import DEFAULT_VNODES, HashRing

            try:
                ring = HashRing(
                    parse_backends(args.ring_backends),
                    vnodes=args.vnodes if args.vnodes is not None else DEFAULT_VNODES,
                )
            except ValueError as exc:
                print(f"invalid --ring-backends: {exc}", file=sys.stderr)
                return 2
        try:
            summary = import_archive(args.input, store, ring=ring, node=args.ring_node)
        except ValueError as exc:
            print(f"cache import failed: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(summary, indent=2))
        else:
            print(
                f"imported {summary['imported']} entries into {cache_dir}"
                + (
                    f", skipped {summary['skipped_other_shard']} other-shard"
                    if summary["skipped_other_shard"]
                    else ""
                )
                + (
                    f", skipped {summary['skipped_invalid']} invalid"
                    if summary["skipped_invalid"]
                    else ""
                )
            )
        return 0

    if args.action == "clear":
        removed = store.clear()
        if args.as_json:
            print(json.dumps({"cache_dir": cache_dir, "removed": removed}))
        else:
            print(f"removed {removed} entries from {cache_dir}")
        return 0

    if args.action == "warm":
        if not args.machine or not args.target_cores:
            print("cache warm needs --machine and --target-cores", file=sys.stderr)
            return 2
        workloads = (
            [w.strip() for w in args.workloads.split(",") if w.strip()]
            if args.workloads
            else list(TABLE4_WORKLOADS)
        )
        unknown = [w for w in workloads if w not in WORKLOADS]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
        machine = get_machine(args.machine)
        measure_cores = args.measure_cores or machine.total_threads
        config = EstimaConfig(use_fit_cache=True, cache_dir=cache_dir)
        from repro.engine.service import PredictionRequest, PredictionService

        simulator = MachineSimulator(machine)
        with disk_tier(cache_dir, max_bytes=config.cache_max_bytes):
            service = PredictionService(config, share_max_target=False)
            # Start from a cold memory tier: a memory hit would skip the disk
            # write, leaving the tier this command exists to populate
            # incomplete.
            clear_caches()
            with caches_enabled(True):
                for name in workloads:
                    sweep = simulator.sweep(
                        get_workload(name),
                        core_counts=[c for c in machine.core_counts() if c <= measure_cores],
                    )
                    service.predict_batch(
                        [
                            PredictionRequest(sweep, args.target_cores),
                            PredictionRequest(sweep, args.target_cores, baseline=True),
                        ]
                    )
        summary = store.describe()
        if args.as_json:
            print(json.dumps({"warmed": workloads, "store": summary}, indent=2))
        else:
            print(
                f"warmed {len(workloads)} workload(s) into {cache_dir}: "
                f"{summary['entries']} entries, {summary['total_bytes']} bytes"
            )
        return 0

    # stats
    summary = store.describe()
    if args.as_json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"cache dir : {summary['root']}")
    print(f"entries   : {summary['entries']}")
    print(f"size      : {summary['total_bytes']} / {summary['max_bytes']} bytes")
    print(f"schema    : v{summary['schema_version']}")
    regions = summary["regions"]
    if regions:
        print("regions:")
        for region, counts in sorted(regions.items()):
            print(f"  {region:>13s}: {counts['entries']} entries, {counts['bytes']} bytes")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.input:
        measurements = MeasurementSet.load(Path(args.input))
        source = args.input
    elif args.workload and args.machine:
        machine = get_machine(args.machine)
        workload = get_workload(args.workload)
        cores = args.measure_cores or machine.total_threads
        measurements = MachineSimulator(machine).sweep(
            workload, core_counts=[c for c in machine.core_counts() if c <= cores]
        )
        source = f"{args.workload} on {args.machine}"
    else:
        print("profile needs either --input or both --workload and --machine", file=sys.stderr)
        return 2
    if args.measure_cores:
        measurements = measurements.restrict_to(args.measure_cores)

    from repro.core.fastfit import FIT_STRATEGIES

    legs: dict[str, dict] = {}
    predictions = {}
    for strategy in FIT_STRATEGIES:
        config = EstimaConfig(
            checkpoints=args.checkpoints,
            use_software_stalls=not args.no_software_stalls,
            fit_strategy=strategy,
        )
        clear_caches()  # both legs run cold: no fits shared across strategies
        profile_before = PROFILER.snapshot()
        started = time.perf_counter()
        prediction = EstimaPredictor(config).predict(
            measurements, target_cores=args.target_cores
        )
        wall_s = time.perf_counter() - started
        predictions[strategy] = prediction
        legs[strategy] = {
            "wall_s": wall_s,
            "profile": profile_delta(profile_before, PROFILER.snapshot()),
        }

    serial, vectorized = (predictions[s] for s in ("serial", "vectorized"))
    rows_identical = bool(
        np.array_equal(serial.predicted_times, vectorized.predicted_times)
        and np.array_equal(serial.prediction_cores, vectorized.prediction_cores)
    )
    speedup = legs["serial"]["wall_s"] / max(legs["vectorized"]["wall_s"], 1e-9)

    if args.as_json:
        payload = {
            "source": source,
            "target_cores": args.target_cores,
            "strategies": legs,
            "speedup": speedup,
            "rows_identical": rows_identical,
        }
        print(json.dumps(payload, indent=2))
        return 0 if rows_identical else 1

    print(f"profile: {source}, target {args.target_cores} cores (cold caches)")
    for strategy in FIT_STRATEGIES:
        leg = legs[strategy]
        print(f"\n{strategy}: {leg['wall_s']:.3f}s")
        lines = _format_profile_lines(leg["profile"])
        print("\n".join(lines) if lines else "  (no instrumented stages ran)")
    print(f"\nspeedup: {speedup:.2f}x (serial/vectorized)")
    print(f"predicted rows identical: {'yes' if rows_identical else 'NO'}")
    return 0 if rows_identical else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
