"""pthread-mutex contention model (blocking locks and trylock loops).

PARSEC's stock synchronization uses ``pthread_mutex_t``; under contention a
pthread mutex first spins briefly, then parks the thread in the kernel.  The
futex round-trip makes each contended acquisition far more expensive than a
user-level spinlock — which is exactly why replacing PARSEC's mutexes with
test-and-set spinlocks speeds streamcluster up in the paper's Section 4.6
experiment.

``trylock_loop=True`` models the pattern the paper calls out in the PARSEC
barrier implementation: threads looping on ``pthread_mutex_trylock``, burning
cycles on every failed attempt instead of blocking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["MutexModel"]

_ATOMIC_RMW_CYCLES = 40.0
# A futex sleep/wake round trip (syscall, context switch, wakeup latency).
_FUTEX_ROUNDTRIP_CYCLES = 4000.0
_TRYLOCK_ATTEMPT_CYCLES = 60.0
_MAX_QUEUE = 50.0


@dataclass(frozen=True)
class MutexModel:
    """Contention model for blocking pthread mutexes."""

    acquires_per_op: float
    critical_section_cycles: float
    num_locks: int = 1
    trylock_loop: bool = False

    def __post_init__(self) -> None:
        if self.acquires_per_op < 0:
            raise ValueError("acquires_per_op must be non-negative")
        if self.critical_section_cycles < 0:
            raise ValueError("critical_section_cycles must be non-negative")
        if self.num_locks < 1:
            raise ValueError("num_locks must be >= 1")

    def utilisation(self, threads: int, work_cycles_per_op: float) -> float:
        """Probability an acquisition finds the mutex busy."""
        if threads <= 1 or self.acquires_per_op == 0.0:
            return 0.0
        cycles_per_op = max(work_cycles_per_op, 1.0)
        arrival = (threads - 1) * self.acquires_per_op / (cycles_per_op * self.num_locks)
        holding = self.critical_section_cycles + _ATOMIC_RMW_CYCLES
        return float(np.clip(arrival * holding, 0.0, 0.98))

    def cost(self, threads: int, work_cycles_per_op: float) -> SyncCost:
        """Per-operation mutex cost (reported as ``lock_block_cycles``)."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        base = self.acquires_per_op * _ATOMIC_RMW_CYCLES * 0.25
        # Striped mutexes serialize only per lock instance.
        serialized = self.acquires_per_op * self.critical_section_cycles / self.num_locks
        if threads == 1 or self.acquires_per_op == 0.0:
            return SyncCost(
                software_stall_cycles={"lock_block_cycles": 0.0},
                extra_coherence_accesses=self.acquires_per_op,
                serialized_cycles=serialized,
            )

        rho = self.utilisation(threads, work_cycles_per_op)
        queue = min(rho / (1.0 - rho), _MAX_QUEUE)
        wait = queue * (self.critical_section_cycles + _ATOMIC_RMW_CYCLES)
        # Contended acquisitions pay the futex round trip with probability rho.
        blocked = rho * _FUTEX_ROUNDTRIP_CYCLES
        if self.trylock_loop:
            # Failed trylock attempts spin in user space instead of sleeping,
            # with attempts proportional to how long the lock stays busy.
            attempts = queue * (self.critical_section_cycles / _TRYLOCK_ATTEMPT_CYCLES + 1.0)
            blocked = attempts * _TRYLOCK_ATTEMPT_CYCLES * (threads - 1) * 0.1

        cycles = self.acquires_per_op * (wait + blocked)
        coherence = self.acquires_per_op * (1.0 + rho * (threads - 1) * 0.5)
        # Wake-up latency after a futex sleep lengthens the effective handoff
        # and with it the serialization floor under heavy contention.
        serialized *= 1.0 + 0.15 * rho * min(threads - 1, 32)
        return SyncCost(
            software_stall_cycles={"lock_block_cycles": float(cycles + base)},
            extra_coherence_accesses=float(coherence),
            serialized_cycles=float(serialized),
        )
