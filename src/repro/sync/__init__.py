"""Synchronization substrates: the software-stall sources of the paper.

Each model converts a synchronization profile (how often a workload locks,
crosses barriers, runs transactions, retries CAS) plus a thread count into a
:class:`~repro.sync.stats.SyncCost`: cycles per operation of pure waiting or
discarded work (the software stalls ESTIMA optionally consumes), extra
coherence traffic, and serialized cycles.
"""

from .barrier import BarrierModel
from .lockfree import LockFreeModel
from .mutex import MutexModel
from .pthread_wrapper import PthreadWrapperReport, default_plugins_config, render_report
from .spinlock import SpinlockModel
from .stats import SyncCost, combine_costs
from .stm import StmModel

__all__ = [
    "BarrierModel",
    "LockFreeModel",
    "MutexModel",
    "PthreadWrapperReport",
    "SpinlockModel",
    "StmModel",
    "SyncCost",
    "combine_costs",
    "default_plugins_config",
    "render_report",
]
