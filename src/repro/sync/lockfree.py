"""Lock-free (CAS retry) synchronization model.

Lock-free data structures (the lock-free hash table and skip list
microbenchmarks) never block, but contended compare-and-swap operations fail
and retry.  A failed CAS wastes the read-compute-retry path; the wasted cycles
are software stalls in the paper's sense, while the successful CAS and the
cache-line transfers it forces are hardware-visible coherence traffic.

CAS failure probability is modelled like lock utilisation: the chance that
another thread updated the same location between the read and the CAS grows
with the number of concurrent updaters per hot location.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["LockFreeModel"]

_CAS_CYCLES = 40.0
_MAX_FAILURE = 0.9


@dataclass(frozen=True)
class LockFreeModel:
    """Retry model for CAS-based lock-free structures.

    Attributes
    ----------
    cas_per_op:
        Compare-and-swap attempts per operation on the success path.
    retry_body_cycles:
        Cycles re-executed when a CAS fails (re-read, re-traverse, re-compute).
    hot_locations:
        Number of distinct contended locations (e.g. hash buckets actually
        being updated concurrently); more locations = less contention.
    update_fraction:
        Fraction of operations that actually modify the structure (reads never
        retry in these benchmarks).
    """

    cas_per_op: float
    retry_body_cycles: float
    hot_locations: float
    update_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cas_per_op < 0:
            raise ValueError("cas_per_op must be non-negative")
        if self.retry_body_cycles < 0:
            raise ValueError("retry_body_cycles must be non-negative")
        if self.hot_locations <= 0:
            raise ValueError("hot_locations must be positive")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be within [0, 1]")

    def failure_probability(self, threads: int) -> float:
        """Probability one CAS attempt fails at ``threads`` threads."""
        if threads <= 1 or self.cas_per_op == 0.0 or self.update_fraction == 0.0:
            return 0.0
        contenders = (threads - 1) * self.update_fraction
        p = contenders / (contenders + self.hot_locations)
        return float(np.clip(p, 0.0, _MAX_FAILURE))

    def cost(self, threads: int, work_cycles_per_op: float) -> SyncCost:
        """Per-operation retry cost (reported as ``cas_retry_cycles``)."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        del work_cycles_per_op
        if self.cas_per_op == 0.0:
            return SyncCost()
        p_fail = self.failure_probability(threads)
        # Expected retries per successful CAS: p / (1 - p).
        retries = p_fail / (1.0 - p_fail)
        wasted = (
            self.update_fraction
            * self.cas_per_op
            * retries
            * (self.retry_body_cycles + _CAS_CYCLES)
        )
        coherence = self.update_fraction * self.cas_per_op * (1.0 + retries)
        return SyncCost(
            software_stall_cycles={"cas_retry_cycles": float(wasted)},
            extra_coherence_accesses=float(coherence),
            serialized_cycles=float(self.update_fraction * self.cas_per_op * _CAS_CYCLES * 0.2),
        )
