"""Barrier synchronization model.

Barrier-structured applications (streamcluster, bodytrack, canneal phases)
lose time in two ways that both grow with the thread count:

* **Imbalance** — every thread waits for the slowest one.  With per-thread
  phase times fluctuating with coefficient of variation ``cv``, the expected
  maximum of ``n`` samples exceeds the mean by roughly ``cv * sqrt(2 ln n)``
  (Gumbel approximation), so waiting grows logarithmically even for perfectly
  partitioned work.
* **Entry/exit cost** — the barrier itself is a shared counter (or, in stock
  PARSEC, a mutex + condition variable or a trylock loop), so each crossing
  costs cache-line transfers proportional to the number of participants.

Both components are reported as ``barrier_wait_cycles`` software stalls, which
is exactly what the paper's thin pthread wrapper measures for streamcluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["BarrierModel"]

_LINE_TRANSFER_CYCLES = 60.0


@dataclass(frozen=True)
class BarrierModel:
    """Cost model of a centralized barrier.

    Attributes
    ----------
    barriers_per_op:
        Barrier crossings per application operation (usually well below 1:
        one barrier per phase of many operations).
    phase_cycles_per_op:
        Cycles of work between consecutive barriers, expressed per operation.
    imbalance_cv:
        Coefficient of variation of per-thread phase durations.
    trylock_based:
        Stock PARSEC barriers loop on ``pthread_mutex_trylock``; this roughly
        triples the crossing cost and is what the Section 4.6 fix removes.
    trylock_storm:
        How strongly the trylock retries compound with the participant count
        (the quadratic term of the crossing cost).  Only used when
        ``trylock_based`` is set.
    """

    barriers_per_op: float
    phase_cycles_per_op: float
    imbalance_cv: float = 0.1
    trylock_based: bool = False
    trylock_storm: float = 0.06

    def __post_init__(self) -> None:
        if self.barriers_per_op < 0:
            raise ValueError("barriers_per_op must be non-negative")
        if self.phase_cycles_per_op < 0:
            raise ValueError("phase_cycles_per_op must be non-negative")
        if self.imbalance_cv < 0:
            raise ValueError("imbalance_cv must be non-negative")
        if self.trylock_storm < 0:
            raise ValueError("trylock_storm must be non-negative")

    def expected_wait_fraction(self, threads: int) -> float:
        """Expected extra wait as a fraction of the phase length (max of n)."""
        if threads <= 1:
            return 0.0
        return float(self.imbalance_cv * np.sqrt(2.0 * np.log(threads)))

    def crossing_cycles(self, threads: int) -> float:
        """Cycles one thread spends inside the barrier protocol itself."""
        if threads <= 1:
            return 0.0
        per_arrival = _LINE_TRANSFER_CYCLES * threads
        if self.trylock_based:
            # Every waiter keeps re-trying the mutex while the stragglers
            # arrive, so the protocol cost grows quadratically with the
            # participant count instead of linearly.
            per_arrival *= 3.0 * (1.0 + self.trylock_storm * threads)
        return float(per_arrival)

    def cost(self, threads: int, work_cycles_per_op: float) -> SyncCost:
        """Per-operation barrier cost at ``threads`` threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        del work_cycles_per_op  # the phase length is part of the profile
        if threads == 1 or self.barriers_per_op == 0.0:
            return SyncCost(software_stall_cycles={"barrier_wait_cycles": 0.0})

        imbalance_wait = self.phase_cycles_per_op * self.expected_wait_fraction(threads)
        protocol = self.barriers_per_op * self.crossing_cycles(threads)
        total = imbalance_wait + protocol
        coherence = self.barriers_per_op * threads * 0.5
        return SyncCost(
            software_stall_cycles={"barrier_wait_cycles": float(total)},
            extra_coherence_accesses=float(coherence),
            serialized_cycles=0.0,
        )
