"""Containers for software-stall accounting.

Every synchronization model in :mod:`repro.sync` reports its overhead as a
:class:`SyncCost`: cycles per operation that a thread spends *not* making
application progress (spinning, blocked, re-executing aborted transactions),
plus the extra coherence traffic the synchronization itself injects into the
memory system.  The simulator turns the former into software-stall counters
(the paper's optional plugin-supplied categories) and folds the latter into
the hardware stall decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SyncCost", "combine_costs"]


@dataclass(frozen=True)
class SyncCost:
    """Per-operation cost of a synchronization mechanism at a given thread count.

    Attributes
    ----------
    software_stall_cycles:
        Cycles per operation spent in pure waiting / discarded work, keyed by
        the category name under which the runtime would report them (e.g.
        ``"lock_spin_cycles"``, ``"stm_aborted_tx_cycles"``).
    extra_coherence_accesses:
        Additional shared-line transfers per operation caused by the
        synchronization protocol itself (lock cache-line ping-pong, STM
        metadata).  These show up as hardware memory-latency stalls.
    serialized_cycles:
        Cycles per operation that are executed strictly serially (inside the
        critical section / commit); they bound the achievable throughput
        regardless of thread count.
    """

    software_stall_cycles: dict[str, float] = field(default_factory=dict)
    extra_coherence_accesses: float = 0.0
    serialized_cycles: float = 0.0

    @property
    def total_software_cycles(self) -> float:
        return float(sum(self.software_stall_cycles.values()))


def combine_costs(*costs: SyncCost) -> SyncCost:
    """Sum several synchronization costs (a workload may use locks *and* barriers)."""
    merged: dict[str, float] = {}
    coherence = 0.0
    serialized = 0.0
    for cost in costs:
        for name, value in cost.software_stall_cycles.items():
            merged[name] = merged.get(name, 0.0) + value
        coherence += cost.extra_coherence_accesses
        serialized += cost.serialized_cycles
    return SyncCost(
        software_stall_cycles=merged,
        extra_coherence_accesses=coherence,
        serialized_cycles=serialized,
    )
