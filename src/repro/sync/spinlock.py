"""Spinlock contention models (test-and-set and ticket locks).

A thread that finds a lock busy spins, burning cycles that the paper counts as
software stalls ("spinning on a busy lock").  The model is a standard
closed-system contention estimate:

* lock utilisation  ``rho = arrival_rate x holding_time`` where the arrival
  rate aggregates every *other* thread mapped onto the same lock instance,
* expected waiting time grows as ``rho / (1 - rho)`` (queueing) and, for
  test-and-set locks, an extra factor for the cache-line storm every release
  triggers when many waiters re-try simultaneously.

Ticket locks serve waiters in FIFO order, so they avoid the storm factor but
still pay the queueing delay; this distinction is what the Figure-11
streamcluster optimisation (pthread mutex -> test-and-set spinlock) exercises
in reverse, and what lets tests check that lower-overhead locks reduce
software stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["SpinlockModel"]

# Cycles for one atomic read-modify-write on a contended line (cache-to-cache).
_ATOMIC_RMW_CYCLES = 40.0
_MAX_QUEUE = 50.0


@dataclass(frozen=True)
class SpinlockModel:
    """Contention model for spin-based locks.

    Attributes
    ----------
    acquires_per_op:
        Lock acquisitions per application operation.
    critical_section_cycles:
        Cycles spent holding the lock per acquisition.
    num_locks:
        Distinct lock instances operations spread over (1 = one global lock).
    kind:
        ``"ttas"`` (test-and-test-and-set) or ``"ticket"``.
    """

    acquires_per_op: float
    critical_section_cycles: float
    num_locks: int = 1
    kind: str = "ttas"

    def __post_init__(self) -> None:
        if self.acquires_per_op < 0:
            raise ValueError("acquires_per_op must be non-negative")
        if self.critical_section_cycles < 0:
            raise ValueError("critical_section_cycles must be non-negative")
        if self.num_locks < 1:
            raise ValueError("num_locks must be >= 1")
        if self.kind not in ("ttas", "ticket"):
            raise ValueError("kind must be 'ttas' or 'ticket'")

    def utilisation(self, threads: int, work_cycles_per_op: float) -> float:
        """Fraction of time the busiest lock is held, seen by one contender."""
        if threads <= 1 or self.acquires_per_op == 0.0:
            return 0.0
        cycles_per_op = max(work_cycles_per_op, 1.0)
        # Rate (per cycle) at which the *other* threads hit the same lock.
        arrival = (threads - 1) * self.acquires_per_op / (cycles_per_op * self.num_locks)
        holding = self.critical_section_cycles + _ATOMIC_RMW_CYCLES
        return float(np.clip(arrival * holding, 0.0, 0.98))

    def cost(self, threads: int, work_cycles_per_op: float) -> SyncCost:
        """Per-operation cost of this lock at ``threads`` threads.

        ``work_cycles_per_op`` is the (stall-inclusive) length of one
        application operation, which sets how often each thread comes back for
        the lock.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        acquire_cost = self.acquires_per_op * _ATOMIC_RMW_CYCLES * 0.25
        # Different lock instances serialize independently, so the per-run
        # serialization floor is the critical-section work of the busiest lock.
        serialized = self.acquires_per_op * self.critical_section_cycles / self.num_locks
        if threads == 1 or self.acquires_per_op == 0.0:
            return SyncCost(
                software_stall_cycles={"lock_spin_cycles": 0.0},
                extra_coherence_accesses=self.acquires_per_op,
                serialized_cycles=serialized,
            )

        rho = self.utilisation(threads, work_cycles_per_op)
        queue = min(rho / (1.0 - rho), _MAX_QUEUE)
        wait = queue * (self.critical_section_cycles + _ATOMIC_RMW_CYCLES)
        if self.kind == "ttas":
            # Release storm: every waiter retries, invalidating the line
            # O(waiters) times.  The number of plausible waiters grows with rho.
            waiters = rho * (threads - 1)
            wait *= 1.0 + 0.15 * waiters
        spin_cycles = self.acquires_per_op * wait

        coherence = self.acquires_per_op * (1.0 + rho * (threads - 1) * 0.5)
        if self.kind == "ttas":
            # Release storms also lengthen the effective critical section: the
            # handoff itself costs O(waiters) line transfers.
            serialized *= 1.0 + 0.10 * rho * (threads - 1)
        return SyncCost(
            software_stall_cycles={"lock_spin_cycles": float(spin_cycles + acquire_cost)},
            extra_coherence_accesses=float(coherence),
            serialized_cycles=float(serialized),
        )
