"""Thin pthread-wrapper report generation.

On a real system, the paper measures software stalls for lock/barrier-based
applications by interposing a thin wrapper around the pthread library that
counts the cycles each thread spends spinning on locks and waiting at
barriers, and prints a per-thread summary at exit.  ESTIMA then parses that
output through its plugin mechanism (:mod:`repro.core.plugins`).

This module closes the same loop inside the simulation: it renders the
synchronization costs the models computed into the textual report format the
wrapper would print, so the plugin parsing path is exercised end to end (the
``examples/plugin_software_stalls.py`` example and the Figure-13/14 benches
use it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["PthreadWrapperReport", "render_report", "default_plugins_config"]


@dataclass(frozen=True)
class PthreadWrapperReport:
    """A synthetic wrapper report for one run."""

    threads: int
    lock_spin_cycles: float
    lock_block_cycles: float
    barrier_wait_cycles: float
    stm_aborted_tx_cycles: float = 0.0
    cas_retry_cycles: float = 0.0

    def text(self) -> str:
        """Render the report in the wrapper's line-oriented format."""
        lines = [f"# pthread wrapper statistics ({self.threads} threads)"]
        per_thread = {
            "lock_spin_cycles": self.lock_spin_cycles,
            "lock_block_cycles": self.lock_block_cycles,
            "barrier_wait_cycles": self.barrier_wait_cycles,
            "stm_aborted_tx_cycles": self.stm_aborted_tx_cycles,
            "cas_retry_cycles": self.cas_retry_cycles,
        }
        for tid in range(self.threads):
            for name, total in per_thread.items():
                if total <= 0.0:
                    continue
                # Spread the total over threads with a deterministic +-5% skew
                # so per-thread lines are not suspiciously identical.
                skew = 1.0 + 0.05 * np.sin(tid + 1.0)
                share = total / self.threads * skew
                lines.append(f"thread {tid} {name} {share:.0f}")
        return "\n".join(lines) + "\n"


def render_report(threads: int, cost: SyncCost, ops_total: float) -> str:
    """Render the report for a run of ``ops_total`` operations.

    ``cost`` carries per-operation software stalls; the report holds run totals
    (that is what a runtime prints at exit).
    """
    totals = {name: value * ops_total for name, value in cost.software_stall_cycles.items()}
    report = PthreadWrapperReport(
        threads=threads,
        lock_spin_cycles=totals.get("lock_spin_cycles", 0.0),
        lock_block_cycles=totals.get("lock_block_cycles", 0.0),
        barrier_wait_cycles=totals.get("barrier_wait_cycles", 0.0),
        stm_aborted_tx_cycles=totals.get("stm_aborted_tx_cycles", 0.0),
        cas_retry_cycles=totals.get("cas_retry_cycles", 0.0),
    )
    return report.text()


def default_plugins_config() -> list[dict]:
    """Plugin definitions that parse :func:`render_report` output.

    Suitable for ``PluginSet.from_config`` after JSON-dumping, or for building
    a :class:`~repro.core.plugins.PluginSet` directly in code.
    """
    categories = [
        "lock_spin_cycles",
        "lock_block_cycles",
        "barrier_wait_cycles",
        "stm_aborted_tx_cycles",
        "cas_retry_cycles",
    ]
    return [
        {
            "name": name,
            "pattern": rf"thread \d+ {name} (\d+(?:\.\d+)?)",
            "aggregation": "sum",
            "level": "software",
        }
        for name in categories
    ]
