"""Software transactional memory (SwissTM-like) conflict and abort model.

The STAMP applications synchronize with STM; the cycles of *aborted*
transactions are pure software stalls — instructions retire at the hardware
level but all their work is discarded on abort.  The paper configures the
SwissTM runtime to report exactly these cycles and feeds them to ESTIMA as a
software-stall category.

Conflict model
--------------
A transaction writing ``write_footprint`` of the workload's
``conflict_table_size`` hot locations conflicts with one concurrent
transaction with probability ``p ~ footprint^2 / table_size`` (birthday
estimate).  Under a contention manager with restart backoff, the *number of
aborted attempts per commit* observed in practice grows polynomially with the
number of concurrent transactions rather than exploding as the closed-form
``1/(1-p)`` queueing estimate would suggest, so the model uses

    aborts_per_commit(n) = min(p_pair * (n - 1)^contention_growth, cap)

with ``contention_growth`` in the 1-2.5 range (1 for uniformly spread
conflicts, >2 for structures whose hot set keeps shrinking as occupancy rises,
e.g. intruder's packet queues).  Each aborted attempt wastes on average half
the transaction body plus its instrumentation before the conflict is detected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stats import SyncCost

__all__ = ["StmModel"]

# Per-access instrumentation overhead of the STM read/write barriers (cycles).
_BARRIER_OVERHEAD_CYCLES = 6.0
# Commit-time validation / locking cost per transaction (cycles).
_COMMIT_CYCLES = 120.0
# Upper bound on aborted attempts per commit (the contention manager
# serializes transactions long before the queue grows further).
_MAX_ABORTS_PER_COMMIT = 40.0


@dataclass(frozen=True)
class StmModel:
    """SwissTM-style STM cost model.

    Attributes
    ----------
    tx_per_op:
        Transactions per application operation.
    tx_body_cycles:
        Cycles of useful work inside one transaction.
    tx_accesses:
        Shared-memory accesses (read+write barriers) per transaction.
    write_footprint:
        Distinct *hot* locations written per transaction.
    conflict_table_size:
        Number of hot shared locations transactions contend on; small tables
        (intruder's packet queues, yada's mesh cavity) mean high conflict.
    contention_growth:
        Polynomial exponent of conflict growth with the number of concurrent
        transactions (see the module docstring).
    """

    tx_per_op: float
    tx_body_cycles: float
    tx_accesses: float
    write_footprint: float
    conflict_table_size: float
    contention_growth: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_per_op < 0:
            raise ValueError("tx_per_op must be non-negative")
        if self.tx_body_cycles < 0:
            raise ValueError("tx_body_cycles must be non-negative")
        if self.tx_accesses < 0:
            raise ValueError("tx_accesses must be non-negative")
        if self.write_footprint < 0:
            raise ValueError("write_footprint must be non-negative")
        if self.conflict_table_size <= 0:
            raise ValueError("conflict_table_size must be positive")
        if self.contention_growth <= 0:
            raise ValueError("contention_growth must be positive")

    def pairwise_conflict_probability(self) -> float:
        """Probability two concurrent transactions conflict."""
        p = (self.write_footprint * (self.write_footprint + 1.0)) / self.conflict_table_size
        return float(np.clip(p, 0.0, 1.0))

    def aborts_per_commit(self, threads: int) -> float:
        """Expected aborted attempts for every committed transaction."""
        if threads <= 1 or self.tx_per_op == 0.0:
            return 0.0
        p_pair = self.pairwise_conflict_probability()
        aborted = p_pair * (threads - 1) ** self.contention_growth
        return float(min(aborted, _MAX_ABORTS_PER_COMMIT))

    def abort_probability(self, threads: int) -> float:
        """Probability one transaction attempt aborts at ``threads`` threads."""
        aborts = self.aborts_per_commit(threads)
        return float(aborts / (1.0 + aborts))

    def expected_attempts(self, threads: int) -> float:
        """Expected executions of the transaction body until one commits."""
        return float(1.0 + self.aborts_per_commit(threads))

    def cost(self, threads: int, work_cycles_per_op: float) -> SyncCost:
        """Per-operation STM cost; aborted work reported as software stalls."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        del work_cycles_per_op
        if self.tx_per_op == 0.0:
            return SyncCost()

        instrumented = self.tx_accesses * _BARRIER_OVERHEAD_CYCLES + _COMMIT_CYCLES
        aborts = self.aborts_per_commit(threads)
        p_abort = self.abort_probability(threads)
        # Every aborted attempt wastes, on average, half the body plus its
        # instrumentation before the conflict is detected.
        wasted_per_abort = 0.5 * (self.tx_body_cycles + instrumented)
        aborted_cycles = self.tx_per_op * aborts * wasted_per_abort

        # Instrumentation of the committing attempt is overhead too, but it is
        # *useful-path* overhead, not a stall; it lands in serialized/coherence
        # effects instead of the aborted-cycles category.
        coherence = self.tx_per_op * (
            self.write_footprint * (1.0 + aborts) + 2.0 * p_abort * self.write_footprint
        )
        serialized = self.tx_per_op * _COMMIT_CYCLES * 0.3
        return SyncCost(
            software_stall_cycles={"stm_aborted_tx_cycles": float(aborted_cycles)},
            extra_coherence_accesses=float(coherence),
            serialized_cycles=float(serialized),
        )

    def committed_overhead_cycles(self) -> float:
        """Instrumentation cycles per operation on the committing path."""
        return float(
            self.tx_per_op * (self.tx_accesses * _BARRIER_OVERHEAD_CYCLES + _COMMIT_CYCLES)
        )
