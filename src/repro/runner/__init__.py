"""Measurement harness: experiments and campaigns over workloads and machines.

Campaigns and multi-workload experiments execute on :mod:`repro.engine` — a
pluggable serial/parallel executor plus a caching prediction service — while
keeping the serial default bit-identical to the original loop.
"""

from .campaign import CampaignResult, CampaignRow, ErrorCampaign
from .experiment import (
    CrossMachineExperiment,
    Experiment,
    ExperimentResult,
    scaling_behaviour_correct,
)
from .io import (
    load_measurements,
    load_prediction_json,
    save_measurements,
    save_prediction_csv,
    save_prediction_json,
    save_table,
)

__all__ = [
    "CampaignResult",
    "CampaignRow",
    "CrossMachineExperiment",
    "ErrorCampaign",
    "Experiment",
    "ExperimentResult",
    "load_measurements",
    "load_prediction_json",
    "save_measurements",
    "save_prediction_csv",
    "save_prediction_json",
    "save_table",
    "scaling_behaviour_correct",
]
