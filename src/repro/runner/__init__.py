"""Measurement harness: experiments and campaigns over workloads and machines."""

from .campaign import CampaignResult, CampaignRow, ErrorCampaign
from .experiment import CrossMachineExperiment, Experiment, ExperimentResult
from .io import (
    load_measurements,
    load_prediction_json,
    save_measurements,
    save_prediction_csv,
    save_prediction_json,
    save_table,
)

__all__ = [
    "CampaignResult",
    "CampaignRow",
    "CrossMachineExperiment",
    "ErrorCampaign",
    "Experiment",
    "ExperimentResult",
    "load_measurements",
    "load_prediction_json",
    "save_measurements",
    "save_prediction_csv",
    "save_prediction_json",
    "save_table",
]
