"""Single-workload measurement and prediction experiments.

An :class:`Experiment` bundles the steps the paper repeats for every workload:

1. simulate ("profile") the workload on a machine over a range of core counts,
2. restrict the measurements to the measurement-machine window
   (e.g. one socket),
3. run ESTIMA and the time-extrapolation baseline,
4. score both against the ground-truth runs on the full machine.

Cross-machine experiments (measure on one machine, predict and validate on
another — the memcached/SQLite setting) use :class:`CrossMachineExperiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    EstimaConfig,
    EstimaPredictor,
    MeasurementSet,
    PredictionError,
    ScalabilityPrediction,
    TimeExtrapolation,
    TimeExtrapolationPrediction,
)
from repro.machine.machines import MachineSpec
from repro.simulation import MachineSimulator
from repro.workloads.base import Workload

__all__ = ["ExperimentResult", "Experiment", "CrossMachineExperiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one strong-scaling experiment produced."""

    workload: str
    machine: str
    measurement_cores: int
    target_cores: int
    ground_truth: MeasurementSet
    estima: ScalabilityPrediction
    estima_error: PredictionError
    baseline: TimeExtrapolationPrediction
    baseline_error: PredictionError

    @property
    def actual_peak_cores(self) -> int:
        """Core count with the lowest measured execution time."""
        return int(self.ground_truth.cores[int(np.argmin(self.ground_truth.times))])

    def scaling_behaviour_correct(self, *, tolerance: float = 0.10) -> bool:
        """Whether ESTIMA predicted the right qualitative behaviour.

        The paper's claim is that prediction errors never amount to predicting
        a *different behaviour*: if the application stops scaling before the
        target, the prediction must not say it keeps scaling (and vice versa).
        Behaviour is judged at the measurement boundary with a tolerance on
        what counts as further improvement.
        """
        boundary = self.measurement_cores
        actual = self.ground_truth
        later = [c for c in actual.cores if c > boundary]
        if not later:
            return True
        boundary_time = actual.time_at(int(boundary)) if boundary in actual.cores else float(
            actual.times[actual.cores <= boundary][-1]
        )
        best_later = float(min(actual.time_at(int(c)) for c in later))
        actually_scales = best_later < boundary_time * (1.0 - tolerance)
        predicted_scales = self.estima.predicts_scaling_beyond(boundary, tolerance=tolerance)
        return actually_scales == predicted_scales


@dataclass
class Experiment:
    """Strong-scaling prediction experiment on a single machine."""

    machine: MachineSpec
    config: EstimaConfig = field(default_factory=EstimaConfig)
    include_software_stalls: bool = True

    def ground_truth(
        self, workload: Workload, *, core_counts: list[int] | None = None, dataset_scale: float = 1.0
    ) -> MeasurementSet:
        """Simulate the workload over the full machine (the validation data)."""
        simulator = MachineSimulator(self.machine)
        return simulator.sweep(
            workload,
            core_counts=core_counts,
            dataset_scale=dataset_scale,
            include_software=self.include_software_stalls,
        )

    def run(
        self,
        workload: Workload,
        *,
        measurement_cores: int,
        target_cores: int | None = None,
        core_counts: list[int] | None = None,
        dataset_scale: float = 1.0,
    ) -> ExperimentResult:
        """Measure up to ``measurement_cores``, predict to ``target_cores``, validate."""
        target = target_cores or self.machine.total_threads
        truth = self.ground_truth(workload, core_counts=core_counts, dataset_scale=dataset_scale)
        measured = truth.restrict_to(measurement_cores)

        predictor = EstimaPredictor(self.config)
        baseline = TimeExtrapolation(self.config)
        estima_prediction = predictor.predict(measured, target_cores=target)
        baseline_prediction = baseline.predict(measured, target_cores=target)

        eval_cores = [int(c) for c in truth.cores if c > measurement_cores and c <= target]
        estima_error = estima_prediction.evaluate(truth, core_counts=eval_cores)
        baseline_error = baseline_prediction.evaluate(truth, core_counts=eval_cores)
        return ExperimentResult(
            workload=truth.workload,
            machine=self.machine.name,
            measurement_cores=measurement_cores,
            target_cores=target,
            ground_truth=truth,
            estima=estima_prediction,
            estima_error=estima_error,
            baseline=baseline_prediction,
            baseline_error=baseline_error,
        )


@dataclass
class CrossMachineExperiment:
    """Measure on a small machine, predict and validate on a bigger one.

    Reproduces the Section 4.3 setting: memcached and SQLite measured on the
    Haswell desktop, predicted for (and validated on) the Xeon20 server, with
    measured times rescaled by the clock-frequency ratio.
    """

    measurement_machine: MachineSpec
    target_machine: MachineSpec
    include_software_stalls: bool = True

    def run(
        self,
        workload: Workload,
        *,
        measurement_cores: int,
        target_cores: int | None = None,
        dataset_scale: float = 1.0,
    ) -> ExperimentResult:
        target = target_cores or self.target_machine.total_threads
        config = EstimaConfig.for_cross_machine(
            measurement_frequency_ghz=self.measurement_machine.frequency_ghz,
            target_frequency_ghz=self.target_machine.frequency_ghz,
        )

        small = MachineSimulator(self.measurement_machine)
        big = MachineSimulator(self.target_machine)
        measured = small.sweep(
            workload,
            core_counts=[c for c in self.measurement_machine.core_counts() if c <= measurement_cores],
            dataset_scale=dataset_scale,
            include_software=self.include_software_stalls,
        )
        truth = big.sweep(
            workload, dataset_scale=dataset_scale, include_software=self.include_software_stalls
        )

        estima_prediction = EstimaPredictor(config).predict(measured, target_cores=target)
        baseline_prediction = TimeExtrapolation(config).predict(measured, target_cores=target)
        eval_cores = [int(c) for c in truth.cores if c > measurement_cores and c <= target]
        return ExperimentResult(
            workload=truth.workload,
            machine=self.target_machine.name,
            measurement_cores=measurement_cores,
            target_cores=target,
            ground_truth=truth,
            estima=estima_prediction,
            estima_error=estima_prediction.evaluate(truth, core_counts=eval_cores),
            baseline=baseline_prediction,
            baseline_error=baseline_prediction.evaluate(truth, core_counts=eval_cores),
        )
