"""Single-workload measurement and prediction experiments.

An :class:`Experiment` bundles the steps the paper repeats for every workload:

1. simulate ("profile") the workload on a machine over a range of core counts,
2. restrict the measurements to the measurement-machine window
   (e.g. one socket),
3. run ESTIMA and the time-extrapolation baseline,
4. score both against the ground-truth runs on the full machine.

Cross-machine experiments (measure on one machine, predict and validate on
another — the memcached/SQLite setting) use :class:`CrossMachineExperiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core import (
    EstimaConfig,
    EstimaPredictor,
    MeasurementSet,
    PredictionError,
    ScalabilityPrediction,
    TimeExtrapolation,
    TimeExtrapolationPrediction,
)
from repro.engine.executor import Executor, executor_for_config
from repro.machine.machines import MachineSpec
from repro.simulation import MachineSimulator
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

__all__ = [
    "ExperimentResult",
    "Experiment",
    "CrossMachineExperiment",
    "scaling_behaviour_correct",
]


def scaling_behaviour_correct(
    ground_truth: MeasurementSet,
    estima: ScalabilityPrediction,
    measurement_cores: int,
    *,
    tolerance: float = 0.10,
) -> bool:
    """Whether ESTIMA predicted the right qualitative behaviour.

    The paper's claim is that prediction errors never amount to predicting a
    *different behaviour*: if the application stops scaling before the target,
    the prediction must not say it keeps scaling (and vice versa).  Behaviour
    is judged at the measurement boundary with a tolerance on what counts as
    further improvement.  Exposed as a free function so campaign workers can
    score behaviour without materialising a full :class:`ExperimentResult`.
    """
    boundary = measurement_cores
    later = [c for c in ground_truth.cores if c > boundary]
    if not later:
        return True
    boundary_time = (
        ground_truth.time_at(int(boundary))
        if boundary in ground_truth.cores
        else float(ground_truth.times[ground_truth.cores <= boundary][-1])
    )
    best_later = float(min(ground_truth.time_at(int(c)) for c in later))
    actually_scales = best_later < boundary_time * (1.0 - tolerance)
    predicted_scales = estima.predicts_scaling_beyond(boundary, tolerance=tolerance)
    return actually_scales == predicted_scales


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one strong-scaling experiment produced."""

    workload: str
    machine: str
    measurement_cores: int
    target_cores: int
    ground_truth: MeasurementSet
    estima: ScalabilityPrediction
    estima_error: PredictionError
    baseline: TimeExtrapolationPrediction
    baseline_error: PredictionError

    @property
    def actual_peak_cores(self) -> int:
        """Core count with the lowest measured execution time."""
        return int(self.ground_truth.cores[int(np.argmin(self.ground_truth.times))])

    def scaling_behaviour_correct(self, *, tolerance: float = 0.10) -> bool:
        """Whether ESTIMA predicted the right qualitative behaviour.

        See :func:`scaling_behaviour_correct` for the criterion.
        """
        return scaling_behaviour_correct(
            self.ground_truth, self.estima, self.measurement_cores, tolerance=tolerance
        )


@dataclass
class Experiment:
    """Strong-scaling prediction experiment on a single machine."""

    machine: MachineSpec
    config: EstimaConfig = field(default_factory=EstimaConfig)
    include_software_stalls: bool = True

    def ground_truth(
        self, workload: Workload, *, core_counts: list[int] | None = None, dataset_scale: float = 1.0
    ) -> MeasurementSet:
        """Simulate the workload over the full machine (the validation data)."""
        simulator = MachineSimulator(self.machine)
        return simulator.sweep(
            workload,
            core_counts=core_counts,
            dataset_scale=dataset_scale,
            include_software=self.include_software_stalls,
        )

    def run(
        self,
        workload: Workload,
        *,
        measurement_cores: int,
        target_cores: int | None = None,
        core_counts: list[int] | None = None,
        dataset_scale: float = 1.0,
    ) -> ExperimentResult:
        """Measure up to ``measurement_cores``, predict to ``target_cores``, validate."""
        target = target_cores or self.machine.total_threads
        truth = self.ground_truth(workload, core_counts=core_counts, dataset_scale=dataset_scale)
        measured = truth.restrict_to(measurement_cores)

        predictor = EstimaPredictor(self.config)
        baseline = TimeExtrapolation(self.config)
        estima_prediction = predictor.predict(measured, target_cores=target)
        baseline_prediction = baseline.predict(measured, target_cores=target)

        eval_cores = [int(c) for c in truth.cores if c > measurement_cores and c <= target]
        estima_error = estima_prediction.evaluate(truth, core_counts=eval_cores)
        baseline_error = baseline_prediction.evaluate(truth, core_counts=eval_cores)
        return ExperimentResult(
            workload=truth.workload,
            machine=self.machine.name,
            measurement_cores=measurement_cores,
            target_cores=target,
            ground_truth=truth,
            estima=estima_prediction,
            estima_error=estima_error,
            baseline=baseline_prediction,
            baseline_error=baseline_error,
        )

    def run_many(
        self,
        workloads: Iterable[Workload | str],
        *,
        measurement_cores: int,
        target_cores: int | None = None,
        core_counts: list[int] | None = None,
        dataset_scale: float = 1.0,
        executor: Executor | str | None = None,
    ) -> list[ExperimentResult]:
        """Run :meth:`run` over many workloads through an engine executor.

        Workloads may be given as objects or registry names; results come
        back in input order regardless of the backend.  Workload *objects*
        travel as-is (so unregistered custom workloads work exactly like in
        :meth:`run`); names are resolved in the worker, keeping parallel task
        payloads small.  The executor is resolved from ``executor`` →
        ``config.executor`` → ``ESTIMA_EXECUTOR`` → serial, and every
        backend produces identical results (only wall time differs).
        """
        tasks = [
            _ExperimentTask(
                workload=workload,
                machine=self.machine,
                config=self.config,
                include_software_stalls=self.include_software_stalls,
                measurement_cores=measurement_cores,
                target_cores=target_cores,
                core_counts=tuple(core_counts) if core_counts is not None else None,
                dataset_scale=dataset_scale,
            )
            for workload in workloads
        ]
        resolved = executor_for_config(self.config, executor)
        return resolved.map(_run_experiment_task, tasks)


@dataclass(frozen=True)
class _ExperimentTask:
    """Picklable description of one :meth:`Experiment.run` invocation.

    Registry names are resolved inside the worker, keeping the payload small;
    workload objects (e.g. unregistered custom workloads) are carried as-is.
    """

    workload: Workload | str
    machine: MachineSpec
    config: EstimaConfig
    include_software_stalls: bool
    measurement_cores: int
    target_cores: int | None
    core_counts: tuple[int, ...] | None
    dataset_scale: float


def _run_experiment_task(task: _ExperimentTask) -> ExperimentResult:
    """Module-level worker for executor fan-out (must stay picklable)."""
    experiment = Experiment(
        machine=task.machine,
        config=task.config,
        include_software_stalls=task.include_software_stalls,
    )
    return experiment.run(
        get_workload(task.workload) if isinstance(task.workload, str) else task.workload,
        measurement_cores=task.measurement_cores,
        target_cores=task.target_cores,
        core_counts=list(task.core_counts) if task.core_counts is not None else None,
        dataset_scale=task.dataset_scale,
    )


@dataclass
class CrossMachineExperiment:
    """Measure on a small machine, predict and validate on a bigger one.

    Reproduces the Section 4.3 setting: memcached and SQLite measured on the
    Haswell desktop, predicted for (and validated on) the Xeon20 server, with
    measured times rescaled by the clock-frequency ratio.
    """

    measurement_machine: MachineSpec
    target_machine: MachineSpec
    include_software_stalls: bool = True

    def run(
        self,
        workload: Workload,
        *,
        measurement_cores: int,
        target_cores: int | None = None,
        dataset_scale: float = 1.0,
    ) -> ExperimentResult:
        target = target_cores or self.target_machine.total_threads
        config = EstimaConfig.for_cross_machine(
            measurement_frequency_ghz=self.measurement_machine.frequency_ghz,
            target_frequency_ghz=self.target_machine.frequency_ghz,
        )

        small = MachineSimulator(self.measurement_machine)
        big = MachineSimulator(self.target_machine)
        measured = small.sweep(
            workload,
            core_counts=[c for c in self.measurement_machine.core_counts() if c <= measurement_cores],
            dataset_scale=dataset_scale,
            include_software=self.include_software_stalls,
        )
        truth = big.sweep(
            workload, dataset_scale=dataset_scale, include_software=self.include_software_stalls
        )

        estima_prediction = EstimaPredictor(config).predict(measured, target_cores=target)
        baseline_prediction = TimeExtrapolation(config).predict(measured, target_cores=target)
        eval_cores = [int(c) for c in truth.cores if c > measurement_cores and c <= target]
        return ExperimentResult(
            workload=truth.workload,
            machine=self.target_machine.name,
            measurement_cores=measurement_cores,
            target_cores=target,
            ground_truth=truth,
            estima=estima_prediction,
            estima_error=estima_prediction.evaluate(truth, core_counts=eval_cores),
            baseline=baseline_prediction,
            baseline_error=baseline_prediction.evaluate(truth, core_counts=eval_cores),
        )
