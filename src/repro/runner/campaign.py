"""Multi-workload measurement campaigns (the paper's Tables 4, 5 and 7).

A campaign runs the same experiment over a list of workloads and collects the
per-workload maximum prediction errors for one or more prediction targets —
exactly the structure of Table 4 ("maximum prediction errors with measurements
on one processor of each machine") and Table 7 (Xeon20-to-Xeon48).

Campaigns execute on the engine layer: workloads are independent tasks mapped
through a pluggable :class:`~repro.engine.executor.Executor` (serial by
default, process-pool parallel on request), and the per-target predictions of
each workload are served by a :class:`~repro.engine.service.PredictionService`
that computes the pipeline once at the largest target and slices the curve for
the smaller ones — the same numbers the original serial loop produced, now
computed once.  Serial, parallel and cached runs are verified to produce
identical rows by the test suite.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core import EstimaConfig
from repro.engine.executor import Executor, ThreadExecutor, active_fit_pool, executor_for_config
from repro.engine.profiling import PROFILER, profile_delta
from repro.engine.service import PredictionRequest, PredictionService
from repro.machine.machines import MachineSpec
from repro.workloads.registry import TABLE4_WORKLOADS, get_workload

from .experiment import Experiment, scaling_behaviour_correct

__all__ = ["CampaignRow", "CampaignResult", "ErrorCampaign"]


@dataclass(frozen=True)
class CampaignRow:
    """Per-workload error summary, one column per prediction target."""

    workload: str
    max_errors_pct: Mapping[str, float]  # target label -> max error (%)
    baseline_errors_pct: Mapping[str, float]
    behaviour_correct: bool


@dataclass(frozen=True)
class CampaignResult:
    """All rows of one campaign plus aggregate statistics.

    ``engine_stats`` records how the run was executed (backend name, cache
    hit/miss counters); it is diagnostic only and excluded from equality so
    that serial, parallel and cached runs with identical rows compare equal.
    """

    machine: str
    measurement_cores: int
    rows: tuple[CampaignRow, ...]
    target_labels: tuple[str, ...]
    engine_stats: Mapping[str, object] | None = field(default=None, compare=False)

    def errors_for(self, label: str) -> np.ndarray:
        return np.asarray([row.max_errors_pct[label] for row in self.rows], dtype=float)

    def average_error(self, label: str) -> float:
        return float(np.mean(self.errors_for(label)))

    def std_error(self, label: str) -> float:
        return float(np.std(self.errors_for(label)))

    def max_error(self, label: str) -> float:
        return float(np.max(self.errors_for(label)))

    def workloads_below(self, label: str, threshold_pct: float) -> int:
        """How many workloads stay below an error threshold (paper's headline counts)."""
        return int(np.sum(self.errors_for(label) < threshold_pct))

    def all_behaviours_correct(self) -> bool:
        """The paper's qualitative claim: no workload's behaviour is mispredicted."""
        return all(row.behaviour_correct for row in self.rows)

    def format_table(self, *, decimals: int = 1) -> str:
        """Render a Table-4 style text table."""
        header = f"{'Benchmark':<18s} " + "  ".join(f"{l:>10s}" for l in self.target_labels)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = "  ".join(
                f"{row.max_errors_pct[l]:>10.{decimals}f}" for l in self.target_labels
            )
            lines.append(f"{row.workload:<18s} {cells}")
        lines.append("-" * len(header))
        for stat_name, stat in (
            ("Average", self.average_error),
            ("Std. Dev.", self.std_error),
            ("Max.", self.max_error),
        ):
            cells = "  ".join(f"{stat(l):>10.{decimals}f}" for l in self.target_labels)
            lines.append(f"{stat_name:<18s} {cells}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _CampaignTask:
    """Picklable description of one campaign workload (one output row)."""

    workload: str
    machine: MachineSpec
    measurement_cores: int
    targets: tuple[tuple[str, int], ...]
    config: EstimaConfig
    include_software_stalls: bool
    core_counts: tuple[int, ...] | None


def _run_campaign_task(
    task: _CampaignTask, service: PredictionService | None = None
) -> tuple[CampaignRow, dict[str, dict[str, int]]]:
    """Produce one campaign row (module-level so process pools can pickle it).

    The ground truth is simulated once, then every (estima, baseline) x target
    prediction is served by the prediction service: the service computes each
    pipeline once at the largest requested target and slices the curve for the
    smaller targets, which is exactly how the original serial loop evaluated
    its per-target errors.  Returns the row plus the cache counters observed
    while producing it (global regions reported as deltas so parallel workers
    can be summed without double counting).
    """
    experiment = Experiment(
        machine=task.machine,
        config=task.config,
        include_software_stalls=task.include_software_stalls,
    )
    truth = experiment.ground_truth(
        get_workload(task.workload),
        core_counts=list(task.core_counts) if task.core_counts is not None else None,
    )
    measured = truth.restrict_to(task.measurement_cores)

    service = service if service is not None else PredictionService(task.config)
    before = service.cache_stats()
    requests = [
        PredictionRequest(measured, target, baseline=baseline)
        for baseline in (False, True)
        for _, target in task.targets
    ]
    predictions = service.predict_batch(requests)
    estima_preds = predictions[: len(task.targets)]
    baseline_preds = predictions[len(task.targets) :]

    errors: dict[str, float] = {}
    baseline_errors: dict[str, float] = {}
    for (label, target), estima, baseline in zip(task.targets, estima_preds, baseline_preds):
        eval_cores = [
            int(c) for c in truth.cores if task.measurement_cores < c <= target
        ]
        errors[label] = estima.evaluate(truth, core_counts=eval_cores).max_error_pct
        baseline_errors[label] = baseline.evaluate(truth, core_counts=eval_cores).max_error_pct

    # Behaviour is judged on the full (largest-target) prediction, as before.
    full_estima = max(estima_preds, key=lambda p: p.target_cores)
    row = CampaignRow(
        workload=task.workload,
        max_errors_pct=errors,
        baseline_errors_pct=baseline_errors,
        behaviour_correct=scaling_behaviour_correct(
            truth, full_estima, task.measurement_cores
        ),
    )
    return row, _stats_delta(before, service.cache_stats())


# --------------------------------------------------------------------------- #
# Remote offload: how one campaign task travels over the serve protocol
# --------------------------------------------------------------------------- #


def _campaign_task_request(task: _CampaignTask) -> "dict[str, object] | None":
    """One task as a single-workload NDJSON campaign request, or ``None``.

    ``None`` means "run this task locally": the wire protocol cannot express
    ``include_software_stalls=False``, and a machine spec that is not (or no
    longer matches) the registry entry of its name would be rebuilt
    differently on the backend — bit-identity beats offload.
    """
    if task.include_software_stalls is not True:
        return None
    from repro.machine.machines import get_machine

    try:
        registered = get_machine(task.machine.name)
    except KeyError:
        return None
    if registered != task.machine:
        return None
    config = task.config
    request: dict[str, object] = {
        "op": "campaign",
        "machine": task.machine.name,
        "measure_cores": task.measurement_cores,
        "targets": {label: cores for label, cores in task.targets},
        "workloads": [task.workload],
        # Pin the backend to the serial reference path: results stay
        # bit-identical, and a backend whose own environment selects the
        # remote executor cannot recurse into the cluster.
        "executor": "serial",
        "config": {
            "kernel_names": list(config.kernel_names),
            "checkpoints": config.checkpoints,
            "min_prefix": config.min_prefix,
            "use_software_stalls": config.use_software_stalls,
            "use_frontend_stalls": config.use_frontend_stalls,
            "frequency_ratio": config.frequency_ratio,
            "dataset_ratio": config.dataset_ratio,
            "max_extrapolation_factor": config.max_extrapolation_factor,
        },
    }
    if task.core_counts is not None:
        request["core_counts"] = list(task.core_counts)
    return request


def _campaign_task_decode(
    documents: "list[dict[str, object]]",
) -> tuple[CampaignRow, dict[str, dict[str, int]]]:
    """Rebuild ``_run_campaign_task``'s return value from the response docs."""
    from repro.engine.cluster.remote import RemoteRequestError

    final = documents[-1] if documents else {}
    if not final.get("ok", False):
        raise RemoteRequestError(
            str(final.get("error", "empty backend response")),
            error_kind=str(final.get("error_kind", "internal")),
        )
    rows = [doc.get("row") for doc in documents[:-1] if doc.get("row") is not None]
    if len(rows) != 1:
        raise RemoteRequestError(
            f"expected exactly one campaign row, got {len(rows)}"
        )
    row_doc = rows[0]
    row = CampaignRow(
        workload=str(row_doc["workload"]),
        max_errors_pct={k: float(v) for k, v in row_doc["max_errors_pct"].items()},
        baseline_errors_pct={
            k: float(v) for k, v in row_doc["baseline_errors_pct"].items()
        },
        behaviour_correct=bool(row_doc["behaviour_correct"]),
    )
    summary = final.get("summary")
    engine = summary.get("engine", {}) if isinstance(summary, Mapping) else {}
    caches = engine.get("caches", {}) if isinstance(engine, Mapping) else {}
    stats: dict[str, dict[str, int]] = {}
    if isinstance(caches, Mapping):
        for region, counts in caches.items():
            if isinstance(counts, Mapping):
                stats[str(region)] = {str(k): int(v) for k, v in counts.items()}
    return row, stats


def _campaign_task_key(task: _CampaignTask) -> str:
    """Content digest routing one task (same task -> same backend shard)."""
    from repro.engine.cache import digest

    config = task.config
    return digest(
        "campaign-task",
        task.workload,
        task.machine.name,
        task.measurement_cores,
        repr(task.targets),
        repr(task.core_counts),
        repr(config.kernel_names),
        config.checkpoints,
        config.min_prefix,
        config.use_software_stalls,
        config.use_frontend_stalls,
        config.frequency_ratio,
        config.dataset_ratio,
        config.max_extrapolation_factor,
    )


def _register_campaign_remote_op() -> None:
    from repro.engine.cluster.remote import register_remote_op

    register_remote_op(
        _run_campaign_task,
        build_request=_campaign_task_request,
        decode_response=_campaign_task_decode,
        shard_key=_campaign_task_key,
    )


_register_campaign_remote_op()


def _stats_delta(
    before: Mapping[str, Mapping[str, int]], after: Mapping[str, Mapping[str, int]]
) -> dict[str, dict[str, int]]:
    """Per-region (hits, misses) accumulated between two stats snapshots."""
    delta: dict[str, dict[str, int]] = {}
    for region, counts in after.items():
        prior = before.get(region, {})
        delta[region] = {
            key: int(counts.get(key, 0)) - int(prior.get(key, 0)) for key in counts
        }
    return delta


def _merge_stats(
    totals: dict[str, dict[str, int]], part: Mapping[str, Mapping[str, int]]
) -> None:
    for region, counts in part.items():
        bucket = totals.setdefault(region, {})
        for key, value in counts.items():
            bucket[key] = bucket.get(key, 0) + int(value)


@dataclass
class ErrorCampaign:
    """Run ESTIMA over many workloads and several prediction targets.

    The per-workload tasks are independent and run through the engine layer:
    ``executor`` (an :class:`~repro.engine.executor.Executor` instance or
    backend name) overrides ``config.executor`` / ``ESTIMA_EXECUTOR``; the
    default serial backend reproduces the seed numbers bit for bit, and the
    parallel backend produces the same rows from worker processes.  Setting
    ``config.use_fit_cache`` additionally memoizes kernel fits and chosen
    extrapolations inside each process.
    """

    machine: MachineSpec
    measurement_cores: int
    targets: Mapping[str, int]  # label -> target core count
    config: EstimaConfig = field(default_factory=EstimaConfig)
    include_software_stalls: bool = True
    core_counts: Sequence[int] | None = None
    executor: Executor | str | None = None

    def run(
        self,
        workload_names: Iterable[str] | None = None,
        *,
        on_row: Callable[[CampaignRow], None] | None = None,
    ) -> CampaignResult:
        """Run the campaign; returns one row per workload (in input order).

        ``on_row`` streams progress: it is invoked with each finished
        :class:`CampaignRow` as soon as it completes, always in input order
        (the serve protocol's ``campaign`` op emits one NDJSON line per
        callback).  The returned result is identical with or without a
        callback — streaming changes when rows become visible, never their
        values.
        """
        names = tuple(workload_names) if workload_names is not None else TABLE4_WORKLOADS
        tasks = [
            _CampaignTask(
                workload=name,
                machine=self.machine,
                measurement_cores=self.measurement_cores,
                targets=tuple(self.targets.items()),
                config=self.config,
                include_software_stalls=self.include_software_stalls,
                core_counts=tuple(self.core_counts) if self.core_counts is not None else None,
            )
            for name in names
        ]
        executor = executor_for_config(self.config, self.executor)
        fit_pool_ctx = nullcontext()
        if executor.requires_pickling:
            # Workers build their own service; tasks and results cross the
            # process boundary, the service (and its caches) do not.
            outcome_iter = executor.imap(_run_campaign_task, tasks)
        elif isinstance(executor, ThreadExecutor):
            # The thread backend parallelises at the fit/kernel level, not
            # the workload level: workloads stay serial in-process (sharing
            # one service, like the serial backend) while the regression
            # layer fans each (prefix, kernel) fit grid out over this
            # executor's pool.  Rows are bit-identical either way.
            service = PredictionService(self.config)
            fit_pool_ctx = active_fit_pool(executor)
            outcome_iter = (_run_campaign_task(task, service) for task in tasks)
        else:
            # In-process: share one service so identical measurement sets are
            # deduplicated across workloads too, not only across targets.
            service = PredictionService(self.config)
            outcome_iter = executor.imap(
                lambda task: _run_campaign_task(task, service), tasks
            )

        rows: list[CampaignRow] = []
        cache_totals: dict[str, dict[str, int]] = {}
        profile_before = PROFILER.snapshot()
        with fit_pool_ctx:
            for row, stats in outcome_iter:
                rows.append(row)
                _merge_stats(cache_totals, stats)
                if on_row is not None:
                    on_row(row)
        return CampaignResult(
            machine=self.machine.name,
            measurement_cores=self.measurement_cores,
            rows=tuple(rows),
            target_labels=tuple(self.targets),
            engine_stats={
                "executor": executor.name,
                "workloads": len(tasks),
                "caches": cache_totals,
                "executor_stats": executor.stats(),
                # Per-stage fit timings of this run (in-process stages only:
                # a process-pool backend fits in its workers, whose profilers
                # are per-process, so the delta is empty there).
                "profile": profile_delta(profile_before, PROFILER.snapshot()),
            },
        )
