"""Multi-workload measurement campaigns (the paper's Tables 4, 5 and 7).

A campaign runs the same experiment over a list of workloads and collects the
per-workload maximum prediction errors for one or more prediction targets —
exactly the structure of Table 4 ("maximum prediction errors with measurements
on one processor of each machine") and Table 7 (Xeon20-to-Xeon48).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core import EstimaConfig
from repro.machine.machines import MachineSpec
from repro.workloads.registry import TABLE4_WORKLOADS, get_workload

from .experiment import Experiment, ExperimentResult

__all__ = ["CampaignRow", "CampaignResult", "ErrorCampaign"]


@dataclass(frozen=True)
class CampaignRow:
    """Per-workload error summary, one column per prediction target."""

    workload: str
    max_errors_pct: Mapping[str, float]  # target label -> max error (%)
    baseline_errors_pct: Mapping[str, float]
    behaviour_correct: bool


@dataclass(frozen=True)
class CampaignResult:
    """All rows of one campaign plus aggregate statistics."""

    machine: str
    measurement_cores: int
    rows: tuple[CampaignRow, ...]
    target_labels: tuple[str, ...]

    def errors_for(self, label: str) -> np.ndarray:
        return np.asarray([row.max_errors_pct[label] for row in self.rows], dtype=float)

    def average_error(self, label: str) -> float:
        return float(np.mean(self.errors_for(label)))

    def std_error(self, label: str) -> float:
        return float(np.std(self.errors_for(label)))

    def max_error(self, label: str) -> float:
        return float(np.max(self.errors_for(label)))

    def workloads_below(self, label: str, threshold_pct: float) -> int:
        """How many workloads stay below an error threshold (paper's headline counts)."""
        return int(np.sum(self.errors_for(label) < threshold_pct))

    def all_behaviours_correct(self) -> bool:
        """The paper's qualitative claim: no workload's behaviour is mispredicted."""
        return all(row.behaviour_correct for row in self.rows)

    def format_table(self, *, decimals: int = 1) -> str:
        """Render a Table-4 style text table."""
        header = f"{'Benchmark':<18s} " + "  ".join(f"{l:>10s}" for l in self.target_labels)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = "  ".join(
                f"{row.max_errors_pct[l]:>10.{decimals}f}" for l in self.target_labels
            )
            lines.append(f"{row.workload:<18s} {cells}")
        lines.append("-" * len(header))
        for stat_name, stat in (
            ("Average", self.average_error),
            ("Std. Dev.", self.std_error),
            ("Max.", self.max_error),
        ):
            cells = "  ".join(f"{stat(l):>10.{decimals}f}" for l in self.target_labels)
            lines.append(f"{stat_name:<18s} {cells}")
        return "\n".join(lines)


@dataclass
class ErrorCampaign:
    """Run ESTIMA over many workloads and several prediction targets."""

    machine: MachineSpec
    measurement_cores: int
    targets: Mapping[str, int]  # label -> target core count
    config: EstimaConfig = field(default_factory=EstimaConfig)
    include_software_stalls: bool = True
    core_counts: Sequence[int] | None = None

    def run(self, workload_names: Iterable[str] | None = None) -> CampaignResult:
        """Run the campaign; returns one row per workload."""
        names = tuple(workload_names) if workload_names is not None else TABLE4_WORKLOADS
        experiment = Experiment(
            machine=self.machine,
            config=self.config,
            include_software_stalls=self.include_software_stalls,
        )
        rows: list[CampaignRow] = []
        max_target = max(self.targets.values())
        for name in names:
            workload = get_workload(name)
            result = experiment.run(
                workload,
                measurement_cores=self.measurement_cores,
                target_cores=max_target,
                core_counts=list(self.core_counts) if self.core_counts is not None else None,
            )
            errors: dict[str, float] = {}
            baseline_errors: dict[str, float] = {}
            for label, target in self.targets.items():
                eval_cores = [
                    int(c)
                    for c in result.ground_truth.cores
                    if self.measurement_cores < c <= target
                ]
                errors[label] = result.estima.evaluate(
                    result.ground_truth, core_counts=eval_cores
                ).max_error_pct
                baseline_errors[label] = result.baseline.evaluate(
                    result.ground_truth, core_counts=eval_cores
                ).max_error_pct
            rows.append(
                CampaignRow(
                    workload=name,
                    max_errors_pct=errors,
                    baseline_errors_pct=baseline_errors,
                    behaviour_correct=result.scaling_behaviour_correct(),
                )
            )
        return CampaignResult(
            machine=self.machine.name,
            measurement_cores=self.measurement_cores,
            rows=tuple(rows),
            target_labels=tuple(self.targets),
        )
