"""Persistence of measurement sets, predictions and campaign tables.

The original tool is file-oriented: it writes the collected counters per core
count, reads them back for extrapolation, and emits prediction tables.  These
helpers provide the same workflow on top of JSON and CSV so examples and
benchmarks can save and reload their inputs and outputs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.core.measurement import MeasurementSet
from repro.core.result import ScalabilityPrediction
from repro.core.time_extrapolation import TimeExtrapolationPrediction

if TYPE_CHECKING:  # import only for annotations: io must stay campaign-free
    from repro.runner.campaign import CampaignResult, CampaignRow

__all__ = [
    "save_measurements",
    "load_measurements",
    "prediction_payload",
    "baseline_payload",
    "campaign_row_payload",
    "campaign_result_payload",
    "save_prediction_csv",
    "save_prediction_json",
    "load_prediction_json",
    "save_table",
]


def prediction_payload(prediction: ScalabilityPrediction) -> dict:
    """The machine-readable document of one ESTIMA prediction.

    This is the shared response schema of ``estima predict --json`` and the
    ``estima serve`` front-ends (the NDJSON ``predict`` op and the HTTP
    gateway's ``POST /v1/predict`` / ``/v1/predict_batch`` routes): all emit
    exactly this structure, so clients of one consume the others unchanged.
    """
    return {
        "workload": prediction.workload,
        "machine": prediction.machine,
        "measured_cores": [int(c) for c in prediction.measured.cores],
        "target_cores": prediction.target_cores,
        "predicted_peak_cores": prediction.predicted_peak_cores(),
        "prediction_cores": [int(c) for c in prediction.prediction_cores],
        "predicted_times_s": [float(t) for t in prediction.predicted_times],
        "stalls_per_core": [float(s) for s in prediction.stalls_per_core],
        "scaling_factor": {
            "kernel": prediction.scaling_factor.kernel_name,
            "correlation": float(prediction.scaling_factor.correlation),
        },
        "category_kernels": {
            name: result.kernel_name
            for name, result in prediction.category_extrapolations.items()
        },
        "dominant_categories": [
            {"category": name, "fraction": float(fraction)}
            for name, fraction in prediction.dominant_categories(prediction.target_cores)
        ],
    }


def baseline_payload(prediction: TimeExtrapolationPrediction) -> dict:
    """The machine-readable document of one time-extrapolation baseline run."""
    return {
        "workload": prediction.workload,
        "machine": prediction.machine,
        "measured_cores": [int(c) for c in prediction.measured.cores],
        "target_cores": prediction.target_cores,
        "predicted_peak_cores": prediction.predicted_peak_cores(),
        "prediction_cores": [int(c) for c in prediction.prediction_cores],
        "predicted_times_s": [float(t) for t in prediction.predicted_times],
        "kernel": prediction.extrapolation.kernel_name,
    }


def campaign_row_payload(row: "CampaignRow") -> dict:
    """The machine-readable document of one campaign row.

    This is the shared row schema of ``estima campaign --json`` (each element
    of ``"rows"``) and the serve protocol's streamed ``campaign`` op — the
    ``"row"`` field of each NDJSON progress line and of each ``POST
    /v1/campaign`` HTTP chunk — all build rows through this helper, so
    streamed rows are bit-identical to batch output by construction (and
    pinned by tests).
    """
    return {
        "workload": row.workload,
        "max_errors_pct": {k: float(v) for k, v in row.max_errors_pct.items()},
        "baseline_errors_pct": {k: float(v) for k, v in row.baseline_errors_pct.items()},
        "behaviour_correct": bool(row.behaviour_correct),
    }


def campaign_result_payload(result: "CampaignResult") -> dict:
    """The machine-readable document of one campaign (rows + aggregates).

    ``estima campaign --json`` prints exactly this (plus an ``"engine"``
    block); the serve protocol's ``campaign`` op returns it as the final
    ``"summary"`` document after the streamed rows.
    """
    return {
        "machine": result.machine,
        "measurement_cores": result.measurement_cores,
        "target_labels": list(result.target_labels),
        "rows": [campaign_row_payload(row) for row in result.rows],
        "aggregates": {
            label: {
                "average_error_pct": result.average_error(label),
                "std_error_pct": result.std_error(label),
                "max_error_pct": result.max_error(label),
            }
            for label in result.target_labels
        },
        "all_behaviours_correct": bool(result.all_behaviours_correct()),
    }


def save_measurements(measurements: MeasurementSet, path: str | Path) -> Path:
    """Write a measurement set to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    measurements.save(path)
    return path


def load_measurements(path: str | Path) -> MeasurementSet:
    """Read a measurement set previously written by :func:`save_measurements`."""
    return MeasurementSet.load(path)


def save_prediction_csv(prediction: ScalabilityPrediction, path: str | Path) -> Path:
    """Write predicted times (and stalls per core) as a CSV table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cores", "predicted_time_s", "stalls_per_core"])
        for i, cores in enumerate(prediction.prediction_cores):
            writer.writerow(
                [int(cores), float(prediction.predicted_times[i]), float(prediction.stalls_per_core[i])]
            )
    return path


def save_prediction_json(prediction: ScalabilityPrediction, path: str | Path) -> Path:
    """Write a prediction summary (times, per-category kernels) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "workload": prediction.workload,
        "machine": prediction.machine,
        "target_cores": prediction.target_cores,
        "measured_cores": [int(c) for c in prediction.measured.cores],
        "prediction_cores": [int(c) for c in prediction.prediction_cores],
        "predicted_times": [float(t) for t in prediction.predicted_times],
        "stalls_per_core": [float(s) for s in prediction.stalls_per_core],
        "scaling_factor_kernel": prediction.scaling_factor.kernel_name,
        "scaling_factor_correlation": prediction.scaling_factor.correlation,
        "category_kernels": {
            name: result.kernel_name
            for name, result in prediction.category_extrapolations.items()
        },
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_prediction_json(path: str | Path) -> dict:
    """Load a prediction summary written by :func:`save_prediction_json`."""
    return json.loads(Path(path).read_text())


def save_table(rows: Iterable[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of homogeneous dict rows as CSV (campaign tables)."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot save an empty table")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _plain(v) for k, v in row.items()})
    return path


def _plain(value: object) -> object:
    """Convert numpy scalars to built-ins for the csv module."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
