"""K-nearest-neighbours calculation kernel.

The paper uses a modified KNN kernel (the distance-computation core of a
recommender system), written in Java and compiled with GCJ.  Threads compute
distances between a query set and a large reference set partitioned across
them, then merge the per-thread top-k lists under a short lock.  The kernel is
compute-bound with a streaming access pattern; the merge lock and the memory
bandwidth of the reference matrix are the only scalability costs.  The paper's
errors are 11-32% (the top-k merge grows with the thread count).

Work grows super-linearly with the dataset (all query-reference pairs), which
the profile models with a dataset exponent of 2 on the operation count.
"""

from __future__ import annotations

from repro.sync import SpinlockModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import compute_mix, scaled_ops

__all__ = ["Knn"]


class Knn(Workload):
    """Distance-computation KNN kernel with a locked top-k merge."""

    name = "knn"
    suite = "kernel"
    description = "k-nearest-neighbours distance kernel with locked top-k merge"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(7.0e6, dataset_scale, exponent=2.0),
            mix=compute_mix(
                instructions_per_op=1600.0,
                flop_fraction=0.40,
                branch_fraction=0.06,
                branch_miss_rate=0.015,
                mem_refs_per_op=420.0,
                store_fraction=0.10,
                base_ipc=1.9,
                mlp=3.5,
            ),
            private_working_set_mb=40.0 * dataset_scale,
            shared_working_set_mb=150.0 * dataset_scale,
            shared_access_fraction=0.35,
            shared_write_fraction=0.03,
            serial_fraction=0.004,
            locality=0.99,
            locks=SpinlockModel(
                acquires_per_op=0.02,
                critical_section_cycles=350.0,
                num_locks=1,
                kind="ticket",
            ),
            noise_level=0.015,
            software_stall_report=False,
        )
