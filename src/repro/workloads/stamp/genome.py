"""``genome`` — gene sequencing by segment matching (STAMP).

Genome reconstructs a gene sequence from a large pool of overlapping segments.
Its transactions insert segments into a shared hash set and link matched
segments; the hash set is large, so conflicts are rare and the application
scales well — the paper reports prediction errors below 7% on both machines
and an 87% accuracy improvement when the (small) aborted-transaction cycles
are included (Figure 13).
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Genome"]


class Genome(Workload):
    """Gene sequencing; large hash set, low-conflict STM, scales well."""

    name = "genome"
    suite = "stamp"
    description = "Gene sequencing via segment matching; low-contention STM (STAMP)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(5.0e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=2200.0,
                mem_refs_per_op=600.0,
                store_fraction=0.25,
            ),
            private_working_set_mb=30.0 * dataset_scale,
            shared_working_set_mb=400.0 * dataset_scale,
            shared_access_fraction=0.35,
            shared_write_fraction=0.10,
            serial_fraction=0.002,
            locality=0.975,
            stm=StmModel(
                tx_per_op=1.2,
                tx_body_cycles=700.0,
                tx_accesses=90.0,
                write_footprint=3.0,
                # Segments hash into a very large table: conflicts are rare.
                conflict_table_size=60000.0 * dataset_scale,
                contention_growth=1.8,
            ),
            noise_level=0.012,
            software_stall_report=True,
        )
