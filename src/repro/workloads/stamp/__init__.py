"""STAMP benchmark suite models (Stanford Transactional Applications for Multi-Processing).

Eight applications from STAMP appear in the paper's evaluation, all
synchronizing through the SwissTM software transactional memory runtime, which
— when configured with detailed statistics — reports the cycles spent in
aborted transactions.  Those aborted-transaction cycles are the paper's main
software-stall category (Section 5.3).
"""

from .genome import Genome
from .intruder import Intruder
from .kmeans import Kmeans
from .labyrinth import Labyrinth
from .ssca2 import Ssca2
from .vacation import VacationHigh, VacationLow
from .yada import Yada

__all__ = [
    "Genome",
    "Intruder",
    "Kmeans",
    "Labyrinth",
    "Ssca2",
    "VacationHigh",
    "VacationLow",
    "Yada",
]
