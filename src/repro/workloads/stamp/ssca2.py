"""``ssca2`` — scalable synthetic compact applications, kernel 1 (STAMP).

SSCA2 builds a large directed multigraph; the transactional kernel adds nodes
and edges to adjacency arrays.  Transactions are tiny (a couple of writes into
a huge structure), so conflicts stay negligible; the workload is dominated by
irregular memory accesses over a graph that dwarfs the caches, which makes it
memory-bound but still well scaling.  Prediction errors in the paper are small
on Opteron (< 9%) and moderate on the Xeons.
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Ssca2"]


class Ssca2(Workload):
    """Graph construction; tiny low-conflict transactions, memory-bound."""

    name = "ssca2"
    suite = "stamp"
    description = "Synthetic graph kernel; tiny transactions over a huge graph (STAMP)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(9.0e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=950.0,
                mem_refs_per_op=320.0,
                store_fraction=0.30,
                base_ipc=1.3,
                mlp=2.5,
            ),
            private_working_set_mb=10.0 * dataset_scale,
            shared_working_set_mb=900.0 * dataset_scale,
            shared_access_fraction=0.60,
            shared_write_fraction=0.08,
            serial_fraction=0.002,
            locality=0.96,
            stm=StmModel(
                tx_per_op=1.0,
                tx_body_cycles=180.0,
                tx_accesses=18.0,
                write_footprint=2.0,
                conflict_table_size=300000.0 * dataset_scale,
                contention_growth=1.5,
            ),
            noise_level=0.015,
            software_stall_report=True,
        )
