"""``yada`` — Delaunay mesh refinement with Ruppert's algorithm (STAMP).

Threads pick "bad" triangles (minimum angle below a threshold) from a shared
work queue, re-triangulate the surrounding cavity inside a transaction, and
push newly created bad triangles back.  Cavities of concurrently processed
triangles overlap increasingly often as threads are added, so the abort rate
— and with it the aborted-transaction stall category — climbs steeply.  The
paper shows yada as a case where time extrapolation misses the collapse but
ESTIMA captures it (Figure 8(c)), with a 130% error gap between the two.
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Yada"]


class Yada(Workload):
    """Delaunay refinement; long, overlapping transactions, degrades mid-range."""

    name = "yada"
    suite = "stamp"
    description = "Ruppert's Delaunay mesh refinement; long contended STM transactions (STAMP)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(2.5e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=5200.0,
                mem_refs_per_op=1500.0,
                store_fraction=0.32,
                branch_miss_rate=0.05,
            ),
            private_working_set_mb=20.0 * dataset_scale,
            shared_working_set_mb=500.0 * dataset_scale,
            shared_access_fraction=0.55,
            shared_write_fraction=0.30,
            serial_fraction=0.003,
            locality=0.97,
            stm=StmModel(
                tx_per_op=1.0,
                tx_body_cycles=3200.0,
                tx_accesses=420.0,
                # A cavity touches tens of triangles; the work queue head is a
                # additional hot spot.
                write_footprint=18.0,
                conflict_table_size=244000.0 * dataset_scale,
                contention_growth=2.45,
            ),
            noise_level=0.02,
            software_stall_report=True,
        )
