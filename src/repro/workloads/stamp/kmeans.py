"""``kmeans`` — partition-based clustering (STAMP).

K-means alternates an embarrassingly parallel assignment phase with a
transactional update of the shared cluster centroids, with a barrier between
iterations.  Two properties matter for the paper:

* the centroid array is tiny, so once enough threads update it concurrently
  the update transactions conflict heavily and the application stops scaling
  well before the machine is full — but the *execution time* measured on up to
  12 cores shows no hint of it, which is why direct time extrapolation
  mispredicts kmeans (Figure 1) while ESTIMA does not (Figure 8(d));
* its run-to-run times fluctuate noticeably (the paper attributes its 50%
  maximum error to these fluctuations, not to a wrong trend), reproduced here
  with a higher ``noise_level`` than any other workload.
"""

from __future__ import annotations

from repro.sync import BarrierModel, StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Kmeans"]


class Kmeans(Workload):
    """Clustering with tiny shared centroids; collapses mid-range, noisy."""

    name = "kmeans"
    suite = "stamp"
    description = "Partition-based clustering; contended centroid updates (STAMP)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(6.0e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=1800.0,
                mem_refs_per_op=420.0,
                store_fraction=0.22,
            ),
            private_working_set_mb=120.0 * dataset_scale,
            shared_working_set_mb=2.0,
            shared_access_fraction=0.30,
            shared_write_fraction=0.40,
            serial_fraction=0.003,
            locality=0.985,
            stm=StmModel(
                tx_per_op=1.0,
                tx_body_cycles=450.0,
                tx_accesses=60.0,
                write_footprint=6.0,
                # The centroid array is the entire hot set: very small.
                conflict_table_size=10000.0,
                contention_growth=2.2,
            ),
            barrier=BarrierModel(
                barriers_per_op=0.002,
                phase_cycles_per_op=1500.0,
                imbalance_cv=0.18,
            ),
            noise_level=0.06,
            software_stall_report=True,
        )
