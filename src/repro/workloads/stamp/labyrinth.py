"""``labyrinth`` — parallel maze routing (STAMP).

Threads route paths through a shared three-dimensional grid using Lee's
algorithm; each routing attempt copies the grid privately, computes the path,
and commits it in one long transaction.  Transactions are huge but touch
mostly disjoint grid regions, so conflicts grow only moderately with the
thread count; the dominant cost is the memory traffic of the grid copies.
The paper reports moderate errors (10-18%) and reasonable scaling.
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Labyrinth"]


class Labyrinth(Workload):
    """Maze routing; very long, mostly disjoint transactions, memory heavy."""

    name = "labyrinth"
    suite = "stamp"
    description = "Lee-algorithm maze routing; long low-conflict STM transactions (STAMP)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(6.0e4, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=160000.0,
                mem_refs_per_op=52000.0,
                store_fraction=0.40,
                base_ipc=1.6,
                mlp=4.0,
            ),
            private_working_set_mb=64.0 * dataset_scale,
            shared_working_set_mb=96.0 * dataset_scale,
            shared_access_fraction=0.25,
            shared_write_fraction=0.12,
            serial_fraction=0.002,
            locality=0.96,
            stm=StmModel(
                tx_per_op=1.0,
                tx_body_cycles=110000.0,
                tx_accesses=3000.0,
                write_footprint=60.0,
                # The grid is large relative to a path's footprint.
                conflict_table_size=400000.0 * dataset_scale,
                contention_growth=1.3,
            ),
            noise_level=0.02,
            software_stall_report=True,
        )
