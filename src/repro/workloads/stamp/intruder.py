"""``intruder`` — signature-based network intrusion detection (STAMP).

The benchmark emulates Design 5 of the Haagdorens et al. NIDS: network packets
flow through capture, reassembly and detection phases; capture and reassembly
are enclosed in STM transactions that contend on shared packet queues and the
reassembly map.  This is the paper's running example (Section 3.2, Figure 5):

* on the measurement window (<= 12 cores of the Opteron) execution time still
  improves, so time extrapolation predicts continued scaling;
* the fine-grain stall categories — above all the aborted-transaction cycles —
  already grow steeply, so ESTIMA predicts the slowdown that materialises
  beyond roughly two dozen cores.

The Figure-11 optimisation ("decode more elements in every step") is exposed
through ``decode_batch``: batching amortises the contended dequeue, which the
model reflects as a proportionally larger conflict table and fewer
transactions per packet.
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["Intruder"]


class Intruder(Workload):
    """Network-packet intrusion detection with highly contended STM queues."""

    name = "intruder"
    suite = "stamp"
    description = "Signature-based NIDS; contended STM packet queues (STAMP)"

    def __init__(self, *, decode_batch: int = 1) -> None:
        if decode_batch < 1:
            raise ValueError("decode_batch must be >= 1")
        self.decode_batch = decode_batch
        if decode_batch > 1:
            self.name = f"intruder_batch{decode_batch}"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        batch = float(self.decode_batch)
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(4.0e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=2600.0,
                mem_refs_per_op=750.0,
                store_fraction=0.30,
                branch_miss_rate=0.07,
            ),
            private_working_set_mb=40.0 * dataset_scale,
            shared_working_set_mb=180.0 * dataset_scale,
            shared_access_fraction=0.45,
            shared_write_fraction=0.28,
            serial_fraction=0.004,
            locality=0.975,
            stm=StmModel(
                # Two transactions per packet (capture + reassembly); batching
                # decodes `batch` packets per capture transaction.
                tx_per_op=2.0 / batch,
                tx_body_cycles=900.0,
                tx_accesses=140.0,
                write_footprint=7.0,
                # The shared FIFO queue plus the reassembly map are a small hot
                # set; batching effectively widens it.
                conflict_table_size=28000.0 * batch,
                contention_growth=2.3,
            ),
            noise_level=0.015,
            software_stall_report=True,
        )
