"""``vacation`` — travel reservation system (STAMP), high- and low-contention runs.

Vacation emulates an OLTP travel booking service: client transactions reserve
cars, flights and rooms in shared red-black trees.  STAMP ships two standard
configurations that the paper evaluates separately:

* ``vacation-low`` — most operations touch a small slice of the trees and the
  share of read-only queries is high, so conflicts are rare;
* ``vacation-high`` — longer transactions over a larger fraction of the trees,
  with more reservations relative to queries, so contention is noticeably
  higher (but still far from intruder/yada levels).

Both keep scaling on the paper's machines with moderate prediction errors
(10-25%).
"""

from __future__ import annotations

from repro.sync import StmModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import scaled_ops, transactional_mix

__all__ = ["VacationHigh", "VacationLow"]


class _VacationBase(Workload):
    suite = "stamp"

    #: Relative contention knobs overridden by the two configurations.
    _write_footprint: float
    _conflict_table: float
    _tx_body_cycles: float
    _tx_accesses: float

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(3.5e6, dataset_scale),
            mix=transactional_mix(
                instructions_per_op=3200.0,
                mem_refs_per_op=950.0,
                store_fraction=0.25,
            ),
            private_working_set_mb=15.0 * dataset_scale,
            shared_working_set_mb=350.0 * dataset_scale,
            shared_access_fraction=0.50,
            shared_write_fraction=0.15,
            serial_fraction=0.002,
            locality=0.975,
            stm=StmModel(
                tx_per_op=1.0,
                tx_body_cycles=self._tx_body_cycles,
                tx_accesses=self._tx_accesses,
                write_footprint=self._write_footprint,
                conflict_table_size=self._conflict_table * dataset_scale,
                contention_growth=1.8,
            ),
            noise_level=0.015,
            software_stall_report=True,
        )


class VacationLow(_VacationBase):
    """Travel reservations, low-contention configuration."""

    name = "vacation_low"
    description = "OLTP travel bookings over shared trees, low contention (STAMP)"
    _write_footprint = 4.0
    _conflict_table = 40000.0
    _tx_body_cycles = 1800.0
    _tx_accesses = 260.0


class VacationHigh(_VacationBase):
    """Travel reservations, high-contention configuration."""

    name = "vacation_high"
    description = "OLTP travel bookings over shared trees, high contention (STAMP)"
    _write_footprint = 8.0
    _conflict_table = 26000.0
    _tx_body_cycles = 2600.0
    _tx_accesses = 380.0
