"""Shared building blocks for workload definitions.

Every concrete workload builds a :class:`~repro.workloads.base.WorkloadProfile`
from a handful of numbers: how many operations a run performs, the per-
operation instruction mix, working-set sizes, sharing behaviour, and the
synchronization profile.  The helpers here keep those definitions compact and
uniform across the 21 workloads, and document the calibration conventions:

* ``total_ops`` is sized so a single-core run takes a few seconds on the
  2-3 GHz machines of the paper (the paper's inputs do the same);
* datasets scale working sets *and* operation counts linearly with
  ``dataset_scale`` unless a workload overrides the exponents (kernels whose
  work grows super-linearly with input, e.g. KNN, use a different exponent);
* the qualitative scalability target of each workload (scales well / stops
  scaling at N cores / slows down) is documented in its class docstring and
  asserted by the workload test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.pipeline import InstructionMix

__all__ = ["compute_mix", "memory_mix", "transactional_mix", "scaled_ops"]


def compute_mix(
    *,
    instructions_per_op: float,
    flop_fraction: float = 0.0,
    branch_fraction: float = 0.1,
    branch_miss_rate: float = 0.02,
    mem_refs_per_op: float | None = None,
    store_fraction: float = 0.3,
    base_ipc: float = 1.8,
    mlp: float = 3.0,
) -> InstructionMix:
    """Instruction mix for compute-bound kernels (few memory references)."""
    if mem_refs_per_op is None:
        mem_refs_per_op = instructions_per_op * 0.2
    return InstructionMix(
        instructions_per_op=instructions_per_op,
        mem_refs_per_op=mem_refs_per_op,
        store_fraction=store_fraction,
        flop_fraction=flop_fraction,
        branch_fraction=branch_fraction,
        branch_miss_rate=branch_miss_rate,
        base_ipc=base_ipc,
        mlp=mlp,
    )


def memory_mix(
    *,
    instructions_per_op: float,
    mem_refs_per_op: float,
    store_fraction: float = 0.35,
    flop_fraction: float = 0.02,
    branch_fraction: float = 0.15,
    branch_miss_rate: float = 0.05,
    base_ipc: float = 1.4,
    mlp: float = 2.0,
) -> InstructionMix:
    """Instruction mix for pointer-chasing / data-structure workloads."""
    return InstructionMix(
        instructions_per_op=instructions_per_op,
        mem_refs_per_op=mem_refs_per_op,
        store_fraction=store_fraction,
        flop_fraction=flop_fraction,
        branch_fraction=branch_fraction,
        branch_miss_rate=branch_miss_rate,
        base_ipc=base_ipc,
        mlp=mlp,
    )


def transactional_mix(
    *,
    instructions_per_op: float,
    mem_refs_per_op: float,
    store_fraction: float = 0.3,
    branch_fraction: float = 0.18,
    branch_miss_rate: float = 0.06,
    base_ipc: float = 1.5,
    mlp: float = 2.0,
) -> InstructionMix:
    """Instruction mix for STM applications (instrumented accesses, branchy)."""
    return InstructionMix(
        instructions_per_op=instructions_per_op,
        mem_refs_per_op=mem_refs_per_op,
        store_fraction=store_fraction,
        flop_fraction=0.01,
        branch_fraction=branch_fraction,
        branch_miss_rate=branch_miss_rate,
        base_ipc=base_ipc,
        mlp=mlp,
    )


def scaled_ops(base_ops: float, dataset_scale: float, *, exponent: float = 1.0) -> float:
    """Operation count at a given dataset scale.

    ``exponent`` describes how the algorithm's work grows with its input
    (1.0 for linear scans and per-element processing, >1 for super-linear
    kernels such as all-pairs distance computations).
    """
    if base_ops <= 0:
        raise ValueError("base_ops must be positive")
    if dataset_scale <= 0:
        raise ValueError("dataset_scale must be positive")
    return base_ops * dataset_scale**exponent
