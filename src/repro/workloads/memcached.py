"""memcached server workload (cloudsuite data-caching style).

The paper's first production experiment (Section 4.3): a memcached server
driven by the cloudsuite client with a 10x-scaled dataset, read-mostly
requests over 550-byte objects, clients colocated to remove network effects.
Measurements are taken on up to three hardware threads of the Haswell desktop
and extrapolated to the 20-core Xeon (7x the size); the paper's prediction
errors stay below 30% and correctly anticipate that the server stops scaling.

The scalability limits of memcached in this era are well documented: a global
cache lock protects the hash table and the LRU lists, and a single
listener/dispatch thread serializes connection handling.  The model reflects
both (a coarse lock with a short critical section per request plus a small
serial fraction) on top of a read-mostly, cache-resident key-value access
pattern.
"""

from __future__ import annotations

from repro.sync import MutexModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["Memcached"]


class Memcached(Workload):
    """Read-mostly key-value server limited by its global cache/LRU lock."""

    name = "memcached"
    suite = "production"
    description = "memcached with a cloudsuite-like read-mostly workload (550 B objects)"

    def __init__(self, *, get_fraction: float = 0.95) -> None:
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be within [0, 1]")
        self.get_fraction = get_fraction

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        update_fraction = 1.0 - self.get_fraction
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(1.5e7, dataset_scale),
            mix=memory_mix(
                instructions_per_op=2000.0,
                mem_refs_per_op=520.0,
                store_fraction=0.18 + 0.2 * update_fraction,
                base_ipc=1.5,
                mlp=2.5,
            ),
            private_working_set_mb=2.0,
            shared_working_set_mb=700.0 * dataset_scale,
            shared_access_fraction=0.75,
            shared_write_fraction=0.05 + 0.4 * update_fraction,
            serial_fraction=0.01,
            locality=0.97,
            locks=MutexModel(
                # Every request touches the cache lock; LRU maintenance makes
                # even GETs write under it.
                acquires_per_op=1.0,
                critical_section_cycles=200.0,
                num_locks=1,
            ),
            noise_level=0.02,
            software_stall_report=False,
        )
