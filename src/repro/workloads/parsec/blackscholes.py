"""``blackscholes`` — option pricing with the Black-Scholes PDE (PARSEC).

Each thread prices an independent slice of a portfolio of European options;
there is no shared mutable state and only a join at the end, making this the
canonical embarrassingly parallel, FP-heavy benchmark.  The paper uses it
(Figure 2) as an example of an application whose stalled cycles per core and
execution time correlate perfectly and whose scalability is easy to predict
(errors of a few percent).
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import compute_mix, scaled_ops

__all__ = ["Blackscholes"]


class Blackscholes(Workload):
    """Embarrassingly parallel FP option pricing; scales near-linearly."""

    name = "blackscholes"
    suite = "parsec"
    description = "Black-Scholes option pricing; embarrassingly parallel FP kernel (PARSEC)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(8.0e6, dataset_scale),
            mix=compute_mix(
                instructions_per_op=1400.0,
                flop_fraction=0.45,
                branch_fraction=0.05,
                branch_miss_rate=0.01,
                mem_refs_per_op=180.0,
                store_fraction=0.15,
                base_ipc=2.2,
                mlp=4.0,
            ),
            private_working_set_mb=60.0 * dataset_scale,
            shared_working_set_mb=0.5,
            shared_access_fraction=0.01,
            shared_write_fraction=0.01,
            serial_fraction=0.001,
            locality=0.995,
            noise_level=0.008,
            software_stall_report=False,
        )
