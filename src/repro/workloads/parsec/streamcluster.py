"""``streamcluster`` — online clustering of a point stream (PARSEC).

For a stream of input points the kernel finds a predetermined number of
medians so every point is assigned to its nearest centre.  The parallel
structure is a long sequence of short data-parallel phases separated by
barriers; the stock PARSEC barrier is built on ``pthread_mutex_trylock``
loops, and the per-point gain computation streams over a working set that
exceeds the last-level cache.

This combination is why streamcluster is the paper's hardest case:

* the trylock-based barriers plus memory-bandwidth saturation cause a
  slowdown past roughly 30 cores of the Opteron that is *not* hinted at by
  stalls measured on 12 cores (Section 5.4, Figure 15) — ESTIMA still
  captures the slowdown but with its largest errors;
* hardware stalls alone miss the synchronization waiting, so including the
  pthread-wrapper software stalls visibly improves the correlation
  (Figure 14) and the prediction (Figure 13);
* replacing the mutexes with test-and-set spinlocks — the fix suggested by
  the dominant stall category — improves execution time by up to 74%
  (Figure 11), reproduced here via ``optimized_barriers=True``.
"""

from __future__ import annotations

from repro.sync import BarrierModel, MutexModel, SpinlockModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["Streamcluster"]


class Streamcluster(Workload):
    """Barrier- and bandwidth-bound clustering; degrades at high core counts."""

    name = "streamcluster"
    suite = "parsec"
    description = "Streaming k-median clustering; trylock barriers, bandwidth-bound (PARSEC)"

    def __init__(self, *, optimized_barriers: bool = False) -> None:
        self.optimized_barriers = optimized_barriers
        if optimized_barriers:
            self.name = "streamcluster_spinlock"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        trylock = not self.optimized_barriers
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(5.0e6, dataset_scale),
            mix=memory_mix(
                instructions_per_op=2400.0,
                mem_refs_per_op=1100.0,
                store_fraction=0.20,
                flop_fraction=0.20,
                base_ipc=1.6,
                mlp=3.0,
            ),
            private_working_set_mb=30.0 * dataset_scale,
            shared_working_set_mb=220.0 * dataset_scale,
            shared_access_fraction=0.55,
            shared_write_fraction=0.06,
            serial_fraction=0.004,
            locality=0.95,
            barrier=BarrierModel(
                barriers_per_op=0.2,
                phase_cycles_per_op=3200.0,
                imbalance_cv=0.30,
                trylock_based=trylock,
                trylock_storm=0.15,
            ),
            locks=(
                MutexModel(
                    acquires_per_op=0.5,
                    critical_section_cycles=350.0,
                    num_locks=4,
                    trylock_loop=True,
                )
                if trylock
                # The Section-4.6 fix: same locking pattern, but with cheap
                # test-and-set spinlocks instead of pthread mutexes.
                else SpinlockModel(
                    acquires_per_op=0.5,
                    critical_section_cycles=350.0,
                    num_locks=4,
                    kind="ttas",
                )
            ),
            noise_level=0.025,
            software_stall_report=True,
        )
