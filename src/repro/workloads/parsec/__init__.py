"""PARSEC benchmark suite models.

Six PARSEC applications appear in the paper's evaluation.  They synchronize
with stock pthread primitives (mutexes, condition variables, barriers); for
streamcluster the paper additionally measures software stalls through a thin
pthread wrapper, which is how the barrier/trylock bottleneck of Section 4.6 is
found.
"""

from .blackscholes import Blackscholes
from .bodytrack import Bodytrack
from .canneal import Canneal
from .raytrace import Raytrace
from .streamcluster import Streamcluster
from .swaptions import Swaptions

__all__ = [
    "Blackscholes",
    "Bodytrack",
    "Canneal",
    "Raytrace",
    "Streamcluster",
    "Swaptions",
]
