"""``raytrace`` — real-time raytracing (PARSEC, Intel RMS application).

Renders animation frames with a bounding-volume-hierarchy raytracer optimised
for speed rather than realism.  Rays are distributed over threads through a
work-stealing tile queue; the scene data is shared but read-only, so the only
scalability costs are last-level-cache pressure from the BVH and the light
queue contention.  The paper's best-behaved workload: 4.6% maximum error on
Opteron and 1.7% on Xeon20.
"""

from __future__ import annotations

from repro.sync import SpinlockModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import compute_mix, scaled_ops

__all__ = ["Raytrace"]


class Raytrace(Workload):
    """BVH raytracer with a shared read-only scene; scales very well."""

    name = "raytrace"
    suite = "parsec"
    description = "Real-time BVH raytracing; read-only shared scene (PARSEC)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(6.0e6, dataset_scale),
            mix=compute_mix(
                instructions_per_op=2200.0,
                flop_fraction=0.30,
                branch_fraction=0.12,
                branch_miss_rate=0.03,
                mem_refs_per_op=520.0,
                store_fraction=0.10,
                base_ipc=1.9,
                mlp=3.5,
            ),
            private_working_set_mb=5.0,
            shared_working_set_mb=180.0 * dataset_scale,
            shared_access_fraction=0.45,
            shared_write_fraction=0.005,
            serial_fraction=0.002,
            locality=0.99,
            # The tile work queue is a short, rarely contended critical section.
            locks=SpinlockModel(
                acquires_per_op=0.01,
                critical_section_cycles=80.0,
                num_locks=1,
                kind="ttas",
            ),
            noise_level=0.01,
            software_stall_report=False,
        )
