"""``canneal`` — simulated annealing for chip routing cost (PARSEC).

Threads repeatedly pick two netlist elements and swap their locations if the
routing cost improves, using lock-free atomic pointer swaps over a netlist far
larger than any cache.  The workload is dominated by cache misses to the
shared netlist (very low locality), with a small CAS retry cost on conflicting
swaps; it scales acceptably but is memory-latency bound.  Paper errors: 6-12%.
"""

from __future__ import annotations

from repro.sync import LockFreeModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["Canneal"]


class Canneal(Workload):
    """Cache-unfriendly simulated annealing with lock-free element swaps."""

    name = "canneal"
    suite = "parsec"
    description = "Simulated annealing over a huge netlist; lock-free swaps (PARSEC)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(5.5e6, dataset_scale),
            mix=memory_mix(
                instructions_per_op=1500.0,
                mem_refs_per_op=600.0,
                store_fraction=0.25,
                flop_fraction=0.05,
                base_ipc=1.2,
                mlp=2.0,
            ),
            private_working_set_mb=4.0,
            shared_working_set_mb=1200.0 * dataset_scale,
            shared_access_fraction=0.70,
            shared_write_fraction=0.04,
            serial_fraction=0.003,
            locality=0.9,
            lockfree=LockFreeModel(
                cas_per_op=2.0,
                retry_body_cycles=600.0,
                hot_locations=80000.0 * dataset_scale,
                update_fraction=0.8,
            ),
            noise_level=0.015,
            software_stall_report=False,
        )
