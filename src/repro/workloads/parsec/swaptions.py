"""``swaptions`` — Monte-Carlo pricing of a swaption portfolio (PARSEC).

The portfolio is split statically across threads and each swaption is priced
with independent Heath-Jarrow-Morton Monte-Carlo simulations; the only shared
state is the read-only input.  Compute-bound, FP-heavy, near-linear scaling;
the paper reports errors of 9-20% dominated by the slight load imbalance of
the static split.
"""

from __future__ import annotations

from repro.sync import BarrierModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import compute_mix, scaled_ops

__all__ = ["Swaptions"]


class Swaptions(Workload):
    """Monte-Carlo swaption pricing; compute-bound, scales near-linearly."""

    name = "swaptions"
    suite = "parsec"
    description = "HJM Monte-Carlo swaption pricing; independent per-thread work (PARSEC)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(4.0e6, dataset_scale),
            mix=compute_mix(
                instructions_per_op=3000.0,
                flop_fraction=0.50,
                branch_fraction=0.06,
                branch_miss_rate=0.01,
                mem_refs_per_op=500.0,
                store_fraction=0.20,
                base_ipc=2.0,
                mlp=4.0,
            ),
            private_working_set_mb=8.0 * dataset_scale,
            shared_working_set_mb=1.0,
            shared_access_fraction=0.02,
            shared_write_fraction=0.01,
            serial_fraction=0.001,
            locality=0.995,
            # The static partition leaves a mild tail imbalance at the join.
            barrier=BarrierModel(
                barriers_per_op=1e-6,
                phase_cycles_per_op=3500.0,
                imbalance_cv=0.06,
            ),
            noise_level=0.01,
            software_stall_report=False,
        )
