"""``bodytrack`` — computer-vision body tracking (PARSEC).

Tracks a human body through a sequence of camera frames with an annealed
particle filter.  Each annealing layer is a data-parallel particle evaluation
followed by a barrier and a short sequential resampling step; the image data
is shared read-only.  Scaling is good but not perfect (the sequential
resampling and the per-layer barriers), matching the paper's 1-9% errors.
"""

from __future__ import annotations

from repro.sync import BarrierModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import compute_mix, scaled_ops

__all__ = ["Bodytrack"]


class Bodytrack(Workload):
    """Annealed particle filter; data-parallel layers with barriers."""

    name = "bodytrack"
    suite = "parsec"
    description = "Annealed particle-filter body tracking; barrier-separated layers (PARSEC)"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(5.0e6, dataset_scale),
            mix=compute_mix(
                instructions_per_op=2600.0,
                flop_fraction=0.35,
                branch_fraction=0.10,
                branch_miss_rate=0.02,
                mem_refs_per_op=650.0,
                store_fraction=0.20,
                base_ipc=1.9,
                mlp=3.0,
            ),
            private_working_set_mb=12.0 * dataset_scale,
            shared_working_set_mb=90.0 * dataset_scale,
            shared_access_fraction=0.30,
            shared_write_fraction=0.02,
            serial_fraction=0.015,
            locality=0.99,
            barrier=BarrierModel(
                barriers_per_op=0.004,
                phase_cycles_per_op=2800.0,
                imbalance_cv=0.12,
            ),
            noise_level=0.012,
            software_stall_report=True,
        )
