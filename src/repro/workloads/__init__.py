"""Workload models: the 21 evaluation workloads plus the production applications.

Each workload describes its machine-independent demands (instruction mix,
working sets, sharing, synchronization); the simulator turns them into the
stall counters and execution times ESTIMA consumes.  Use the registry to look
workloads up by the names the paper's tables use.
"""

from .base import Workload, WorkloadProfile
from .knn import Knn
from .memcached import Memcached
from .micro import (
    LockBasedHashTable,
    LockBasedSkipList,
    LockFreeHashTable,
    LockFreeSkipList,
)
from .parsec import Blackscholes, Bodytrack, Canneal, Raytrace, Streamcluster, Swaptions
from .registry import (
    PRODUCTION_WORKLOADS,
    SOFTWARE_STALL_WORKLOADS,
    STM_WORKLOADS,
    TABLE4_WORKLOADS,
    WORKLOADS,
    get_workload,
    iter_workloads,
    workload_names,
)
from .sqlite_tpcc import SqliteTpcc
from .stamp import Genome, Intruder, Kmeans, Labyrinth, Ssca2, VacationHigh, VacationLow, Yada

__all__ = [
    "Blackscholes",
    "Bodytrack",
    "Canneal",
    "Genome",
    "Intruder",
    "Kmeans",
    "Knn",
    "Labyrinth",
    "LockBasedHashTable",
    "LockBasedSkipList",
    "LockFreeHashTable",
    "LockFreeSkipList",
    "Memcached",
    "PRODUCTION_WORKLOADS",
    "Raytrace",
    "SOFTWARE_STALL_WORKLOADS",
    "STM_WORKLOADS",
    "SqliteTpcc",
    "Ssca2",
    "Streamcluster",
    "Swaptions",
    "TABLE4_WORKLOADS",
    "VacationHigh",
    "VacationLow",
    "WORKLOADS",
    "Workload",
    "WorkloadProfile",
    "Yada",
    "get_workload",
    "iter_workloads",
    "workload_names",
]
