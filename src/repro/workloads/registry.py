"""Workload registry: name -> factory for every workload in the evaluation.

The harness, the benchmarks and the examples refer to workloads by the string
names used throughout the paper's tables ("intruder", "lock-based HT", ...).
This module owns that mapping and groups the names the way the evaluation
groups them (Table 4 / Table 5 rows, the production applications of
Section 4.3, and the optimized variants of Section 4.6).
"""

from __future__ import annotations

from typing import Callable, Iterable

from .base import Workload
from .knn import Knn
from .memcached import Memcached
from .micro import (
    LockBasedHashTable,
    LockBasedSkipList,
    LockFreeHashTable,
    LockFreeSkipList,
)
from .parsec import Blackscholes, Bodytrack, Canneal, Raytrace, Streamcluster, Swaptions
from .sqlite_tpcc import SqliteTpcc
from .stamp import Genome, Intruder, Kmeans, Labyrinth, Ssca2, VacationHigh, VacationLow, Yada

__all__ = [
    "WORKLOADS",
    "TABLE4_WORKLOADS",
    "STM_WORKLOADS",
    "SOFTWARE_STALL_WORKLOADS",
    "PRODUCTION_WORKLOADS",
    "get_workload",
    "workload_names",
    "iter_workloads",
]

#: Every registered workload factory, keyed by its canonical name.
WORKLOADS: dict[str, Callable[[], Workload]] = {
    # data-structure microbenchmarks
    "lock_based_ht": LockBasedHashTable,
    "lock_based_sl": LockBasedSkipList,
    "lock_free_ht": LockFreeHashTable,
    "lock_free_sl": LockFreeSkipList,
    # STAMP
    "genome": Genome,
    "intruder": Intruder,
    "kmeans": Kmeans,
    "labyrinth": Labyrinth,
    "ssca2": Ssca2,
    "vacation_high": VacationHigh,
    "vacation_low": VacationLow,
    "yada": Yada,
    # PARSEC
    "blackscholes": Blackscholes,
    "bodytrack": Bodytrack,
    "canneal": Canneal,
    "raytrace": Raytrace,
    "streamcluster": Streamcluster,
    "swaptions": Swaptions,
    # kernels and production applications
    "knn": Knn,
    "memcached": Memcached,
    "sqlite_tpcc": SqliteTpcc,
    # Section 4.6 optimized variants
    "streamcluster_spinlock": lambda: Streamcluster(optimized_barriers=True),
    "intruder_batch4": lambda: Intruder(decode_batch=4),
}

#: The 19 benchmark workloads of Table 4 / Table 5 (excludes the two
#: production applications, which are evaluated separately in Section 4.3).
TABLE4_WORKLOADS: tuple[str, ...] = (
    "lock_based_ht",
    "lock_based_sl",
    "lock_free_ht",
    "lock_free_sl",
    "genome",
    "intruder",
    "kmeans",
    "labyrinth",
    "ssca2",
    "vacation_high",
    "vacation_low",
    "yada",
    "blackscholes",
    "bodytrack",
    "canneal",
    "raytrace",
    "streamcluster",
    "swaptions",
    "knn",
)

#: STAMP workloads: their STM runtime reports aborted-transaction cycles.
STM_WORKLOADS: tuple[str, ...] = (
    "genome",
    "intruder",
    "kmeans",
    "labyrinth",
    "ssca2",
    "vacation_high",
    "vacation_low",
    "yada",
)

#: Workloads for which the paper collects software stalls (Figure 13).
SOFTWARE_STALL_WORKLOADS: tuple[str, ...] = STM_WORKLOADS + ("streamcluster",)

#: Production applications of the Section 4.3 desktop-to-server experiments.
PRODUCTION_WORKLOADS: tuple[str, ...] = ("memcached", "sqlite_tpcc")


def get_workload(name: str) -> Workload:
    """Instantiate a workload by its registry name."""
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from exc
    return factory()


def workload_names() -> tuple[str, ...]:
    """All registered workload names."""
    return tuple(WORKLOADS)


def iter_workloads(names: Iterable[str] | None = None):
    """Yield (name, workload) pairs for the given names (default: Table 4 set)."""
    for name in names if names is not None else TABLE4_WORKLOADS:
        yield name, get_workload(name)
