"""Concurrent skip-list microbenchmarks (lock-based and lock-free).

Same mixed search/insert/remove workload as the hash-table benchmarks, but on
an ordered skip list.  Traversals are longer (O(log n) pointer chases through
poorly cached tower nodes) and updates touch several levels, so:

* the **lock-based** variant (lazy locking of the affected towers) pays
  noticeable lock handoff costs as updates climb the towers, which is why the
  paper's errors for it are the largest of the four microbenchmarks;
* the **lock-free** variant retries CAS per level; it scales well but its
  longer retry bodies make it more sensitive to contention than the hash
  table.
"""

from __future__ import annotations

from repro.sync import LockFreeModel, SpinlockModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["LockBasedSkipList", "LockFreeSkipList"]

_UPDATE_FRACTION = 0.2


class LockBasedSkipList(Workload):
    """Skip list with lazy per-tower locking."""

    name = "lock_based_sl"
    suite = "micro"
    description = "Concurrent skip list with lazy tower locking, 20% updates"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(1.2e7, dataset_scale),
            mix=memory_mix(
                instructions_per_op=900.0,
                mem_refs_per_op=300.0,
                store_fraction=0.12,
                base_ipc=1.3,
                mlp=1.8,
            ),
            private_working_set_mb=1.0,
            shared_working_set_mb=96.0 * dataset_scale,
            shared_access_fraction=0.90,
            shared_write_fraction=_UPDATE_FRACTION * 0.6,
            serial_fraction=0.0,
            locality=0.955,
            locks=SpinlockModel(
                acquires_per_op=_UPDATE_FRACTION * 3.0,  # levels touched per update
                critical_section_cycles=140.0,
                num_locks=256,
                kind="ttas",
            ),
            noise_level=0.02,
            software_stall_report=True,
        )


class LockFreeSkipList(Workload):
    """Skip list with per-level CAS updates."""

    name = "lock_free_sl"
    suite = "micro"
    description = "Lock-free concurrent skip list, 20% updates"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(1.2e7, dataset_scale),
            mix=memory_mix(
                instructions_per_op=850.0,
                mem_refs_per_op=280.0,
                store_fraction=0.10,
                base_ipc=1.4,
                mlp=1.8,
            ),
            private_working_set_mb=1.0,
            shared_working_set_mb=96.0 * dataset_scale,
            shared_access_fraction=0.90,
            shared_write_fraction=_UPDATE_FRACTION * 0.5,
            serial_fraction=0.0,
            locality=0.955,
            lockfree=LockFreeModel(
                cas_per_op=_UPDATE_FRACTION * 3.0,
                retry_body_cycles=450.0,
                hot_locations=4096.0 * dataset_scale,
                update_fraction=1.0,
            ),
            noise_level=0.018,
            software_stall_report=True,
        )
