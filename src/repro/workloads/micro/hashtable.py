"""Concurrent hash-table microbenchmarks (lock-based and lock-free).

Threads perform a mixed workload of lookups, inserts and removals on a shared
hash table pre-filled to a fixed size.  Operations are short and uniformly
distributed over the buckets, so:

* the **lock-based** variant (one spinlock per bucket stripe) only contends
  when two threads hit the same stripe — it scales well until the stripes
  saturate, with some cache-line ping-pong on updates;
* the **lock-free** variant replaces the stripe locks with per-bucket CAS; it
  has the smallest errors in the whole evaluation (3-16%) and scales almost
  perfectly.
"""

from __future__ import annotations

from repro.sync import LockFreeModel, SpinlockModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["LockBasedHashTable", "LockFreeHashTable"]

_UPDATE_FRACTION = 0.2  # 10% inserts + 10% removes, 80% lookups


class LockBasedHashTable(Workload):
    """Hash table protected by striped spinlocks."""

    name = "lock_based_ht"
    suite = "micro"
    description = "Concurrent hash table with striped spinlocks, 20% updates"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(2.0e7, dataset_scale),
            mix=memory_mix(
                instructions_per_op=380.0,
                mem_refs_per_op=120.0,
                store_fraction=0.15,
                base_ipc=1.6,
                mlp=2.5,
            ),
            private_working_set_mb=1.0,
            shared_working_set_mb=64.0 * dataset_scale,
            shared_access_fraction=0.85,
            shared_write_fraction=_UPDATE_FRACTION * 0.5,
            serial_fraction=0.0,
            locality=0.97,
            locks=SpinlockModel(
                acquires_per_op=1.0,
                critical_section_cycles=90.0,
                num_locks=512,
                kind="ttas",
            ),
            noise_level=0.012,
            software_stall_report=True,
        )


class LockFreeHashTable(Workload):
    """Hash table with per-bucket CAS updates (no locks)."""

    name = "lock_free_ht"
    suite = "micro"
    description = "Lock-free concurrent hash table, 20% updates"

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(2.0e7, dataset_scale),
            mix=memory_mix(
                instructions_per_op=360.0,
                mem_refs_per_op=110.0,
                store_fraction=0.12,
                base_ipc=1.7,
                mlp=2.5,
            ),
            private_working_set_mb=1.0,
            shared_working_set_mb=64.0 * dataset_scale,
            shared_access_fraction=0.85,
            shared_write_fraction=_UPDATE_FRACTION * 0.4,
            serial_fraction=0.0,
            locality=0.97,
            lockfree=LockFreeModel(
                cas_per_op=_UPDATE_FRACTION,
                retry_body_cycles=150.0,
                hot_locations=8192.0 * dataset_scale,
                update_fraction=1.0,
            ),
            noise_level=0.01,
            software_stall_report=True,
        )
