"""Concurrent data-structure microbenchmarks.

The paper's evaluation includes four standard data-structure microbenchmarks
(also used in the "Why STM can be more than a research toy" study): hash table
and skip list, each in a lock-based and a lock-free variant, exercised with a
mixed search/insert/remove workload.
"""

from .hashtable import LockBasedHashTable, LockFreeHashTable
from .skiplist import LockBasedSkipList, LockFreeSkipList

__all__ = [
    "LockBasedHashTable",
    "LockBasedSkipList",
    "LockFreeHashTable",
    "LockFreeSkipList",
]
