"""SQLite in-memory DBMS running a TPC-C workload.

The paper's second production experiment (Section 4.3): SQLite configured as
an in-memory database executing a TPC-C mix over a 10 GB dataset, with logging
redirected to tmpfs to avoid I/O bottlenecks.  Measurements on up to four
cores of the Haswell desktop are extrapolated to the 20-core Xeon (5x the
size); errors stay below 26% and ESTIMA correctly predicts both that and where
the server stops scaling.

SQLite serializes writers on a single database lock (even in WAL mode only one
writer proceeds at a time), while readers can run concurrently; with TPC-C's
substantial write ratio this coarse lock is the dominant scalability limit,
together with the buffer-pool-sized working set that overwhelms the caches.
"""

from __future__ import annotations

from repro.sync import MutexModel
from repro.workloads.base import Workload, WorkloadProfile
from repro.workloads.profiles import memory_mix, scaled_ops

__all__ = ["SqliteTpcc"]


class SqliteTpcc(Workload):
    """In-memory SQLite under TPC-C; single-writer lock bounds scaling early."""

    name = "sqlite_tpcc"
    suite = "production"
    description = "SQLite in-memory DBMS with a TPC-C transaction mix (10 GB, tmpfs logging)"

    def __init__(self, *, write_fraction: float = 0.45) -> None:
        # TPC-C: New-Order + Payment + Delivery dominate and all write.
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        self.write_fraction = write_fraction

    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            total_ops=scaled_ops(2.5e6, dataset_scale),
            mix=memory_mix(
                instructions_per_op=14000.0,
                mem_refs_per_op=4200.0,
                store_fraction=0.25,
                base_ipc=1.4,
                mlp=2.2,
            ),
            private_working_set_mb=8.0,
            shared_working_set_mb=10240.0 * dataset_scale,
            shared_access_fraction=0.65,
            shared_write_fraction=0.10 * self.write_fraction / 0.45,
            serial_fraction=0.02,
            locality=0.975,
            locks=MutexModel(
                # The database/WAL write lock: writers hold it for the whole
                # statement, readers briefly for snapshot setup.
                acquires_per_op=1.0,
                critical_section_cycles=2500.0 * self.write_fraction + 150.0,
                num_locks=1,
            ),
            noise_level=0.02,
            software_stall_report=False,
        )
