"""Workload abstraction consumed by the machine simulator.

A workload is described by *what it demands* from the machine, independent of
any particular machine: an instruction mix, working-set sizes, how much of its
data is shared and written, an Amdahl serial fraction, and the synchronization
mechanisms it uses (locks, barriers, STM, lock-free retries).  The simulator
(:mod:`repro.simulation`) composes a :class:`WorkloadProfile` with a
:class:`~repro.machine.machines.MachineSpec` to produce stall counters and
execution times — the data ESTIMA would collect with ``perf`` on a real system.

Concrete workloads (the 21 applications of the evaluation plus memcached and
SQLite) live in the sibling modules and are calibrated to the qualitative
behaviour the paper reports: which applications keep scaling, which collapse,
and which stall categories dominate when they do.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from repro.machine.pipeline import InstructionMix
from repro.sync import BarrierModel, LockFreeModel, MutexModel, SpinlockModel, StmModel

__all__ = ["WorkloadProfile", "Workload"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Machine-independent description of one workload configuration.

    Attributes
    ----------
    name:
        Workload identifier (registry key).
    total_ops:
        Total application operations in one run (strong scaling keeps this
        fixed as threads are added; weak scaling multiplies it via
        ``dataset_scale``).
    mix:
        Per-operation instruction profile.
    private_working_set_mb:
        Data partitioned across threads (each thread touches its share).
    shared_working_set_mb:
        Data every thread touches.
    shared_access_fraction:
        Fraction of memory references that hit shared data.
    shared_write_fraction:
        Of those, the fraction that are writes (drives coherence misses).
    serial_fraction:
        Amdahl fraction of the work executed by a single thread.
    locks / barrier / stm / lockfree:
        Synchronization profiles; ``None`` when the mechanism is not used.
    partitioned_private:
        Whether the private working set divides across threads (true for data
        parallel codes) or is replicated per thread.
    locality:
        Fraction of memory references absorbed by the private cache levels
        thanks to temporal locality, independent of the dataset size
        (0.99+ for streaming compute kernels, ~0.9 for pointer-chasing codes
        with poor locality such as canneal).
    icache_miss_rate:
        Instruction-cache miss rate (frontend stalls; flat in core count).
    noise_level:
        Relative run-to-run fluctuation of this application (kmeans is noisy,
        blackscholes is not); the simulator uses it as the sigma of a
        deterministic multiplicative jitter.
    software_stall_report:
        Whether the runtime of this workload can report software stalls
        (STM statistics, pthread-wrapper output).
    """

    name: str
    total_ops: float
    mix: InstructionMix
    private_working_set_mb: float
    shared_working_set_mb: float
    shared_access_fraction: float
    shared_write_fraction: float
    serial_fraction: float = 0.0
    locks: SpinlockModel | MutexModel | None = None
    barrier: BarrierModel | None = None
    stm: StmModel | None = None
    lockfree: LockFreeModel | None = None
    partitioned_private: bool = True
    locality: float = 0.97
    icache_miss_rate: float = 0.002
    noise_level: float = 0.01
    software_stall_report: bool = False

    def __post_init__(self) -> None:
        if self.total_ops <= 0:
            raise ValueError("total_ops must be positive")
        if self.private_working_set_mb < 0 or self.shared_working_set_mb < 0:
            raise ValueError("working sets must be non-negative")
        for name in ("shared_access_fraction", "shared_write_fraction", "serial_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        if self.icache_miss_rate < 0 or self.icache_miss_rate > 1:
            raise ValueError("icache_miss_rate must be within [0, 1]")
        if self.noise_level < 0:
            raise ValueError("noise_level must be non-negative")

    def sync_models(self) -> tuple:
        """The synchronization models this workload uses (may be empty)."""
        return tuple(
            model for model in (self.locks, self.barrier, self.stm, self.lockfree) if model is not None
        )

    def with_(self, **changes) -> "WorkloadProfile":
        """Copy with fields replaced (used by optimized variants and sweeps)."""
        return replace(self, **changes)

    @property
    def total_working_set_mb(self) -> float:
        return self.private_working_set_mb + self.shared_working_set_mb


class Workload(ABC):
    """A named application whose demands may depend on the dataset size."""

    #: Registry key; concrete classes override.
    name: str = ""
    #: Benchmark suite ("stamp", "parsec", "micro", "production", "kernel").
    suite: str = ""
    #: Short description shown by the registry and examples.
    description: str = ""

    @abstractmethod
    def profile(self, dataset_scale: float = 1.0) -> WorkloadProfile:
        """Build the demand profile at the given dataset scale.

        ``dataset_scale`` multiplies the default dataset (1.0 = the paper's
        default input); weak-scaling experiments pass 2.0.
        """

    @property
    def uses_stm(self) -> bool:
        """Whether the workload synchronizes with software transactional memory."""
        return self.profile().stm is not None

    @property
    def reports_software_stalls(self) -> bool:
        """Whether a software-stall report (plugin input) is available."""
        return self.profile().software_stall_report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name} ({self.suite})>"
