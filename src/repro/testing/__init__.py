"""Deterministic concurrency-testing substrate for the serving stack.

The serving stack is a collection of small hand-off state machines —
SCM_RIGHTS dispatch in :mod:`repro.engine.pool`, the ordered-response
writer and micro-batch queue in :mod:`repro.engine.server`, the flock'd
byte ledger in :mod:`repro.engine.store`, and ring failover in
:mod:`repro.engine.cluster.remote`.  Stress tests probe their races
probabilistically; this package checks them deterministically.

Two modules:

``syncpoints``
    Named sync points (``sync_point`` / ``sync_point_async``) threaded
    through the engine's hot hand-off paths — zero-cost no-ops unless a
    :class:`ScheduleController` is installed, in which case registered
    actor threads/coroutines block at each point and are released in a
    scripted order.  Also: named ``Barrier`` helpers and
    ``assert_parallel_execution`` for positive-concurrency checks.

``explore``
    A bounded schedule explorer that enumerates *all* interleavings of
    a scripted scenario up to a depth bound, asserts the scenario's
    invariants on every schedule, and prints any failing schedule as a
    replayable script.

This package deliberately imports nothing from the rest of ``repro``
(stdlib only), so every engine module can import it without cycles —
the same leaf posture as ``repro.engine.cache``.
"""

from .explore import (
    ExplorationResult,
    ScheduleFailure,
    Scenario,
    explore,
    format_schedule,
    replay,
)
from .syncpoints import (
    DeadlockError,
    ScheduleController,
    ScheduleError,
    ENV_SYNC_DEBUG,
    KNOWN_SYNC_POINTS,
    START_POINT,
    assert_parallel_execution,
    background_event_loop,
    clear_barriers,
    get_barrier,
    install_controller,
    installed_controller,
    set_sync_debug,
    sync_point,
    sync_point_async,
    uninstall_controller,
)

__all__ = [
    "DeadlockError",
    "ENV_SYNC_DEBUG",
    "ExplorationResult",
    "KNOWN_SYNC_POINTS",
    "START_POINT",
    "Scenario",
    "ScheduleController",
    "ScheduleError",
    "ScheduleFailure",
    "assert_parallel_execution",
    "background_event_loop",
    "clear_barriers",
    "explore",
    "format_schedule",
    "get_barrier",
    "install_controller",
    "installed_controller",
    "replay",
    "set_sync_debug",
    "sync_point",
    "sync_point_async",
    "uninstall_controller",
]
