"""Named sync points and the schedule controller that drives them.

Engine modules call :func:`sync_point` (threads) or
:func:`sync_point_async` (coroutines) at the hand-off edges of their
small concurrent state machines.  With no controller installed the call
is a no-op — one module-global load and an ``is None`` test — so the
hooks are safe to leave in production paths.

Under a :class:`ScheduleController`, *registered* actors (threads
spawned via :meth:`ScheduleController.spawn`, coroutines via
:meth:`ScheduleController.spawn_task`) block at every sync point they
reach and resume only when the controller releases them.  Unregistered
threads — server accept loops, health monitors, pytest's main thread —
pass straight through, so installing a controller never deadlocks
machinery the test is not scripting.

The controller's scheduling model:

* Every actor first blocks at the implicit :data:`START_POINT` before
  running its function, so "which actor moves first" is always an
  explicit scheduling decision and spawn order never races.
* :meth:`ScheduleController.wait_quiescent` waits until every live
  actor is either blocked at a sync point or *stalled* — running for
  longer than ``stall_timeout`` without a state transition, which is
  how an actor waiting on a real lock (a flock, an
  ``asyncio.Condition`` slot) is detected.  Stalled actors are not
  schedulable; they wake on their own when another actor releases the
  resource they sleep on.
* :meth:`ScheduleController.drive` repeatedly picks one enabled
  (blocked) actor — from an explicit script, a ``decider`` callback, or
  deterministically (first in sorted order) — and releases it, until
  every actor has finished.  The granted sequence is recorded in
  :attr:`ScheduleController.trace` as ``(actor, point)`` pairs.

Set ``ESTIMA_SYNC_DEBUG=1`` (or call :func:`set_sync_debug`) to log
every sync-point arrival to stderr, controlled or not.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "DeadlockError",
    "ENV_SYNC_DEBUG",
    "KNOWN_SYNC_POINTS",
    "START_POINT",
    "ScheduleController",
    "ScheduleError",
    "assert_parallel_execution",
    "background_event_loop",
    "clear_barriers",
    "get_barrier",
    "install_controller",
    "installed_controller",
    "set_sync_debug",
    "sync_point",
    "sync_point_async",
    "uninstall_controller",
]

ENV_SYNC_DEBUG = "ESTIMA_SYNC_DEBUG"

#: Sync points threaded through the engine.  Tests may use any name they
#: like for their own actors; this tuple is the documented contract for
#: the hooks that live in ``src/repro/engine`` (see
#: docs/architecture.md, "Testing the concurrent core").
KNOWN_SYNC_POINTS = (
    # engine/pool.py — SCM_RIGHTS dispatch and crash restart
    "pool.dispatch.pick",
    "pool.dispatch.sent",
    "pool.dispatch.send_failed",
    "pool.dispatch.skip_dead",
    "pool.health.respawn",
    "pool.health.respawned",
    # engine/server.py — ordered-response writer and micro-batch queue
    "server.writer.write",
    "server.writer.finish",
    "server.submit.enqueue",
    "server.batch.first",
    "server.batch.formed",
    # engine/store.py — flock'd shared byte ledger
    "store.put.publish",
    "store.ledger.acquire",
    "store.ledger.read",
    "store.ledger.rescan",
    "store.ledger.release",
    # engine/cluster/remote.py — backend health and ring failover
    "cluster.client.sent",
    "cluster.client.document",
    "cluster.pool.attempt",
    "cluster.pool.failover",
    "cluster.pool.recorded",
)

#: The implicit gate every spawned actor blocks at before its function
#: runs.  Appears in traces/scripts as ``actor@start``.
START_POINT = "start"

_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class ScheduleError(RuntimeError):
    """A schedule could not be followed (divergence, bad release, runaway)."""


class DeadlockError(ScheduleError):
    """No actor can make progress within the deadlock timeout."""


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_sync_debug = _env_truthy(os.environ.get(ENV_SYNC_DEBUG))


def set_sync_debug(enabled: bool) -> None:
    """Toggle sync-point arrival logging (same effect as ESTIMA_SYNC_DEBUG)."""

    global _sync_debug
    _sync_debug = bool(enabled)


def _debug_log(point: str, actor: str | None) -> None:
    thread = threading.current_thread().name
    who = actor if actor is not None else "-"
    sys.stderr.write(f"[estima-sync] point={point} actor={who} thread={thread}\n")


class _Actor:
    """Bookkeeping for one scheduled thread or coroutine."""

    __slots__ = (
        "name",
        "kind",
        "state",
        "point",
        "permit",
        "settled",
        "running_since",
        "wake",
        "thread",
        "future",
        "result",
        "error",
    )

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind  # "thread" | "task"
        self.state = _RUNNING
        self.point: str | None = None
        self.permit = False
        self.settled = False
        self.running_since = time.monotonic()
        self.wake: Callable[[], None] | None = None
        self.thread: threading.Thread | None = None
        self.future: Any = None
        self.result: Any = None
        self.error: BaseException | None = None


_current_actor = threading.local()


class ScheduleController:
    """Blocks registered actors at sync points; releases them to a script.

    Parameters
    ----------
    stall_timeout:
        How long a running actor may go without a state transition
        before it is classified as *stalled* (sleeping on a real lock)
        and excluded from the enabled set.  Small values make
        exploration fast; too small misclassifies slow compute as a
        stall — 50–200 ms suits everything in this repo.
    deadlock_timeout:
        Upper bound on any single wait (an actor waiting for its
        release permit, or the controller waiting for quiescence)
        before :class:`DeadlockError` is raised with the trace so far.
    """

    def __init__(
        self,
        *,
        stall_timeout: float = 0.1,
        deadlock_timeout: float = 20.0,
    ) -> None:
        if stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        if deadlock_timeout <= stall_timeout:
            raise ValueError("deadlock_timeout must exceed stall_timeout")
        self.stall_timeout = float(stall_timeout)
        self.deadlock_timeout = float(deadlock_timeout)
        self._cond = threading.Condition()
        self._actors: dict[str, _Actor] = {}
        self._spawn_order: list[str] = []
        self._task_names: dict[Any, str] = {}
        self._draining = False
        #: Granted steps, in release order: list of (actor, point).
        self.trace: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # actor registration

    def spawn(self, name: str, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Run ``fn`` on a new thread as scheduled actor ``name``.

        The actor blocks at :data:`START_POINT` before ``fn`` runs, so
        nothing happens until the controller releases it.
        """

        actor = self._register(name, "thread")

        def runner() -> None:
            _current_actor.name = name
            try:
                self._reached(name, START_POINT)
                actor.result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported via drive()
                actor.error = exc
            finally:
                with self._cond:
                    actor.state = _DONE
                    self._cond.notify_all()

        thread = threading.Thread(target=runner, name=f"actor-{name}", daemon=True)
        actor.thread = thread
        thread.start()

    def spawn_task(self, name: str, coro: Any, loop: asyncio.AbstractEventLoop) -> None:
        """Schedule coroutine ``coro`` on ``loop`` as actor ``name``.

        ``loop`` must run on a thread the controller does not script
        (see :func:`background_event_loop`).  The coroutine blocks at
        :data:`START_POINT` before its body runs.
        """

        actor = self._register(name, "task")

        async def runner() -> None:
            self._task_names[asyncio.current_task()] = name
            try:
                await self._reached_async(name, START_POINT)
                actor.result = await coro
            except BaseException as exc:  # noqa: BLE001 - reported via drive()
                actor.error = exc
            finally:
                with self._cond:
                    actor.state = _DONE
                    self._cond.notify_all()

        actor.future = asyncio.run_coroutine_threadsafe(runner(), loop)

    def _register(self, name: str, kind: str) -> _Actor:
        with self._cond:
            if name in self._actors:
                raise ScheduleError(f"duplicate actor name: {name!r}")
            actor = _Actor(name, kind)
            self._actors[name] = actor
            self._spawn_order.append(name)
            return actor

    # ------------------------------------------------------------------
    # sync-point arrival (called from actor threads / tasks)

    def _thread_actor_name(self) -> str | None:
        return getattr(_current_actor, "name", None)

    def reached(self, point: str) -> None:
        """Arrival of the calling *thread* at ``point`` (no-op if unregistered)."""

        name = self._thread_actor_name()
        if name is None or name not in self._actors:
            return
        self._reached(name, point)

    def _reached(self, name: str, point: str) -> None:
        actor = self._actors[name]
        with self._cond:
            if self._draining:
                return
            actor.state = _BLOCKED
            actor.point = point
            actor.permit = False
            self._cond.notify_all()
            deadline = time.monotonic() + self.deadlock_timeout
            while not actor.permit and not self._draining:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    actor.state = _RUNNING
                    actor.running_since = time.monotonic()
                    raise DeadlockError(
                        f"actor {name!r} was never released from sync point "
                        f"{point!r}; trace so far: {self.trace}"
                    )
                self._cond.wait(remaining)
            actor.permit = False

    async def _reached_async(self, name: str, point: str) -> None:
        actor = self._actors[name]
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        with self._cond:
            if self._draining:
                return
            actor.state = _BLOCKED
            actor.point = point
            actor.permit = False
            actor.wake = lambda: loop.call_soon_threadsafe(event.set)
            self._cond.notify_all()
        try:
            await asyncio.wait_for(event.wait(), self.deadlock_timeout)
        except asyncio.TimeoutError:
            with self._cond:
                actor.wake = None
                actor.state = _RUNNING
                actor.running_since = time.monotonic()
            raise DeadlockError(
                f"actor {name!r} was never released from sync point "
                f"{point!r}; trace so far: {self.trace}"
            ) from None

    async def reached_async(self, point: str) -> None:
        """Arrival of the running *task* at ``point`` (no-op if unregistered)."""

        name = self._task_names.get(asyncio.current_task())
        if name is None:
            return
        await self._reached_async(name, point)

    # ------------------------------------------------------------------
    # scheduling (called from the test / explorer thread)

    def wait_quiescent(self) -> list[str]:
        """Block until no actor can advance without a release.

        Returns the sorted names of actors blocked at sync points (the
        *enabled* set) — empty when every actor has finished.  Actors
        stalled on real locks are not enabled; a state where only
        stalled actors remain raises :class:`DeadlockError` once
        ``deadlock_timeout`` expires.
        """

        overall_deadline = time.monotonic() + self.deadlock_timeout
        with self._cond:
            while True:
                live = [a for a in self._actors.values() if a.state != _DONE]
                if not live:
                    return []
                now = time.monotonic()
                running = [a for a in live if a.state == _RUNNING]
                for actor in running:
                    if not actor.settled and now - actor.running_since >= self.stall_timeout:
                        actor.settled = True
                unsettled = [a for a in running if not a.settled]
                if unsettled:
                    next_mark = min(
                        a.running_since + self.stall_timeout for a in unsettled
                    )
                    self._cond.wait(max(next_mark - now, 0.001))
                    continue
                enabled = sorted(a.name for a in live if a.state == _BLOCKED)
                if enabled:
                    return enabled
                # Only stalled actors remain: they can wake on their own
                # (e.g. a flock released by an exiting actor), so poll
                # until the deadlock deadline.
                if now >= overall_deadline:
                    stalled = sorted(a.name for a in running)
                    raise DeadlockError(
                        f"actors {stalled} are stalled with no enabled actor "
                        f"to release; trace so far: {self.trace}"
                    )
                self._cond.wait(min(0.05, overall_deadline - now))

    def blocked_point(self, name: str) -> str | None:
        """The sync point ``name`` is currently blocked at, if any."""

        with self._cond:
            actor = self._actors[name]
            return actor.point if actor.state == _BLOCKED else None

    def release(self, name: str) -> str:
        """Release actor ``name`` from its sync point; returns the point."""

        with self._cond:
            actor = self._actors.get(name)
            if actor is None:
                raise ScheduleError(f"unknown actor: {name!r}")
            if actor.state != _BLOCKED:
                raise ScheduleError(
                    f"cannot release actor {name!r}: state={actor.state}"
                )
            point = actor.point or "?"
            self.trace.append((name, point))
            actor.permit = True
            actor.state = _RUNNING
            actor.running_since = time.monotonic()
            actor.settled = False
            wake = actor.wake
            actor.wake = None
            self._cond.notify_all()
        if wake is not None:
            wake()
        return point

    def drive(
        self,
        schedule: Sequence[str | tuple[str, str]] | None = None,
        *,
        decider: Callable[[int, list[str]], str] | None = None,
        max_steps: int = 10_000,
    ) -> list[tuple[str, str]]:
        """Run the system to completion under a schedule.

        ``schedule`` is a list of steps, each ``"actor"`` or
        ``"actor@point"`` (the latter also asserts *where* the actor is
        blocked).  Once the script is exhausted — or if no script is
        given — the first enabled actor in sorted order is released, so
        the tail is deterministic.  Alternatively pass ``decider``, a
        ``(step, enabled) -> actor`` callback (used by the explorer).

        Returns the completed trace.  If any actor raised, the first
        failure (in spawn order) is re-raised here after all actors
        finish.
        """

        script = [self._parse_step(s) for s in (schedule or [])]
        step = 0
        while True:
            enabled = self.wait_quiescent()
            if not enabled:
                break
            if decider is not None:
                choice = decider(step, enabled)
            elif step < len(script):
                wanted, wanted_point = script[step]
                if wanted not in enabled:
                    raise ScheduleError(
                        f"schedule step {step} wants actor {wanted!r} but "
                        f"enabled={enabled}; trace so far: {self.trace}"
                    )
                if wanted_point is not None:
                    at = self.blocked_point(wanted)
                    if at != wanted_point:
                        raise ScheduleError(
                            f"schedule step {step} wants {wanted}@{wanted_point} "
                            f"but the actor is blocked at {at!r}; "
                            f"trace so far: {self.trace}"
                        )
                choice = wanted
            else:
                choice = enabled[0]
            self.release(choice)
            step += 1
            if step > max_steps:
                raise ScheduleError(f"schedule exceeded {max_steps} steps")
        self._join_finished_actors()
        for name in self._spawn_order:
            error = self._actors[name].error
            if error is not None:
                raise error
        return list(self.trace)

    @staticmethod
    def _parse_step(step: str | tuple[str, str]) -> tuple[str, str | None]:
        if isinstance(step, tuple):
            actor, point = step
            return actor, point
        if "@" in step:
            actor, _, point = step.partition("@")
            return actor, point
        return step, None

    def _join_finished_actors(self) -> None:
        # state == DONE is set before the thread/future unwinds; give
        # each a short join so results/errors are fully published.
        for name in self._spawn_order:
            actor = self._actors[name]
            if actor.thread is not None:
                actor.thread.join(timeout=5.0)
            elif actor.future is not None:
                try:
                    actor.future.result(timeout=5.0)
                except BaseException:  # noqa: BLE001 - kept in actor.error
                    pass

    def result(self, name: str) -> Any:
        """Return actor ``name``'s return value (raises its error if it failed)."""

        actor = self._actors[name]
        if actor.error is not None:
            raise actor.error
        return actor.result

    def errors(self) -> dict[str, BaseException]:
        """Map of actor name to the exception it raised, for failed actors."""

        return {
            name: self._actors[name].error
            for name in self._spawn_order
            if self._actors[name].error is not None
        }

    # ------------------------------------------------------------------
    # installation

    def drain(self) -> None:
        """Release every blocked actor unconditionally and stop gating."""

        with self._cond:
            self._draining = True
            wakes = []
            for actor in self._actors.values():
                actor.permit = True
                if actor.wake is not None:
                    wakes.append(actor.wake)
                    actor.wake = None
            self._cond.notify_all()
        for wake in wakes:
            wake()

    @contextmanager
    def install(self) -> Iterator["ScheduleController"]:
        """Install as the process-global controller for the ``with`` body.

        On exit the controller drains (so no actor is left blocked) and
        uninstalls, even if the body raised.
        """

        install_controller(self)
        try:
            yield self
        finally:
            self.drain()
            self._join_finished_actors()
            uninstall_controller(self)


_controller_lock = threading.Lock()
_controller: ScheduleController | None = None


def install_controller(controller: ScheduleController) -> None:
    """Install the process-global controller (exactly one at a time)."""

    global _controller
    with _controller_lock:
        if _controller is not None:
            raise ScheduleError("a ScheduleController is already installed")
        _controller = controller


def uninstall_controller(controller: ScheduleController | None = None) -> None:
    """Remove the installed controller (no-op if none / a different one)."""

    global _controller
    with _controller_lock:
        if controller is None or _controller is controller:
            _controller = None


def installed_controller() -> ScheduleController | None:
    """The currently installed controller, if any."""

    return _controller


def sync_point(name: str) -> None:
    """Hook for thread code: block here when a controller scripts this thread.

    With no controller installed (production, and every test that does
    not opt in) this is a single global load plus an ``is None`` test.
    """

    controller = _controller
    if controller is None and not _sync_debug:
        return
    if _sync_debug:
        _debug_log(name, getattr(_current_actor, "name", None))
    if controller is not None:
        controller.reached(name)


async def sync_point_async(name: str) -> None:
    """Awaitable twin of :func:`sync_point` for coroutine code."""

    controller = _controller
    if controller is None and not _sync_debug:
        return
    if _sync_debug:
        task = asyncio.current_task()
        actor = controller._task_names.get(task) if controller else None
        _debug_log(name, actor)
    if controller is not None:
        await controller.reached_async(name)


# ----------------------------------------------------------------------
# named barriers and positive-concurrency assertion

_barrier_lock = threading.Lock()
_barriers: dict[str, threading.Barrier] = {}


def get_barrier(name: str, parties: int) -> threading.Barrier:
    """Return the named barrier, creating it on first use.

    Every caller must agree on ``parties``; a mismatch raises
    ``ValueError`` (it means two tests are silently sharing a barrier).
    """

    if parties < 1:
        raise ValueError("parties must be >= 1")
    with _barrier_lock:
        barrier = _barriers.get(name)
        if barrier is None:
            barrier = threading.Barrier(parties)
            _barriers[name] = barrier
        elif barrier.parties != parties:
            raise ValueError(
                f"barrier {name!r} already exists with parties="
                f"{barrier.parties}, requested {parties}"
            )
        return barrier


def clear_barriers() -> None:
    """Drop all named barriers (aborting any waiters) — call between tests."""

    with _barrier_lock:
        for barrier in _barriers.values():
            barrier.abort()
        _barriers.clear()


def assert_parallel_execution(
    fns: Sequence[Callable[[], Any]],
    *,
    timeout: float = 30.0,
    message: str | None = None,
) -> list[tuple[float, float]]:
    """Run each callable on its own thread and assert their spans overlap.

    Asserts there is an instant at which *all* callables were running
    simultaneously (``max(starts) < min(ends)``) — use a shared barrier
    inside the callables to make the overlap robust rather than lucky
    (a barrier also converts accidental serialisation into a visible
    ``BrokenBarrierError``).  A callable may return a ``(start, end)``
    pair of monotonic timestamps to narrow the assertion to its actual
    work window (e.g. just its critical section) instead of the whole
    thread lifetime.  Returns the spans; callable exceptions re-raise.
    """

    if len(fns) < 2:
        raise ValueError("need at least two callables to assert parallelism")
    spans: list[tuple[float, float] | None] = [None] * len(fns)
    errors: list[BaseException] = []

    def runner(index: int, fn: Callable[[], Any]) -> None:
        start = time.monotonic()
        window: tuple[float, float] | None = None
        try:
            returned = fn()
            if (
                isinstance(returned, tuple)
                and len(returned) == 2
                and all(isinstance(t, (int, float)) for t in returned)
            ):
                window = (float(returned[0]), float(returned[1]))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
        finally:
            spans[index] = window if window is not None else (start, time.monotonic())

    threads = [
        threading.Thread(target=runner, args=(i, fn), daemon=True)
        for i, fn in enumerate(fns)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(max(deadline - time.monotonic(), 0.0))
    if any(thread.is_alive() for thread in threads):
        raise AssertionError(f"parallel callables did not finish within {timeout}s")
    if errors:
        raise errors[0]
    done = [span for span in spans if span is not None]
    overlap_start = max(start for start, _ in done)
    overlap_end = min(end for _, end in done)
    if overlap_start >= overlap_end:
        raise AssertionError(
            message
            or f"callables never ran concurrently: spans={done!r}"
        )
    return done  # type: ignore[return-value]


@contextmanager
def background_event_loop() -> Iterator[asyncio.AbstractEventLoop]:
    """An asyncio loop running on a daemon thread, stopped on exit.

    The loop's thread is never registered with a controller, so
    coroutine actors scheduled onto it via ``spawn_task`` can block at
    sync points without freezing the loop itself.
    """

    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="sync-test-loop", daemon=True)
    thread.start()
    started.wait(5.0)
    try:
        yield loop
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5.0)
        if not loop.is_running():
            loop.close()
