"""Bounded exhaustive schedule exploration over sync-point state machines.

The engine's hand-off paths are small labeled state machines: a handful
of actors, each passing through a handful of named sync points.  For
machines this small, the pragmatic version of systematic concurrency
testing (the DPOR family — see PAPERS.md) is to *enumerate every
interleaving outright* up to a depth bound, run the scenario's
invariant checks on each one, and print any failing schedule as a
script that :func:`replay` reproduces deterministically.

The algorithm is prefix-directed depth-first search: run the scenario
once, recording the enabled set at every scheduling step; then for each
step within the depth bound, branch on every enabled actor that was
*not* chosen, queuing ``chosen_prefix + (alternative,)`` as a new
prefix to execute.  Beyond the prefix, the schedule continues
deterministically (first enabled actor in sorted order), so two runs
that share a prefix share their whole schedule — the visited-set
deduplication is exact and the enumeration is exhaustive for schedules
up to ``max_depth`` scheduling decisions.

A scenario is anything with the :class:`Scenario` shape: ``start``
builds fresh state and spawns its actors on a controller, ``check``
asserts the invariants after the schedule ran, ``cleanup`` tears down.
Fresh state per run is essential — the explorer executes the scenario
once per schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .syncpoints import ScheduleController, ScheduleError

__all__ = [
    "ExplorationResult",
    "Scenario",
    "ScheduleFailure",
    "explore",
    "format_schedule",
    "replay",
]


class Scenario:
    """Base (duck-typed) scenario: subclassing is optional.

    ``start(controller)`` must create *fresh* state, spawn every actor
    via ``controller.spawn`` / ``controller.spawn_task``, and return a
    context object.  ``check(context)`` raises ``AssertionError`` when
    an invariant is violated.  ``cleanup(context)`` always runs.
    """

    name = "scenario"
    #: Per-scenario controller tuning (seconds).
    stall_timeout = 0.1
    deadlock_timeout = 20.0

    def start(self, controller: ScheduleController) -> Any:
        raise NotImplementedError

    def check(self, context: Any) -> None:  # pragma: no cover - default no-op
        return None

    def cleanup(self, context: Any) -> None:  # pragma: no cover - default no-op
        return None


def format_schedule(trace: list[tuple[str, str]]) -> str:
    """Render a trace as the replayable ``actor@point`` script format."""

    return " ".join(f"{actor}@{point}" for actor, point in trace)


@dataclass
class ScheduleFailure:
    """One schedule that violated an invariant (or crashed an actor)."""

    choices: tuple[str, ...]
    trace: list[tuple[str, str]]
    error: BaseException

    def describe(self, scenario_name: str) -> str:
        lines = [
            f"scenario {scenario_name!r} failed under schedule:",
            f"  schedule: {format_schedule(self.trace)}",
            f"  choices:  {list(self.choices)!r}",
            f"  error:    {type(self.error).__name__}: {self.error}",
            "  replay with: repro.testing.replay(scenario, choices)",
        ]
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """Outcome of :func:`explore` over one scenario."""

    scenario: str
    schedules: int = 0
    max_depth_seen: int = 0
    depth_limited: bool = False
    truncated: bool = False
    divergences: int = 0
    failures: list[ScheduleFailure] = field(default_factory=list)

    def raise_on_failure(self) -> None:
        """Raise ``AssertionError`` describing the first failing schedule."""

        if self.failures:
            failure = self.failures[0]
            raise AssertionError(failure.describe(self.scenario)) from failure.error

    def summary(self) -> str:
        return (
            f"scenario {self.scenario!r}: {self.schedules} schedules, "
            f"max depth {self.max_depth_seen}"
            f"{' (depth-limited)' if self.depth_limited else ''}"
            f"{' (truncated)' if self.truncated else ''}, "
            f"{len(self.failures)} failing, {self.divergences} divergent"
        )


class _Divergence(Exception):
    """Internal: a queued prefix no longer matches the enabled sets."""


@dataclass
class _RunOutcome:
    choices: tuple[str, ...]
    enabled_sets: list[list[str]]
    trace: list[tuple[str, str]]
    diverged: bool
    error: BaseException | None


def _run_schedule(scenario: Scenario, prefix: tuple[str, ...]) -> _RunOutcome:
    controller = ScheduleController(
        stall_timeout=scenario.stall_timeout,
        deadlock_timeout=scenario.deadlock_timeout,
    )
    enabled_sets: list[list[str]] = []
    choices: list[str] = []

    def decider(step: int, enabled: list[str]) -> str:
        enabled_sets.append(list(enabled))
        if step < len(prefix):
            if prefix[step] not in enabled:
                raise _Divergence(
                    f"step {step}: prefix wants {prefix[step]!r}, enabled={enabled}"
                )
            choice = prefix[step]
        else:
            choice = enabled[0]
        choices.append(choice)
        return choice

    error: BaseException | None = None
    diverged = False
    with controller.install():
        context = scenario.start(controller)
        try:
            controller.drive(decider=decider)
            scenario.check(context)
        except _Divergence:
            diverged = True
        except BaseException as exc:  # noqa: BLE001 - recorded per schedule
            error = exc
        finally:
            # Unblock every actor before tearing scenario state down:
            # cleanup may stop the event loop the async actors live on.
            controller.drain()
            try:
                scenario.cleanup(context)
            except BaseException as exc:  # noqa: BLE001 - cleanup must not mask
                if error is None:
                    error = exc
    return _RunOutcome(tuple(choices), enabled_sets, list(controller.trace), diverged, error)


def explore(
    scenario: Scenario,
    *,
    max_depth: int = 12,
    max_schedules: int = 400,
    stop_on_first_failure: bool = True,
) -> ExplorationResult:
    """Enumerate every schedule of ``scenario`` up to ``max_depth`` decisions.

    Scheduling decisions past ``max_depth`` follow the deterministic
    default (first enabled actor, sorted), so every run completes; the
    bound limits only where the search *branches*.  ``max_schedules``
    is a hard safety valve — hitting it sets ``result.truncated``,
    which well-sized scenarios should assert is ``False``.
    """

    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    result = ExplorationResult(scenario=getattr(scenario, "name", "scenario"))
    pending: list[tuple[str, ...]] = [()]
    seen: set[tuple[str, ...]] = {()}
    while pending:
        if result.schedules >= max_schedules:
            result.truncated = True
            break
        prefix = pending.pop()
        outcome = _run_schedule(scenario, prefix)
        if outcome.diverged:
            # Nondeterminism outside the scheduler (rare: OS timing
            # changed a stall classification).  Retry the prefix once;
            # count it if it diverges again.
            outcome = _run_schedule(scenario, prefix)
            if outcome.diverged:
                result.divergences += 1
                continue
        result.schedules += 1
        depth = len(outcome.choices)
        result.max_depth_seen = max(result.max_depth_seen, depth)
        if depth > max_depth:
            result.depth_limited = True
        if outcome.error is not None:
            result.failures.append(
                ScheduleFailure(outcome.choices, outcome.trace, outcome.error)
            )
            if stop_on_first_failure:
                break
        branch_to = min(depth, max_depth, len(outcome.enabled_sets))
        for step in range(len(prefix), branch_to):
            for alternative in outcome.enabled_sets[step]:
                if alternative == outcome.choices[step]:
                    continue
                branch = outcome.choices[:step] + (alternative,)
                if branch not in seen:
                    seen.add(branch)
                    pending.append(branch)
    return result


def replay(scenario: Scenario, choices: Any) -> list[tuple[str, str]]:
    """Re-run ``scenario`` under an exact schedule and re-raise its failure.

    ``choices`` is the ``choices`` list printed by
    :meth:`ScheduleFailure.describe` (actor names, one per scheduling
    step).  Returns the trace when the schedule passes; raises the
    original invariant violation when it still fails — which a
    deterministic scenario always will.
    """

    outcome = _run_schedule(scenario, tuple(choices))
    if outcome.diverged:
        raise ScheduleError(
            f"replay diverged: the scenario is not deterministic under "
            f"choices {list(choices)!r}"
        )
    if outcome.error is not None:
        raise outcome.error
    return outcome.trace
