"""HTTP router front-end sharding requests across ``estima serve`` backends.

``estima route --http HOST:PORT --backends host1:port,host2:port`` serves the
gateway's exact HTTP protocol (same routes, same request/response schemas,
same framing helpers) but owns no prediction machinery at all: every request
is forwarded over the NDJSON serve protocol to a downstream backend chosen by
the consistent-hash ring — same request content, same backend, so each
shard's tiered caches stay hot for its slice of the key space.

Routes (documented in ``docs/serve-protocol.md``; the doc-sync test walks
:data:`ROUTES` and :data:`ROUTER_STATUS_REASONS`):

``POST /v1/predict``
    Forwarded whole to the backend owning the request's content digest.
``POST /v1/predict_batch``
    Each element is sharded independently (different elements may land on
    different backends) and forwarded concurrently; responses come back in
    request order, per-element errors inline — exactly the gateway's
    multi-status contract.
``POST /v1/campaign``
    Validated fully (a 400 before any streaming, the gateway's contract),
    then split into one single-workload NDJSON campaign sub-request per
    workload, sharded by digest and run concurrently across the backends.
    Row chunks are merged back into *campaign order* (workload order) and
    the final summary document is rebuilt from the returned rows with the
    same :mod:`repro.runner.io` payload helpers the server uses — aggregate
    numbers are bit-identical to a single-host campaign by construction.
``GET /healthz``
    Actively probes every backend (TCP connect) and reports per-backend
    liveness; 200 while at least one backend is up, 503 when none are.
``GET /metrics``
    The router's own counters (requests by route, responses by status) plus
    the :class:`~repro.engine.cluster.remote.BackendPool` routing stats
    (routed requests, retries, failovers, per-backend health), rendered by
    the same strict :func:`~repro.engine.gateway.flatten_stats` path.

Failover semantics: a sub-request is the unit of failover.  The pool buffers
one backend exchange completely before anything is written to the client, so
when a backend dies mid-campaign the affected sub-requests are re-routed to
the next ring node and their rows appear exactly once — never duplicated
(partial exchanges are discarded wholesale), never dropped (the sub-request
either succeeds somewhere or the stream ends with an error document).  Only
when *every* backend is exhausted does the client see an error: a 503 for
single-document routes, a final ``{"ok": false, "error_kind":
"unavailable"}`` document inside the stream for campaigns.
"""

from __future__ import annotations

import asyncio
import json
import socket
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping

from repro.core.config import EstimaConfig
from repro.engine.cache import digest
from repro.engine.gateway import (
    DEFAULT_MAX_BODY_BYTES,
    STATUS_REASONS,
    _HttpError,
    _HttpRequest,
    _METRICS_CONTENT_TYPE,
    _NDJSON_CONTENT_TYPE,
    _read_request,
    metrics_text,
    write_http_response,
    write_json_response,
)
from repro.engine.server import RequestError, parse_campaign_request

from .remote import (
    BackendPool,
    RemoteUnavailableError,
    remote_retries_from_env,
    remote_timeout_from_env,
)
from .ring import DEFAULT_VNODES

__all__ = ["ROUTES", "ROUTER_STATUS_REASONS", "Router", "serve_route"]

#: Every route the router serves — the gateway's mapping, verbatim, so a
#: client cannot tell a router from a single host by its surface.
ROUTES: dict[tuple[str, str], str] = {
    ("POST", "/v1/predict"): "predict",
    ("POST", "/v1/predict_batch"): "predict_batch",
    ("POST", "/v1/campaign"): "campaign",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
}

#: The gateway's statuses plus 503 (no backend reachable — a state a single
#: host cannot be in).  Walked by the doc-sync test like the gateway's table.
ROUTER_STATUS_REASONS: dict[int, str] = {**STATUS_REASONS, 503: "Service Unavailable"}

#: Bound on one backend liveness probe (``GET /healthz``), seconds.
_PROBE_TIMEOUT_S = 2.0


def _canonical_key(kind: str, payload: Any) -> str:
    """The shard key of one request: a digest of its canonical JSON form.

    Key ordering is normalised so two byte-different encodings of the same
    request land on the same backend (and therefore the same warm caches).
    """
    return digest(kind, json.dumps(payload, sort_keys=True, separators=(",", ":")))


def _merge_caches(
    totals: dict[str, dict[str, int]], part: Mapping[str, Any]
) -> None:
    """Sum one sub-campaign's per-region cache counters into ``totals``."""
    for region, counts in part.items():
        if not isinstance(counts, Mapping):
            continue
        bucket = totals.setdefault(str(region), {})
        for key, value in counts.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                bucket[str(key)] = bucket.get(str(key), 0) + int(value)


class Router:
    """Shard the gateway's HTTP surface across NDJSON serve backends.

    The router validates requests itself (with its own ``config``, which
    must therefore agree with the backends' on campaign semantics — they
    normally share one deployment config) but computes nothing: prediction
    work happens on whichever backend the ring selects.
    """

    def __init__(
        self,
        backends: "tuple[str, ...] | list[str] | str",
        *,
        config: EstimaConfig | None = None,
        vnodes: int = DEFAULT_VNODES,
        timeout: "float | None" = None,
        retries: "int | None" = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        idle_timeout: "float | None" = None,
    ) -> None:
        self.config = config or EstimaConfig()
        self.pool = BackendPool(
            backends,
            vnodes=vnodes,
            timeout=timeout if timeout is not None else remote_timeout_from_env(),
            retries=retries if retries is not None else remote_retries_from_env(),
        )
        self.max_body_bytes = max_body_bytes
        # Same resolution as the server/gateway: explicit kwarg, else config,
        # else ESTIMA_SERVE_IDLE_TIMEOUT; 0/None = disabled.
        from repro.engine.pool import parse_idle_timeout, serve_idle_timeout_from_env

        if idle_timeout is None:
            idle_timeout = self.config.serve_idle_timeout
            if idle_timeout is None:
                idle_timeout = serve_idle_timeout_from_env()
        self.idle_timeout = (
            parse_idle_timeout(idle_timeout) if idle_timeout is not None else 0.0
        ) or None
        self._requests_by_route: dict[str, int] = {}
        self._responses_by_status: dict[str, int] = {}
        # Blocking pool.request calls run here, off the event loop.  Sized
        # like the RemoteExecutor's dispatcher: enough to keep every backend
        # busy, bounded so a huge campaign cannot spawn unbounded threads.
        self._io_pool = ThreadPoolExecutor(
            max_workers=min(16, 2 * len(self.pool.backends)),
            thread_name_prefix="estima-route",
        )

    def close(self) -> None:
        self._io_pool.shutdown(wait=True)
        self.pool.close()

    # ------------------------------------------------------------------ #
    # Stats (one snapshot behind /metrics and --stats)
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Router counters plus the backend pool's routing/health stats."""
        return {
            "router": {
                "requests_by_route": dict(sorted(self._requests_by_route.items())),
                "responses_by_status": dict(sorted(self._responses_by_status.items())),
            },
            "cluster": self.pool.stats(),
        }

    def _count_request(self, route_key: str) -> None:
        self._requests_by_route[route_key] = self._requests_by_route.get(route_key, 0) + 1

    def _count_response(self, status: int) -> None:
        key = str(status)
        self._responses_by_status[key] = self._responses_by_status.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # Backend I/O
    # ------------------------------------------------------------------ #
    async def _forward(self, key: str, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
        """One routed NDJSON exchange, run off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._io_pool, self.pool.request, key, payload
        )

    async def _probe(self, address: str) -> bool:
        """One TCP liveness probe, recorded into the pool's health state."""

        def connect() -> bool:
            host, port = self.pool._clients[address].host, self.pool._clients[address].port
            try:
                with socket.create_connection(
                    (host, port), timeout=min(self.pool.timeout, _PROBE_TIMEOUT_S)
                ):
                    return True
            except OSError:
                return False

        up = await asyncio.get_running_loop().run_in_executor(self._io_pool, connect)
        self.pool.mark_probe(address, up=up)
        return up

    # ------------------------------------------------------------------ #
    # Connection handling (the gateway's loop, with the router's tables)
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP connection (keep-alive) until EOF or close."""
        try:
            while True:
                try:
                    if self.idle_timeout is None:
                        request = await _read_request(reader, self.max_body_bytes)
                    else:
                        request = await asyncio.wait_for(
                            _read_request(reader, self.max_body_bytes),
                            timeout=self.idle_timeout,
                        )
                except asyncio.TimeoutError:
                    self._count_request("idle_timeout")
                    break
                except _HttpError as exc:
                    self._count_request("unparsed")
                    await self._write_json(
                        writer, exc.status, {"ok": False, "error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing left to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError):
                pass

    async def _dispatch(self, request: _HttpRequest, writer: asyncio.StreamWriter) -> bool:
        method, path = request.method, request.path
        handler = ROUTES.get((method, path))
        self._count_request(f"{method} {path}" if handler else "unmatched")
        keep_alive = request.keep_alive
        if handler is None:
            allowed = sorted({m for m, p in ROUTES if p == path})
            if allowed:
                await self._write_json(
                    writer,
                    405,
                    {"ok": False, "error": f"method {method} not allowed for {path}"},
                    keep_alive=keep_alive,
                    extra_headers=(("Allow", ", ".join(allowed)),),
                )
            else:
                await self._write_json(
                    writer, 404, {"ok": False, "error": f"no route for {path}"},
                    keep_alive=keep_alive,
                )
            return keep_alive
        try:
            if handler == "healthz":
                await self._healthz(writer, keep_alive)
            elif handler == "metrics":
                self._count_response(200)
                body = metrics_text(self.stats()).encode()
                await write_http_response(
                    writer, 200, body, _METRICS_CONTENT_TYPE,
                    keep_alive=keep_alive, reasons=ROUTER_STATUS_REASONS,
                )
            elif handler == "predict":
                status, document = await self._predict(request.body)
                await self._write_json(writer, status, document, keep_alive=keep_alive)
            elif handler == "predict_batch":
                status, document = await self._predict_batch(request.body)
                await self._write_json(writer, status, document, keep_alive=keep_alive)
            else:  # campaign
                keep_alive = await self._campaign(request, writer, keep_alive)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # a handler bug must not kill the listener
            await self._write_json(
                writer, 500, {"ok": False, "error": f"internal error: {exc}"},
                keep_alive=False,
            )
            return False
        return keep_alive

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #
    async def _healthz(self, writer: asyncio.StreamWriter, keep_alive: bool) -> None:
        probes = await asyncio.gather(
            *(self._probe(address) for address in self.pool.backends)
        )
        backends = dict(zip(self.pool.backends, probes))
        any_up = any(probes)
        await self._write_json(
            writer,
            200 if any_up else 503,
            {"ok": any_up, "backends": backends},
            keep_alive=keep_alive,
        )

    def _parse_body(self, body: bytes) -> Any:
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad JSON body: {exc}") from None

    async def _predict(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = self._parse_body(body)
        except _HttpError as exc:
            return exc.status, {"ok": False, "error": str(exc)}
        if isinstance(payload, Mapping) and payload.get("op", "predict") != "predict":
            return 400, {
                "id": payload.get("id"),
                "ok": False,
                "error": f"unsupported op {payload.get('op')!r} for /v1/predict"
                " (campaigns go to /v1/campaign)",
            }
        document = await self._forward_predict(payload)
        if document.get("ok"):
            return 200, document
        if document.get("error_kind") == "unavailable":
            return 503, document
        return (500 if document.get("error_kind") == "internal" else 400), document

    async def _forward_predict(self, payload: Any) -> dict[str, Any]:
        """Route one predict request; transport exhaustion becomes a document."""
        request_id = payload.get("id") if isinstance(payload, Mapping) else None
        try:
            documents = await self._forward(_canonical_key("route-predict", payload), payload)
        except RemoteUnavailableError as exc:
            return {
                "id": request_id, "ok": False,
                "error": f"no backend available: {exc}", "error_kind": "unavailable",
            }
        return documents[-1] if documents else {
            "id": request_id, "ok": False,
            "error": "backend returned no response", "error_kind": "unavailable",
        }

    async def _predict_batch(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = self._parse_body(body)
        except _HttpError as exc:
            return exc.status, {"ok": False, "error": str(exc)}
        requests = payload.get("requests") if isinstance(payload, Mapping) else payload
        if not isinstance(requests, list):
            return 400, {
                "ok": False,
                "error": "body must be {\"requests\": [...]} or a JSON array",
            }
        if not requests:
            return 400, {"ok": False, "error": "predict_batch needs at least one request"}
        # Each element shards independently — one HTTP batch fans out across
        # the whole cluster — and responses return in request order.
        documents = await asyncio.gather(
            *(self._forward_predict(request) for request in requests)
        )
        ok = all(document.get("ok") for document in documents)
        return 200, {"ok": ok, "responses": list(documents)}

    async def _campaign(
        self, request: _HttpRequest, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        try:
            payload = self._parse_body(request.body)
        except _HttpError as exc:
            await self._write_json(
                writer, exc.status, {"ok": False, "error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        if not isinstance(payload, Mapping):
            await self._write_json(
                writer, 400, {"ok": False, "error": "request must be a JSON object"},
                keep_alive=keep_alive,
            )
            return keep_alive
        # Validate fully before committing to a 200 (the gateway's contract):
        # the parse also resolves the default workload list and the campaign
        # object the summary is rebuilt around.
        try:
            campaign, workloads = await asyncio.get_running_loop().run_in_executor(
                None, parse_campaign_request, payload, self.config
            )
        except RequestError as exc:
            await self._write_json(
                writer,
                400,
                {"id": payload.get("id"), "ok": False, "error": str(exc)},
                keep_alive=keep_alive,
            )
            return keep_alive

        self._count_response(200)
        writer.write(
            (
                f"HTTP/1.1 200 {ROUTER_STATUS_REASONS[200]}\r\n"
                f"Content-Type: {_NDJSON_CONTENT_TYPE}\r\n"
                "Transfer-Encoding: chunked\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            ).encode()
        )
        await writer.drain()

        async def write_chunk(document: Mapping[str, Any]) -> None:
            data = json.dumps(document).encode() + b"\n"
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        try:
            final = await self._run_sharded_campaign(
                payload, campaign, workloads, write_chunk
            )
            await write_chunk(final)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception:
            # The 200 header (and possibly rows) are on the wire; closing
            # without the terminating 0-chunk is the client's error signal
            # (the gateway's contract).
            return False
        return keep_alive

    async def _run_sharded_campaign(
        self,
        payload: Mapping[str, Any],
        campaign: Any,
        workloads: tuple[str, ...],
        write_chunk: "Callable[[Mapping[str, Any]], Any]",
    ) -> dict[str, Any]:
        """Fan one campaign out as per-workload sub-requests; merge in order.

        Every sub-request inherits the original request's knobs but names a
        single workload and pins ``executor: serial`` on the backend — the
        reference path, and a guard against recursion if a backend's own
        environment selects the remote executor.  Sub-requests run
        concurrently; rows are written in campaign (workload) order because
        each sub-exchange is buffered by the pool, so the merge is a simple
        in-order await over the launched tasks.
        """
        request_id = payload.get("id")
        base = {
            key: value
            for key, value in payload.items()
            if key not in ("id", "workloads", "executor")
        }
        base["op"] = "campaign"
        base["executor"] = "serial"

        async def run_one(workload: str) -> list[dict[str, Any]]:
            sub = dict(base)
            sub["workloads"] = [workload]
            return await self._forward(_canonical_key("route-campaign", sub), sub)

        tasks = [asyncio.ensure_future(run_one(workload)) for workload in workloads]
        rows: list[dict[str, Any]] = []
        caches: dict[str, dict[str, int]] = {}
        try:
            for workload, task in zip(workloads, tasks):
                try:
                    documents = await task
                except RemoteUnavailableError as exc:
                    return {
                        "id": request_id, "ok": False,
                        "error": f"campaign shard {workload!r} failed: no backend "
                        f"available: {exc}",
                        "error_kind": "unavailable",
                    }
                summary_doc = documents[-1] if documents else {}
                if not summary_doc.get("ok", False):
                    return {
                        "id": request_id, "ok": False,
                        "error": f"campaign shard {workload!r} failed: "
                        f"{summary_doc.get('error', 'empty backend response')}",
                        "error_kind": summary_doc.get("error_kind", "internal"),
                    }
                for document in documents[:-1]:
                    row = document.get("row")
                    if row is None:
                        continue
                    rows.append(row)
                    await write_chunk(
                        {"id": request_id, "ok": True, "op": "campaign", "row": row}
                    )
                engine = summary_doc.get("summary", {}).get("engine", {})
                if isinstance(engine, Mapping):
                    _merge_caches(caches, engine.get("caches", {}) or {})
        finally:
            for task in tasks:
                task.cancel()

        summary = self._rebuild_summary(campaign, rows)
        summary["engine"] = {
            "executor": "route",
            "workloads": len(workloads),
            "caches": caches,
            "cluster": self.pool.stats(),
        }
        return {
            "id": request_id,
            "ok": True,
            "op": "campaign",
            "done": True,
            "rows": len(rows),
            "summary": summary,
        }

    @staticmethod
    def _rebuild_summary(campaign: Any, rows: list[dict[str, Any]]) -> dict[str, Any]:
        """The final summary document, rebuilt from the merged row payloads.

        Goes through the same :class:`~repro.runner.campaign.CampaignResult`
        and :func:`repro.runner.io.campaign_result_payload` machinery a
        single host uses, so the aggregate statistics are bit-identical to
        an unsharded run over the same rows.
        """
        from repro.runner.campaign import CampaignResult, CampaignRow
        from repro.runner.io import campaign_result_payload

        result = CampaignResult(
            machine=campaign.machine.name,
            measurement_cores=campaign.measurement_cores,
            rows=tuple(
                CampaignRow(
                    workload=row["workload"],
                    max_errors_pct=dict(row["max_errors_pct"]),
                    baseline_errors_pct=dict(row["baseline_errors_pct"]),
                    behaviour_correct=bool(row["behaviour_correct"]),
                )
                for row in rows
            ),
            target_labels=tuple(campaign.targets),
        )
        return campaign_result_payload(result)

    # ------------------------------------------------------------------ #
    # Response writing
    # ------------------------------------------------------------------ #
    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Mapping[str, Any],
        *,
        keep_alive: bool,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self._count_response(status)
        await write_json_response(
            writer, status, document,
            keep_alive=keep_alive, extra_headers=extra_headers,
            reasons=ROUTER_STATUS_REASONS,
        )


# --------------------------------------------------------------------------- #
# Transport
# --------------------------------------------------------------------------- #


async def serve_route(
    router: Router,
    host: str,
    port: int,
    *,
    on_listening: "Callable[[tuple[str, int]], None] | None" = None,
) -> None:
    """Serve router HTTP connections on a TCP listener until cancelled.

    The exact shape of :func:`repro.engine.gateway.serve_http`: ``port`` 0
    binds an ephemeral port and ``on_listening`` receives the bound
    ``(host, port)`` (the CLI announces it, tests connect to it).
    """
    http_server = await asyncio.start_server(router.handle_connection, host=host, port=port)
    if on_listening is not None:
        bound = http_server.sockets[0].getsockname()
        on_listening((bound[0], bound[1]))
    async with http_server:
        await http_server.serve_forever()
