"""Ship warm :class:`~repro.engine.store.DiskStore` entries between machines.

``estima cache export`` packs a store's entry files into one gzipped tar
archive; ``estima cache import`` unpacks it into another store — the
"shipped warm fits" leg of the cluster layer: warm a cache once (a CI job,
a beefy build host), then start every serving shard hot.

Archive format (versioned independently of the entry schema)::

    manifest.json            {"archive_schema": 1, "store_schema": 1,
                              "entries": N, "regions": {region: count}}
    <region>/<key>.entry     the raw pickled store payload, verbatim

Safety properties:

* **Schema-versioned.** Import refuses an archive whose ``archive_schema``
  or ``store_schema`` does not match this code — stale formats fail loudly
  instead of deserialising garbage.
* **Digest-verified.** Every store payload embeds its own region/key/schema;
  import unpickles each member and cross-checks the embedded values against
  the member's path before writing.  A renamed, truncated or tampered-with
  member is counted and skipped, never stored under the wrong digest.
* **Ring-filtered.** With a :class:`~repro.engine.cluster.ring.HashRing`
  and a node name, import keeps only the entries that ring places on that
  node — each shard imports exactly its slice of a full archive, and the
  placement agrees with the router's because both are the same pure
  function.
* **No path traversal.** Members are never extracted to disk; bytes are
  read in memory and written through :meth:`DiskStore.put` (atomic rename,
  byte-budget enforcement included).

Trust model: archive entries are pickles, exactly like the store's own
files — import archives only from sources you would let write your cache
directory.
"""

from __future__ import annotations

import io
import json
import pickle
import tarfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.engine.store import SCHEMA_VERSION, DiskStore

if TYPE_CHECKING:  # imported for annotations only
    from .ring import HashRing

__all__ = ["ARCHIVE_SCHEMA_VERSION", "export_store", "import_archive"]

#: Version of the archive layout itself (manifest + member naming).  Bump on
#: layout changes; mismatching archives are refused at import.
ARCHIVE_SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_ENTRY_SUFFIX = ".entry"


def _entry_files(store: DiskStore, regions: "Iterable[str] | None") -> list[tuple[str, str, Path]]:
    """Every ``(region, key, path)`` entry of the store, sorted for determinism."""
    wanted = set(regions) if regions is not None else None
    found: list[tuple[str, str, Path]] = []
    root = store.root
    if not root.is_dir():
        return found
    for path in root.rglob(f"*{_ENTRY_SUFFIX}"):
        relative = path.relative_to(root).parts
        if len(relative) < 2:
            continue  # not under a region directory
        region, key = relative[0], path.name[: -len(_ENTRY_SUFFIX)]
        if wanted is not None and region not in wanted:
            continue
        found.append((region, key, path))
    found.sort()
    return found


def export_store(
    store: DiskStore,
    output: "str | Path",
    *,
    regions: "Iterable[str] | None" = None,
) -> dict[str, object]:
    """Write the store's entries (optionally one region subset) to a tar.gz.

    Unreadable or schema-stale entry files are skipped and counted — the
    archive only ever carries payloads a current import will accept.
    Returns a JSON-friendly summary (``entries``, ``regions``, ``skipped``,
    ``path``, ``bytes``).
    """
    store.refresh()  # pick up entries other processes wrote
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    entries = 0
    skipped = 0
    region_counts: dict[str, int] = {}
    members: list[tuple[str, bytes]] = []
    for region, key, path in _entry_files(store, regions):
        try:
            blob = path.read_bytes()
        except OSError:
            skipped += 1
            continue
        if not _valid_payload(blob, region=region, key=key):
            skipped += 1
            continue
        members.append((f"{region}/{key}{_ENTRY_SUFFIX}", blob))
        entries += 1
        region_counts[region] = region_counts.get(region, 0) + 1
    manifest = {
        "archive_schema": ARCHIVE_SCHEMA_VERSION,
        "store_schema": SCHEMA_VERSION,
        "entries": entries,
        "regions": region_counts,
    }
    with tarfile.open(output, "w:gz") as tar:
        _add_bytes(tar, _MANIFEST_NAME, json.dumps(manifest, indent=2).encode())
        for name, blob in members:
            _add_bytes(tar, name, blob)
    summary = dict(manifest)
    summary["skipped"] = skipped
    summary["path"] = str(output)
    summary["bytes"] = output.stat().st_size
    return summary


def import_archive(
    path: "str | Path",
    store: DiskStore,
    *,
    ring: "HashRing | None" = None,
    node: "str | None" = None,
) -> dict[str, object]:
    """Load an exported archive into ``store`` (optionally one ring slice).

    With ``ring`` and ``node``, only entries the ring places on ``node``
    are written — the shard-slice import.  Raises ``ValueError`` for a
    missing/garbled manifest or a schema mismatch; individual entries that
    fail digest verification are counted in ``skipped_invalid`` and
    skipped.  Returns a JSON-friendly summary (``imported``,
    ``skipped_invalid``, ``skipped_other_shard``, ``regions``).
    """
    if (ring is None) != (node is None):
        raise ValueError("ring filtering needs both a ring and a node")
    if ring is not None and node not in ring.nodes:
        raise ValueError(f"node {node!r} is not on the ring {ring.nodes!r}")
    imported = 0
    skipped_invalid = 0
    skipped_other_shard = 0
    region_counts: dict[str, int] = {}
    try:
        with tarfile.open(path, "r:*") as tar:
            manifest = _read_manifest(tar)
            for member in tar:
                if not member.isfile() or not member.name.endswith(_ENTRY_SUFFIX):
                    continue
                parts = Path(member.name).parts
                if len(parts) != 2:
                    skipped_invalid += 1
                    continue
                region, key = parts[0], parts[1][: -len(_ENTRY_SUFFIX)]
                if ring is not None and ring.node_for(key) != node:
                    skipped_other_shard += 1
                    continue
                handle = tar.extractfile(member)
                blob = handle.read() if handle is not None else b""
                value = _verified_value(blob, region=region, key=key)
                if value is _INVALID:
                    skipped_invalid += 1
                    continue
                if store.put(region, key, value):
                    imported += 1
                    region_counts[region] = region_counts.get(region, 0) + 1
                else:
                    skipped_invalid += 1
    except (tarfile.TarError, OSError) as exc:
        raise ValueError(f"not a cache archive: {exc}") from None
    return {
        "archive_schema": manifest["archive_schema"],
        "store_schema": manifest["store_schema"],
        "imported": imported,
        "skipped_invalid": skipped_invalid,
        "skipped_other_shard": skipped_other_shard,
        "regions": region_counts,
    }


# --------------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------------- #

_INVALID = object()


def _add_bytes(tar: tarfile.TarFile, name: str, blob: bytes) -> None:
    info = tarfile.TarInfo(name=name)
    info.size = len(blob)
    info.mtime = 0  # bit-reproducible archives for identical store contents
    tar.addfile(info, io.BytesIO(blob))


def _read_manifest(tar: tarfile.TarFile) -> dict[str, object]:
    try:
        handle = tar.extractfile(_MANIFEST_NAME)
    except KeyError:
        handle = None
    if handle is None:
        raise ValueError(f"not a cache archive: no {_MANIFEST_NAME} member")
    try:
        manifest = json.loads(handle.read())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"garbled archive manifest: {exc}") from None
    if not isinstance(manifest, dict):
        raise ValueError("garbled archive manifest: not a JSON object")
    if manifest.get("archive_schema") != ARCHIVE_SCHEMA_VERSION:
        raise ValueError(
            f"archive schema v{manifest.get('archive_schema')!r} does not match "
            f"this code's v{ARCHIVE_SCHEMA_VERSION}"
        )
    if manifest.get("store_schema") != SCHEMA_VERSION:
        raise ValueError(
            f"archive store schema v{manifest.get('store_schema')!r} does not match "
            f"this code's v{SCHEMA_VERSION}"
        )
    return manifest


def _decode_payload(blob: bytes) -> "dict | None":
    try:
        payload = pickle.loads(blob)
    except Exception:
        return None
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
        return None
    return payload


def _valid_payload(blob: bytes, *, region: str, key: str) -> bool:
    payload = _decode_payload(blob)
    return (
        payload is not None
        and payload.get("region") == region
        and payload.get("key") == key
    )


def _verified_value(blob: bytes, *, region: str, key: str) -> object:
    """The entry's value iff the embedded region/key/schema match its path."""
    payload = _decode_payload(blob)
    if payload is None or payload.get("region") != region or payload.get("key") != key:
        return _INVALID
    return payload.get("value")
