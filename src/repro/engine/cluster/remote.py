"""Remote execution backend: ship registered tasks to ``estima serve`` hosts.

Three pieces, stacked:

* :class:`RemoteClient` — a synchronous NDJSON client for one backend host:
  persistent connections (a small free-list, one connection per in-flight
  request so streamed responses never interleave), strict framing, and a
  clean split between *transport* errors (retryable:
  :class:`RemoteUnavailableError`) and *server-reported* errors (not
  retryable: :class:`RemoteRequestError`).
* :class:`BackendPool` — the cluster-facing client the router shares: a
  :class:`~repro.engine.cluster.ring.HashRing` over the backends, bounded
  per-host retries with exponential backoff, per-host health tracking
  (consecutive transport failures mark a host down; the next success marks
  it up; down hosts are tried last, never never), failover to the next ring
  node, and per-host request/retry/failover counters for ``/metrics``.
* :class:`RemoteExecutor` — just another
  :class:`~repro.engine.executor.Executor` backend, selected via
  ``ESTIMA_EXECUTOR=remote:<host:port[,host:port...]>`` or
  ``EstimaConfig(executor="remote:...")``.  Arbitrary callables cannot
  cross the wire, so task functions opt in through
  :func:`register_remote_op`, which maps a function to a request builder, a
  response decoder and a shard key; unregistered functions (and tasks whose
  builder declines) run locally, and any task whose backends are exhausted
  falls back to local serial execution — results are bit-identical either
  way (the serving contract), only placement differs.

This module depends only on the leaf engine modules (``executor``, ``pool``,
``cache`` via the ring) so ``EstimaConfig`` construction can validate
``remote:...`` specs and ``ESTIMA_ROUTE_BACKENDS`` without import cycles.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.engine.executor import Executor
from repro.engine.pool import parse_tcp_address
from repro.testing.syncpoints import sync_point

from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ENV_ROUTE_BACKENDS",
    "ENV_REMOTE_TIMEOUT",
    "ENV_REMOTE_RETRIES",
    "DEFAULT_REMOTE_TIMEOUT",
    "DEFAULT_REMOTE_RETRIES",
    "RemoteError",
    "RemoteUnavailableError",
    "RemoteRequestError",
    "RemoteClient",
    "BackendPool",
    "RemoteOp",
    "register_remote_op",
    "remote_op_for",
    "RemoteExecutor",
    "remote_executor_from_spec",
    "parse_backends",
    "parse_remote_timeout",
    "parse_remote_retries",
    "route_backends_from_env",
    "remote_timeout_from_env",
    "remote_retries_from_env",
]

#: Environment variable with the default ``estima route --backends`` list.
ENV_ROUTE_BACKENDS = "ESTIMA_ROUTE_BACKENDS"
#: Environment variable with the per-request socket timeout (seconds).
ENV_REMOTE_TIMEOUT = "ESTIMA_REMOTE_TIMEOUT"
#: Environment variable with the per-host transport retry budget.
ENV_REMOTE_RETRIES = "ESTIMA_REMOTE_RETRIES"

#: Socket timeout applied to connect and reads of one remote request.
DEFAULT_REMOTE_TIMEOUT = 30.0
#: Additional attempts per host after the first fails at the transport level.
DEFAULT_REMOTE_RETRIES = 2

#: First backoff sleep; doubles per retry (0.05, 0.1, 0.2, ...).
_BACKOFF_BASE_S = 0.05


# --------------------------------------------------------------------------- #
# Spec / environment parsing (shared with EstimaConfig validation)
# --------------------------------------------------------------------------- #


def parse_backends(spec: object) -> tuple[str, ...]:
    """Parse a comma-separated ``host:port`` backend list strictly.

    Returns the normalised ``("host:port", ...)`` tuple.  Raises a clear
    ``ValueError`` for an empty list, a malformed address or a duplicate
    backend — consumed by ``EstimaConfig`` (``route_backends``,
    ``ESTIMA_ROUTE_BACKENDS``) and ``ESTIMA_EXECUTOR=remote:...``
    validation, so bad values fail at construction, not mid-request.
    """
    entries = [entry.strip() for entry in str(spec).split(",") if entry.strip()]
    if not entries:
        raise ValueError(
            f"invalid backend list {spec!r}: expected host:port[,host:port...]"
        )
    backends = []
    for entry in entries:
        try:
            host, port = parse_tcp_address(entry)
        except ValueError as exc:
            raise ValueError(f"invalid backend {entry!r}: {exc}") from None
        if port == 0:
            raise ValueError(f"invalid backend {entry!r}: port 0 is not routable")
        backends.append(f"{host}:{port}")
    if len(set(backends)) != len(backends):
        raise ValueError(f"duplicate backends in {spec!r}")
    return tuple(backends)


def parse_remote_timeout(value: object, *, source: str = "remote_timeout") -> float:
    """Parse a remote request timeout strictly: a positive number of seconds."""
    try:
        timeout = float(str(value).strip())
    except ValueError:
        raise ValueError(
            f"invalid {source}={value!r}: expected a positive number of seconds"
        ) from None
    if not timeout > 0:
        raise ValueError(f"invalid {source}={value!r}: timeout must be > 0")
    return timeout


def parse_remote_retries(value: object, *, source: str = "remote_retries") -> int:
    """Parse a per-host retry budget strictly: a non-negative integer."""
    try:
        retries = int(str(value).strip())
    except ValueError:
        raise ValueError(
            f"invalid {source}={value!r}: expected a non-negative integer retry count"
        ) from None
    if retries < 0:
        raise ValueError(f"invalid {source}={value!r}: retry count must be >= 0")
    return retries


def route_backends_from_env() -> str | None:
    """The backend list configured via ``ESTIMA_ROUTE_BACKENDS`` (validated)."""
    raw = os.environ.get(ENV_ROUTE_BACKENDS, "").strip()
    if not raw:
        return None
    try:
        parse_backends(raw)
    except ValueError as exc:
        raise ValueError(f"invalid {ENV_ROUTE_BACKENDS} environment variable: {exc}") from None
    return raw


def remote_timeout_from_env(default: float = DEFAULT_REMOTE_TIMEOUT) -> float:
    """The request timeout configured via ``ESTIMA_REMOTE_TIMEOUT`` (validated)."""
    raw = os.environ.get(ENV_REMOTE_TIMEOUT, "").strip()
    if not raw:
        return default
    return parse_remote_timeout(raw, source=ENV_REMOTE_TIMEOUT)


def remote_retries_from_env(default: int = DEFAULT_REMOTE_RETRIES) -> int:
    """The retry budget configured via ``ESTIMA_REMOTE_RETRIES`` (validated)."""
    raw = os.environ.get(ENV_REMOTE_RETRIES, "").strip()
    if not raw:
        return default
    return parse_remote_retries(raw, source=ENV_REMOTE_RETRIES)


# --------------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------------- #


class RemoteError(Exception):
    """Base of the remote-execution error taxonomy."""


class RemoteUnavailableError(RemoteError):
    """A transport-level failure (connect, timeout, broken stream, bad
    framing): the request may not have been processed, so it is safe and
    useful to retry — first on the same host, then on the next ring node."""


class RemoteRequestError(RemoteError):
    """The backend processed the request and reported an error document.

    Not retryable: every replica runs the same code on the same payload, so
    another host would answer the same.  ``error_kind`` carries the server's
    taxonomy (``"request"`` / ``"internal"`` / ``"disconnect"``).
    """

    def __init__(self, message: str, *, error_kind: str = "internal") -> None:
        super().__init__(message)
        self.error_kind = error_kind


# --------------------------------------------------------------------------- #
# One-host NDJSON client
# --------------------------------------------------------------------------- #


class RemoteClient:
    """Persistent-connection NDJSON client for one ``estima serve`` host.

    Connections are pooled in a free-list: each request checks one out for
    its whole exchange (a streamed campaign's response lines are contiguous
    per request only on a connection it does not share) and returns it on
    clean completion; a connection that saw a transport error is closed, not
    recycled.  Thread-safe — the :class:`RemoteExecutor` fans requests out
    over a thread pool.
    """

    def __init__(self, address: str, *, timeout: float = DEFAULT_REMOTE_TIMEOUT) -> None:
        self.address = address
        self.host, self.port = parse_tcp_address(address)
        self.timeout = timeout
        self._idle: list[tuple[socket.socket, Any]] = []  # (socket, reader)
        self._lock = threading.Lock()

    def _checkout(self) -> tuple[tuple[socket.socket, Any], bool]:
        """An idle connection (reused=True) or a fresh one (reused=False)."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        try:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise RemoteUnavailableError(f"{self.address}: connect failed: {exc}") from None
        sock.settimeout(self.timeout)
        # The buffered reader stays paired with its socket across requests:
        # recreating it per exchange could strand read-ahead bytes.
        return (sock, sock.makefile("rb")), False

    def _checkin(self, conn: tuple[socket.socket, Any]) -> None:
        with self._lock:
            self._idle.append(conn)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            self._discard(conn)

    def request(self, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
        """One request -> every response document it produces, in order.

        A predict returns one document; a campaign returns its row documents
        followed by the final (``"done"`` or error) document.  A reused
        connection the server closed while idle is retried once on a fresh
        connection before the failure counts — standard keep-alive hygiene,
        not a real retry (the request never produced a response byte).
        """
        conn, reused = self._checkout()
        try:
            return self._exchange(conn, payload)
        except RemoteUnavailableError as exc:
            self._discard(conn)
            if reused and getattr(exc, "before_any_response", False):
                conn, _ = self._checkout()  # fresh connection, one quiet retry
                try:
                    return self._exchange(conn, payload)
                except RemoteUnavailableError:
                    self._discard(conn)
                    raise
            raise

    def _exchange(
        self, conn: tuple[socket.socket, Any], payload: Mapping[str, Any]
    ) -> list[dict[str, Any]]:
        sock, reader = conn
        line = json.dumps(payload).encode() + b"\n"
        try:
            sock.sendall(line)
        except OSError as exc:
            error = RemoteUnavailableError(f"{self.address}: send failed: {exc}")
            error.before_any_response = True
            raise error from None
        sync_point("cluster.client.sent")
        documents: list[dict[str, Any]] = []
        while True:
            try:
                raw = reader.readline()
            except OSError as exc:
                raise RemoteUnavailableError(
                    f"{self.address}: read failed: {exc}"
                ) from None
            if not raw:
                where = "before any response" if not documents else "mid-stream"
                error = RemoteUnavailableError(
                    f"{self.address}: connection closed {where}"
                )
                error.before_any_response = not documents
                raise error
            try:
                document = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise RemoteUnavailableError(
                    f"{self.address}: bad response framing: {exc}"
                ) from None
            if not isinstance(document, dict):
                raise RemoteUnavailableError(
                    f"{self.address}: bad response document: {document!r}"
                )
            documents.append(document)
            sync_point("cluster.client.document")
            if not document.get("ok", False):
                break  # error document terminates the exchange
            if document.get("op") != "campaign" or document.get("done", False):
                break  # single-document op, or the campaign summary
        self._checkin(conn)
        return documents

    @staticmethod
    def _discard(conn: tuple[socket.socket, Any]) -> None:
        sock, reader = conn
        for closeable in (reader, sock):
            try:
                closeable.close()
            except OSError:
                pass


# --------------------------------------------------------------------------- #
# The ring-routed, health-tracking, retrying pool
# --------------------------------------------------------------------------- #


@dataclass
class _HostHealth:
    """Per-host transport health and routing counters."""

    up: bool = True
    requests: int = 0
    failures: int = 0
    retries: int = 0
    consecutive_failures: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "up": self.up,
            "requests": self.requests,
            "failures": self.failures,
            "retries": self.retries,
        }


class BackendPool:
    """Route requests to ``estima serve`` backends along the hash ring.

    One request is tried on its key's owner first: up to ``1 + retries``
    attempts with exponential backoff between them, then failover to the
    next ring node with a fresh attempt budget.  Hosts marked down (their
    last request exhausted its attempts) are deferred to the end of the
    failover order rather than skipped — a recovered host heals on its next
    try.  Raises :class:`RemoteUnavailableError` only when every backend is
    exhausted; :class:`RemoteRequestError` (the backend answered with an
    error document) propagates immediately, as every replica would answer
    the same.  Thread-safe; shared by :class:`RemoteExecutor` and the
    router.
    """

    def __init__(
        self,
        backends: "Iterable[str] | str",
        *,
        vnodes: int = DEFAULT_VNODES,
        timeout: float = DEFAULT_REMOTE_TIMEOUT,
        retries: int = DEFAULT_REMOTE_RETRIES,
        backoff_base_s: float = _BACKOFF_BASE_S,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if isinstance(backends, str):
            backends = parse_backends(backends)
        self.backends = tuple(backends)
        self.ring = HashRing(self.backends, vnodes=vnodes)
        self.timeout = parse_remote_timeout(timeout)
        self.retries = parse_remote_retries(retries)
        self.backoff_base_s = backoff_base_s
        self._sleep = sleep
        self._clients = {
            address: RemoteClient(address, timeout=self.timeout)
            for address in self.backends
        }
        self._health = {address: _HostHealth() for address in self.backends}
        self._lock = threading.Lock()
        self.routed_requests = 0
        self.failovers = 0

    # ------------------------------------------------------------------ #
    # Health bookkeeping
    # ------------------------------------------------------------------ #
    def _record(self, address: str, *, ok: bool, retry: bool = False) -> None:
        with self._lock:
            health = self._health[address]
            if retry:
                health.retries += 1
            else:
                health.requests += 1
                if ok:
                    health.up = True
                    health.consecutive_failures = 0
                else:
                    health.failures += 1
                    health.consecutive_failures += 1
                    health.up = False
        sync_point("cluster.pool.recorded")

    def mark_probe(self, address: str, *, up: bool) -> None:
        """Record an out-of-band health probe (the router's ``/healthz``)."""
        with self._lock:
            health = self._health[address]
            health.up = up
            if up:
                health.consecutive_failures = 0

    def host_up(self, address: str) -> bool:
        with self._lock:
            return self._health[address].up

    def stats(self) -> dict[str, Any]:
        """Numeric-only routing counters (flattened into ``/metrics``)."""
        with self._lock:
            return {
                "routed_requests": self.routed_requests,
                "failovers": self.failovers,
                "backends_total": len(self.backends),
                "backends_up": sum(1 for h in self._health.values() if h.up),
                "per_backend": {
                    address: self._health[address].as_dict() for address in self.backends
                },
            }

    # ------------------------------------------------------------------ #
    # Request routing
    # ------------------------------------------------------------------ #
    def request(self, key: str, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Send ``payload`` to the backend owning ``key`` (with failover).

        Returns every response document of the exchange in order.  The
        failover schedule is the ring order with down hosts deferred to the
        end; each host gets ``1 + retries`` attempts with exponential
        backoff between them.
        """
        with self._lock:
            self.routed_requests += 1
        ring_order = self.ring.nodes_for(key)
        with self._lock:
            schedule = [a for a in ring_order if self._health[a].up] + [
                a for a in ring_order if not self._health[a].up
            ]
        last_error: RemoteUnavailableError | None = None
        for rank, address in enumerate(schedule):
            if rank > 0:
                with self._lock:
                    self.failovers += 1
                sync_point("cluster.pool.failover")
            client = self._clients[address]
            for attempt in range(1 + self.retries):
                if attempt > 0:
                    self._record(address, ok=False, retry=True)
                    self._sleep(self.backoff_base_s * (2 ** (attempt - 1)))
                sync_point("cluster.pool.attempt")
                try:
                    documents = client.request(payload)
                except RemoteUnavailableError as exc:
                    last_error = exc
                    continue
                self._record(address, ok=True)
                return documents
            self._record(address, ok=False)
        raise RemoteUnavailableError(
            f"all {len(schedule)} backend(s) exhausted for key {key[:16]}...: {last_error}"
        )

    def close(self) -> None:
        for client in self._clients.values():
            client.close()


# --------------------------------------------------------------------------- #
# Remote-op registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RemoteOp:
    """How one task function travels over the serve protocol.

    ``build_request(item)`` returns the NDJSON request document for one task
    payload — or ``None`` when this particular task cannot be expressed on
    the wire (it then runs locally, preserving bit-identity).
    ``decode_response(documents)`` rebuilds the function's return value from
    the exchange's response documents, raising :class:`RemoteRequestError`
    on error documents.  ``shard_key(item)`` is the content digest routing
    the task (same inputs -> same backend -> hot shard caches).
    """

    build_request: Callable[[Any], "Mapping[str, Any] | None"]
    decode_response: Callable[[list[dict[str, Any]]], Any]
    shard_key: Callable[[Any], str]


_REMOTE_OPS: dict[Callable[..., Any], RemoteOp] = {}


def register_remote_op(
    fn: Callable[..., Any],
    *,
    build_request: Callable[[Any], "Mapping[str, Any] | None"],
    decode_response: Callable[[list[dict[str, Any]]], Any],
    shard_key: Callable[[Any], str],
) -> None:
    """Declare a module-level task function offloadable to remote backends."""
    _REMOTE_OPS[fn] = RemoteOp(
        build_request=build_request, decode_response=decode_response, shard_key=shard_key
    )


def remote_op_for(fn: Callable[..., Any]) -> RemoteOp | None:
    """The registered :class:`RemoteOp` of ``fn``, or ``None``."""
    return _REMOTE_OPS.get(fn)


# --------------------------------------------------------------------------- #
# The Executor backend
# --------------------------------------------------------------------------- #


class RemoteExecutor(Executor):
    """Map registered tasks over downstream ``estima serve`` hosts.

    Selected via ``ESTIMA_EXECUTOR=remote:<host:port[,host:port...]>`` (or
    the equivalent config/CLI spec).  Tasks whose function carries a
    :class:`RemoteOp` registration are sharded by content digest across the
    ring and executed by the backends; everything else — unregistered
    functions, tasks the request builder declines, and tasks whose backends
    are all exhausted — runs locally in-process, so results never depend on
    cluster health (pinned bit-identical to :class:`SerialExecutor`).

    ``requires_pickling`` is ``True``: like the process backend, the runner
    layer must hand this executor module-level functions and plain-data
    tasks, which is exactly the shape the registry can translate.
    """

    name = "remote"
    requires_pickling = True

    def __init__(
        self,
        backends: "Iterable[str] | str",
        *,
        vnodes: int = DEFAULT_VNODES,
        timeout: "float | None" = None,
        retries: "int | None" = None,
    ) -> None:
        super().__init__()
        self.pool = BackendPool(
            backends,
            vnodes=vnodes,
            timeout=timeout if timeout is not None else remote_timeout_from_env(),
            retries=retries if retries is not None else remote_retries_from_env(),
        )
        self.remote_tasks = 0
        self.local_tasks = 0
        self.fell_back = False
        self._dispatch_pool: ThreadPoolExecutor | None = None
        self._dispatch_lock = threading.Lock()

    def _dispatcher(self) -> ThreadPoolExecutor:
        with self._dispatch_lock:
            if self._dispatch_pool is None:
                self._dispatch_pool = ThreadPoolExecutor(
                    max_workers=min(16, 2 * len(self.pool.backends)),
                    thread_name_prefix="estima-remote",
                )
            return self._dispatch_pool

    def _run_one(self, fn: Callable[[Any], Any], op: "RemoteOp | None", item: Any) -> Any:
        request = op.build_request(item) if op is not None else None
        if request is None:
            self.local_tasks += 1
            return fn(item)
        assert op is not None
        try:
            documents = self.pool.request(op.shard_key(item), request)
            result = op.decode_response(documents)
        except RemoteError as exc:
            # Cluster trouble must never change results: recompute locally.
            self.fell_back = True
            self.local_tasks += 1
            warnings.warn(
                f"RemoteExecutor falling back to local execution ({exc})",
                RuntimeWarning,
                stacklevel=3,
            )
            return fn(item)
        self.remote_tasks += 1
        return result

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        tasks = list(items)
        self._count(len(tasks))
        op = remote_op_for(fn)
        if op is None or len(tasks) <= 1:
            return [self._run_one(fn, op, item) for item in tasks]
        # Dispatcher map preserves input order even when backends finish out
        # of order, which keeps campaign rows deterministic.
        return list(
            self._dispatcher().map(lambda item: self._run_one(fn, op, item), tasks)
        )

    def imap(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> Iterator[Any]:
        tasks = list(items)
        self._count(len(tasks))
        op = remote_op_for(fn)
        if op is None or len(tasks) <= 1:
            for item in tasks:
                yield self._run_one(fn, op, item)
            return
        yield from self._dispatcher().map(
            lambda item: self._run_one(fn, op, item), tasks
        )

    def stats(self) -> dict[str, object]:
        stats = super().stats()
        stats["remote_tasks"] = self.remote_tasks
        stats["local_tasks"] = self.local_tasks
        stats["fell_back"] = self.fell_back
        stats["cluster"] = self.pool.stats()
        return stats

    def close(self) -> None:
        with self._dispatch_lock:
            if self._dispatch_pool is not None:
                self._dispatch_pool.shutdown(wait=True)
                self._dispatch_pool = None
        self.pool.close()


def remote_executor_from_spec(spec: str) -> RemoteExecutor:
    """Build a :class:`RemoteExecutor` from a ``remote:<hosts>`` spec string."""
    text = str(spec).strip()
    head, sep, suffix = text.partition(":")
    if head.strip().lower() != "remote" or not sep:
        raise ValueError(f"not a remote executor spec: {spec!r}")
    return RemoteExecutor(parse_backends(suffix))
