"""Consistent-hash ring with virtual nodes over the engine's content digests.

The cache tiers, the router and the cache archive all address work by the
same blake2b hex digests (:func:`repro.engine.cache.digest`).  This ring
maps any such key to one backend node — and, for failover, to every backend
in a deterministic order — so that:

* the same key always lands on the same node (a shard's disk tier stays hot
  for its slice of the key space);
* adding or removing a node moves only the keys adjacent to its virtual
  nodes, not the whole key space (``vnodes`` virtual points per node smooth
  the distribution);
* placement is a pure function of ``(nodes, vnodes, key)`` — no state, no
  randomness — so tests pin exact placements and two processes (a router
  and an ``estima cache import --ring-node`` run on a backend) agree on the
  partition without coordinating.

Positions live in a 64-bit space: each virtual node sits at
``int(digest("ring", node, replica)[:16], 16)`` and a key hashes to
``int(digest("ring-key", key)[:16], 16)``; :meth:`HashRing.node_for` walks
clockwise to the next virtual node (wrapping at the top).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator

from repro.engine.cache import digest

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per backend (the usual smoothing default; configurable).
DEFAULT_VNODES = 64


class HashRing:
    """Deterministic consistent-hash placement of keys onto named nodes."""

    def __init__(self, nodes: Iterable[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        node_list = [str(node) for node in nodes]
        if not node_list:
            raise ValueError("a hash ring needs at least one node")
        if len(set(node_list)) != len(node_list):
            raise ValueError(f"duplicate ring nodes: {node_list!r}")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = tuple(node_list)
        self.vnodes = int(vnodes)
        points = []
        for node in self.nodes:
            for replica in range(self.vnodes):
                points.append((self._position("ring", node, replica), node))
        # Position collisions across nodes are astronomically unlikely in a
        # 64-bit space; the node name tie-break keeps even that deterministic.
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    @staticmethod
    def _position(*parts: object) -> int:
        return int(digest(*parts)[:16], 16)

    def key_position(self, key: str) -> int:
        """The ring position of a key (exposed for tests and diagnostics)."""
        return self._position("ring-key", key)

    def node_for(self, key: str) -> str:
        """The node owning ``key``: the next virtual node clockwise."""
        index = bisect_right(self._positions, self.key_position(key))
        if index == len(self._points):
            index = 0  # wrap past the highest virtual node
        return self._points[index][1]

    def nodes_for(self, key: str) -> tuple[str, ...]:
        """Every node in failover order for ``key``.

        The owner first, then each further node in the order its first
        virtual node appears clockwise — the deterministic schedule the
        :class:`~repro.engine.cluster.remote.BackendPool` walks when the
        owner is down.  Always length ``len(self.nodes)``, no duplicates.
        """
        if len(self.nodes) == 1:
            return self.nodes
        start = bisect_right(self._positions, self.key_position(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(ordered) == len(self.nodes):
                    break
        return tuple(ordered)

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"HashRing(nodes={self.nodes!r}, vnodes={self.vnodes})"
