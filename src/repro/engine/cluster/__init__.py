"""Cluster layer: shard ESTIMA serving across several ``estima serve`` hosts.

The serving stack below this package saturates a single machine (the
pre-fork :class:`~repro.engine.pool.WorkerPool` is the ceiling).  The
pipeline is embarrassingly shardable by its content-addressed digests, so
this package turns N hosts into ~N× capacity without touching the pinned
math:

* :mod:`repro.engine.cluster.ring` — a consistent-hash ring with virtual
  nodes, keyed on the same blake2b digests the cache tiers use.  Placement
  is deterministic and pinned by tests; adding or removing a backend moves
  only the keys adjacent to its virtual nodes.
* :mod:`repro.engine.cluster.remote` — :class:`RemoteExecutor`, an
  :class:`~repro.engine.executor.Executor` backend that ships registered
  campaign tasks to downstream ``estima serve`` NDJSON hosts
  (``ESTIMA_EXECUTOR=remote:<host:port,...>``), plus the
  :class:`BackendPool` client machinery (persistent connections, bounded
  retries with exponential backoff, per-host health, ring failover) the
  router shares.
* :mod:`repro.engine.cluster.router` — ``estima route``: an HTTP front-end
  speaking the gateway's exact protocol that shards predict/batch/campaign
  requests across backends by digest and merges streamed campaign rows back
  into request order.
* :mod:`repro.engine.cluster.archive` — ``estima cache export/import``:
  tar-based shipping of warm :class:`~repro.engine.store.DiskStore` entries
  between machines, schema-versioned, digest-verified and optionally
  ring-filtered to one shard's slice.

Import discipline: :mod:`ring` and :mod:`remote` depend only on the leaf
engine modules (``cache``, ``executor``, ``pool``, ``store``), so
``EstimaConfig`` validation may import them without cycles; :mod:`router`
depends on the server/gateway stack and is imported lazily here.
"""

from __future__ import annotations

from .archive import export_store, import_archive
from .remote import (
    BackendPool,
    RemoteExecutor,
    RemoteRequestError,
    RemoteUnavailableError,
    parse_backends,
)
from .ring import HashRing

__all__ = [
    "BackendPool",
    "HashRing",
    "RemoteExecutor",
    "RemoteRequestError",
    "RemoteUnavailableError",
    "Router",
    "export_store",
    "import_archive",
    "parse_backends",
    "serve_route",
]

_LAZY_ROUTER_EXPORTS = ("Router", "serve_route")


def __getattr__(name: str):
    # The router pulls in the server/gateway stack (and through it
    # repro.core); loading it lazily keeps `import repro.engine.cluster`
    # usable from config validation without cycles.
    if name in _LAZY_ROUTER_EXPORTS:
        from . import router

        return getattr(router, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
