"""Async serving front-end over the batched :class:`PredictionService`.

``estima serve`` turns the one-shot CLI pipeline into a long-lived prediction
server: an asyncio front-end accepts JSON requests over a local (unix) socket
or stdin/stdout, coalesces concurrent requests into micro-batches, and serves
them from one shared :class:`~repro.engine.service.PredictionService` — so
the service's content-addressed dedup (and, when enabled, the tiered
fit/extrapolation caches underneath it) applies *across clients*, not only
within one call.

Protocol (newline-delimited JSON, one object per line in both directions):

request::

    {"id": 7, "target_cores": 48, "baseline": false,
     "measurements": {... MeasurementSet.to_dict() ...},   # or:
     "workload": "intruder", "machine": "opteron48", "measure_cores": 12,
     "config": {"checkpoints": 2, "use_software_stalls": true, ...}}

response::

    {"id": 7, "ok": true, "result": {... same schema as `estima predict
     --json`: repro.runner.io.prediction_payload ...}}
    {"id": 7, "ok": false, "error": "..."}                 # on bad requests

Micro-batching: the batcher waits up to ``batch_window_ms`` after the first
queued request for more to arrive, up to ``max_batch`` per
:meth:`~repro.engine.service.PredictionService.predict_batch` call.  The
service runs ``share_max_target=False``, so every served prediction is
bit-identical to a standalone :class:`~repro.core.predictor.EstimaPredictor`
run at that exact target (pinned by tests); batching buys dedup of identical
requests and shared cache warm-up, never different numbers.

Backpressure: requests park in a bounded queue; when it is full, new
submissions (and therefore connection reads) block until the batcher drains —
a slow pipeline slows clients down instead of growing memory without bound.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.config import EstimaConfig
from repro.core.measurement import MeasurementSet

from .service import PredictionRequest, PredictionService

__all__ = ["ServerMetrics", "PredictionServer", "parse_request", "serve_stdio", "serve_unix"]

#: ``config`` keys a request may override (numerics-affecting knobs only;
#: engine knobs stay under server control).
_REQUEST_CONFIG_FIELDS = (
    "kernel_names",
    "checkpoints",
    "min_prefix",
    "use_software_stalls",
    "use_frontend_stalls",
    "frequency_ratio",
    "dataset_ratio",
    "max_extrapolation_factor",
)


class RequestError(ValueError):
    """A malformed prediction request (reported to the client, not fatal)."""


def parse_request(payload: Mapping[str, Any], base_config: EstimaConfig) -> PredictionRequest:
    """Validate one JSON request and build the service-layer request.

    Measurements come inline (``"measurements"``, the ``MeasurementSet``
    JSON schema that ``estima measure`` writes) or are simulated on demand
    from ``"workload"``/``"machine"`` (+ optional ``"measure_cores"``) — the
    same two sources ``estima predict`` accepts.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("request must be a JSON object")
    try:
        target_cores = int(payload["target_cores"])
    except KeyError:
        raise RequestError("request needs 'target_cores'") from None
    except (TypeError, ValueError):
        raise RequestError(f"invalid 'target_cores': {payload.get('target_cores')!r}") from None

    config = base_config
    overrides = payload.get("config") or {}
    if overrides:
        if not isinstance(overrides, Mapping):
            raise RequestError("'config' must be a JSON object")
        unknown = set(overrides) - set(_REQUEST_CONFIG_FIELDS)
        if unknown:
            raise RequestError(f"unsupported config overrides: {sorted(unknown)}")
        changes = dict(overrides)
        if "kernel_names" in changes:
            changes["kernel_names"] = tuple(changes["kernel_names"])
        try:
            config = base_config.with_(**changes)
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"invalid config overrides: {exc}") from None

    if "measurements" in payload:
        try:
            measurements = MeasurementSet.from_dict(payload["measurements"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"invalid 'measurements': {exc}") from None
    elif payload.get("workload") and payload.get("machine"):
        measurements = _simulate(
            str(payload["workload"]),
            str(payload["machine"]),
            payload.get("measure_cores"),
        )
    else:
        raise RequestError(
            "request needs either 'measurements' or both 'workload' and 'machine'"
        )

    measure_cores = payload.get("measure_cores")
    if measure_cores is not None:
        try:
            measurements = measurements.restrict_to(int(measure_cores))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid 'measure_cores': {exc}") from None

    try:
        return PredictionRequest(
            measurements=measurements,
            target_cores=target_cores,
            baseline=bool(payload.get("baseline", False)),
            config=config,
        )
    except ValueError as exc:
        raise RequestError(str(exc)) from None


def _simulate(workload: str, machine: str, measure_cores: Any) -> MeasurementSet:
    # Simulation pulls in the workload registry and machine models; importing
    # lazily keeps `repro.engine` free of an eager engine -> simulation edge.
    from repro.machine.machines import get_machine
    from repro.simulation import MachineSimulator
    from repro.workloads.registry import get_workload

    try:
        spec = get_machine(machine)
        target = get_workload(workload)
    except KeyError as exc:
        raise RequestError(str(exc)) from None
    cores = int(measure_cores) if measure_cores is not None else spec.total_threads
    return MachineSimulator(spec).sweep(
        target, core_counts=[c for c in spec.core_counts() if c <= cores]
    )


def result_payload(prediction: Any) -> dict:
    """The response document for one prediction (shared CLI/server schema)."""
    from repro.core.result import ScalabilityPrediction
    from repro.runner.io import baseline_payload, prediction_payload

    if isinstance(prediction, ScalabilityPrediction):
        return prediction_payload(prediction)
    return baseline_payload(prediction)


@dataclass
class ServerMetrics:
    """Throughput/latency/batching counters of one server instance."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    started_at: float = field(default_factory=time.perf_counter)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_latency(self, seconds: float) -> None:
        self.responses += 1
        self.total_latency_s += seconds
        self.max_latency_s = max(self.max_latency_s, seconds)

    def as_dict(self) -> dict[str, object]:
        elapsed = max(time.perf_counter() - self.started_at, 1e-9)
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "mean_batch_size": (self.batched_requests / self.batches) if self.batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "throughput_rps": self.responses / elapsed,
            "mean_latency_ms": (
                1000.0 * self.total_latency_s / self.responses if self.responses else 0.0
            ),
            "max_latency_ms": 1000.0 * self.max_latency_s,
        }


@dataclass
class _Pending:
    """One parsed request waiting for (or being served by) the batcher."""

    request: PredictionRequest
    future: "asyncio.Future[Any]"
    enqueued_at: float


class PredictionServer:
    """Micro-batching asyncio front-end over one :class:`PredictionService`.

    Parameters mirror the ``serve_*`` knobs of :class:`EstimaConfig` (the
    config's values are the defaults).  The pipeline itself runs in a worker
    thread (`run_in_executor`), so the event loop keeps accepting and
    coalescing requests while a batch computes.
    """

    def __init__(
        self,
        config: EstimaConfig | None = None,
        *,
        service: PredictionService | None = None,
        max_batch: int | None = None,
        batch_window_ms: float | None = None,
        queue_limit: int | None = None,
    ) -> None:
        self.config = config or EstimaConfig()
        # share_max_target=False: served numbers must be bit-identical to a
        # standalone per-request EstimaPredictor run (the serving contract).
        self.service = service or PredictionService(self.config, share_max_target=False)
        self.max_batch = max_batch if max_batch is not None else self.config.serve_max_batch
        window = (
            batch_window_ms if batch_window_ms is not None else self.config.serve_batch_window_ms
        )
        self.batch_window_s = window / 1000.0
        self.queue_limit = queue_limit if queue_limit is not None else self.config.serve_queue_limit
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_ms must be >= 0")
        self.metrics = ServerMetrics()
        self._queue: "asyncio.Queue[_Pending] | None" = None
        self._batcher: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the batcher task (idempotent; bound to the running loop)."""
        if self._batcher is None:
            self._queue = asyncio.Queue(maxsize=self.queue_limit)
            self.metrics.started_at = time.perf_counter()
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    async def stop(self) -> None:
        """Cancel the batcher; queued requests get a server-shutdown error."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._queue is not None:
            while not self._queue.empty():
                pending = self._queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_exception(RuntimeError("server shutting down"))
            self._queue = None

    def stats(self) -> dict[str, object]:
        """Throughput/latency counters plus the service's per-tier cache stats."""
        return {
            "server": self.metrics.as_dict(),
            "batching": {
                "max_batch": self.max_batch,
                "batch_window_ms": self.batch_window_s * 1000.0,
                "queue_limit": self.queue_limit,
            },
            "caches": self.service.cache_stats(),
        }

    # ------------------------------------------------------------------ #
    # Request paths
    # ------------------------------------------------------------------ #
    async def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one JSON request object; returns the JSON response object."""
        await self.start()
        assert self._queue is not None
        request_id = payload.get("id") if isinstance(payload, Mapping) else None
        self.metrics.requests += 1
        try:
            # Parsing can simulate a measurement sweep (workload/machine
            # requests), which is CPU-heavy — keep it off the event loop so
            # other clients' requests keep coalescing meanwhile.
            request = await asyncio.get_running_loop().run_in_executor(
                None, parse_request, payload, self.config
            )
        except RequestError as exc:
            self.metrics.errors += 1
            return {"id": request_id, "ok": False, "error": str(exc)}
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=time.perf_counter(),
        )
        await self._queue.put(pending)  # blocks when full: backpressure
        try:
            prediction = await pending.future
        except Exception as exc:  # pipeline errors are per-batch, not fatal
            self.metrics.errors += 1
            return {"id": request_id, "ok": False, "error": str(exc)}
        self.metrics.record_latency(time.perf_counter() - pending.enqueued_at)
        return {"id": request_id, "ok": True, "result": result_payload(prediction)}

    async def handle_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one NDJSON client connection until EOF.

        Lines are dispatched concurrently, so one connection still benefits
        from micro-batching; responses carry the request ``id`` for
        correlation (they may arrive out of order).
        """
        await self.start()
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()
        # Cap the per-connection in-flight work: without it a fast client
        # could have the read loop spawn a task (holding its parsed payload)
        # for every line long before the batcher drains any of them, and the
        # bounded queue's backpressure would never reach the client.
        in_flight = asyncio.Semaphore(self.queue_limit)

        async def respond(line: bytes) -> None:
            try:
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    self.metrics.requests += 1
                    self.metrics.errors += 1
                    response: dict[str, Any] = {
                        "id": None, "ok": False, "error": f"bad JSON: {exc}"
                    }
                else:
                    response = await self.submit(payload)
                async with write_lock:
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
            finally:
                in_flight.release()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await in_flight.acquire()  # stops reading when saturated
                task = asyncio.get_running_loop().create_task(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError):
                pass

    # ------------------------------------------------------------------ #
    # Micro-batcher
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        batch: list[_Pending] = []
        try:
            while True:
                batch = [await self._queue.get()]
                deadline = loop.time() + self.batch_window_s
                # Coalesce: wait out the latency window (or until the batch is
                # full) so concurrent clients land in one predict_batch call
                # and dedup applies across them.
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                    except asyncio.TimeoutError:
                        break
                self.metrics.record_batch(len(batch))
                requests = [pending.request for pending in batch]
                try:
                    predictions = await loop.run_in_executor(
                        None, self.service.predict_batch, requests
                    )
                except Exception as exc:
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(
                                RuntimeError(f"prediction failed: {exc}")
                            )
                    continue
                for pending, prediction in zip(batch, predictions):
                    if not pending.future.done():
                        pending.future.set_result(prediction)
                batch = []
        except asyncio.CancelledError:
            # stop() drains the queue, but the batch popped here would
            # otherwise be abandoned with its submitters awaiting forever.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(RuntimeError("server shutting down"))
            raise


# --------------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------------- #


async def serve_unix(server: PredictionServer, socket_path: str) -> None:
    """Serve NDJSON connections on a unix domain socket until cancelled.

    A stale socket file from a previous (killed) server is removed before
    binding — unix sockets are not cleaned up on process death — and the
    path is unlinked again on the way out so restarts always succeed.
    """
    await server.start()
    path = Path(socket_path)
    if path.is_socket():
        path.unlink()
    unix_server = await asyncio.start_unix_server(server.handle_stream, path=socket_path)
    try:
        async with unix_server:
            await unix_server.serve_forever()
    finally:
        try:
            path.unlink()
        except OSError:
            pass


async def serve_stdio(server: PredictionServer) -> None:
    """Serve NDJSON requests on stdin/stdout until EOF."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, protocol, None, loop)
    await server.handle_stream(reader, writer)
