"""Async serving front-end over the batched :class:`PredictionService`.

``estima serve`` turns the one-shot CLI pipeline into a long-lived prediction
server: an asyncio front-end accepts JSON requests over a local (unix) socket
or stdin/stdout, coalesces concurrent requests into micro-batches, and serves
them from one shared :class:`~repro.engine.service.PredictionService` — so
the service's content-addressed dedup (and, when enabled, the tiered
fit/extrapolation caches underneath it) applies *across clients*, not only
within one call.

Protocol (newline-delimited JSON, one object per line in both directions).
A request's ``"op"`` selects the operation; it defaults to ``"predict"``:

predict request::

    {"id": 7, "target_cores": 48, "baseline": false,
     "measurements": {... MeasurementSet.to_dict() ...},   # or:
     "workload": "intruder", "machine": "opteron48", "measure_cores": 12,
     "config": {"checkpoints": 2, "use_software_stalls": true, ...}}

predict response::

    {"id": 7, "ok": true, "result": {... same schema as `estima predict
     --json`: repro.runner.io.prediction_payload ...}}
    {"id": 7, "ok": false, "error": "..."}                 # on bad requests

campaign request (a Table-4 style run, streamed row by row)::

    {"id": 8, "op": "campaign", "machine": "xeon20", "measure_cores": 10,
     "targets": {"half": 16, "full": 20},                  # label -> cores
     "workloads": ["genome", "blackscholes"],              # default: Table 4
     "core_counts": [1, 2, 4, 8, 16, 20],                  # optional sweep
     "executor": "threads:4",                              # optional backend
     "config": {...}}                                      # numeric knobs

campaign responses — one line per finished (workload x targets) row, in
campaign order, then a final summary line::

    {"id": 8, "ok": true, "op": "campaign", "row": {... one element of
     `estima campaign --json`'s "rows", bit-identical to batch output ...}}
    {"id": 8, "ok": true, "op": "campaign", "done": true, "rows": 2,
     "summary": {... repro.runner.io.campaign_result_payload ...}}

Responses are written in request order per connection (requests are still
*dispatched* concurrently, so they coalesce in the micro-batcher): clients
never observe dropped, duplicated or reordered responses, and a streamed
campaign's rows appear contiguously at that request's position.

Micro-batching: the batcher waits up to ``batch_window_ms`` after the first
queued request for more to arrive, up to ``max_batch`` per
:meth:`~repro.engine.service.PredictionService.predict_batch` call.  The
service runs ``share_max_target=False``, so every served prediction is
bit-identical to a standalone :class:`~repro.core.predictor.EstimaPredictor`
run at that exact target (pinned by tests); batching buys dedup of identical
requests and shared cache warm-up, never different numbers.

Backpressure: requests park in a bounded queue; when it is full, new
submissions (and therefore connection reads) block until the batcher drains —
a slow pipeline slows clients down instead of growing memory without bound.

Transports: stdio (:func:`serve_stdio`), unix socket (:func:`serve_unix`) and
TCP (:func:`serve_tcp`, ``estima serve --tcp HOST:PORT``) all speak this
protocol through :meth:`PredictionServer.handle_stream`; the
:class:`~repro.engine.pool.WorkerPool` supervisor puts N forked copies of
this server behind one listening socket, and the HTTP gateway
(:mod:`repro.engine.gateway`, ``estima serve --http``) maps HTTP routes onto
the same submit paths.

Concurrency / crash-safety invariants of this module:

* **Ordered-response writer.** Each connection's responses are serialised by
  :class:`_OrderedResponseWriter`: request ``seq`` owns write slot ``seq``
  and hands the stream to ``seq + 1`` only when finished, so dispatch stays
  concurrent (micro-batching is preserved) while clients observe strict
  FIFO responses — never a drop, duplicate or reorder, and a streamed
  campaign's rows stay contiguous at that request's position.
* **Bounded intake.** The request queue and the per-connection in-flight
  semaphore are both bounded by ``serve_queue_limit``; when the pipeline
  falls behind, reads stop and clients block instead of the server growing
  without bound.
* **Failure containment.** A malformed request, a failed batch and a failed
  campaign are each reported on their own request id; the batcher task,
  other requests and other connections keep running.  A client that
  disconnects mid-campaign aborts that campaign at the next row boundary.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Awaitable, Callable, Mapping

from repro.core.config import EstimaConfig
from repro.core.measurement import MeasurementSet
from repro.testing.syncpoints import sync_point_async

from .service import PredictionRequest, PredictionService

__all__ = [
    "SUPPORTED_OPS",
    "ServerMetrics",
    "PredictionServer",
    "parse_request",
    "parse_campaign_request",
    "serve_stdio",
    "serve_unix",
    "serve_tcp",
]

#: Every ``"op"`` value the NDJSON protocol accepts.  Dispatch in
#: :meth:`PredictionServer.handle_stream` and the doc-sync test both walk
#: this tuple, so an undocumented op fails CI.
SUPPORTED_OPS = ("predict", "campaign")

#: ``config`` keys a request may override (numerics-affecting knobs only;
#: engine knobs stay under server control).
_REQUEST_CONFIG_FIELDS = (
    "kernel_names",
    "checkpoints",
    "min_prefix",
    "use_software_stalls",
    "use_frontend_stalls",
    "frequency_ratio",
    "dataset_ratio",
    "max_extrapolation_factor",
)


class RequestError(ValueError):
    """A malformed prediction request (reported to the client, not fatal)."""


class _CampaignAbandoned(Exception):
    """Raised inside a campaign thread to stop a run whose client is gone."""


def _config_with_overrides(payload: Mapping[str, Any], base_config: EstimaConfig) -> EstimaConfig:
    """Apply a request's ``config`` overrides (numeric knobs only) strictly."""
    overrides = payload.get("config") or {}
    if not overrides:
        return base_config
    if not isinstance(overrides, Mapping):
        raise RequestError("'config' must be a JSON object")
    unknown = set(overrides) - set(_REQUEST_CONFIG_FIELDS)
    if unknown:
        raise RequestError(f"unsupported config overrides: {sorted(unknown)}")
    changes = dict(overrides)
    if "kernel_names" in changes:
        changes["kernel_names"] = tuple(changes["kernel_names"])
    try:
        return base_config.with_(**changes)
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestError(f"invalid config overrides: {exc}") from None


def parse_request(payload: Mapping[str, Any], base_config: EstimaConfig) -> PredictionRequest:
    """Validate one JSON request and build the service-layer request.

    Measurements come inline (``"measurements"``, the ``MeasurementSet``
    JSON schema that ``estima measure`` writes) or are simulated on demand
    from ``"workload"``/``"machine"`` (+ optional ``"measure_cores"``) — the
    same two sources ``estima predict`` accepts.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("request must be a JSON object")
    try:
        target_cores = int(payload["target_cores"])
    except KeyError:
        raise RequestError("request needs 'target_cores'") from None
    except (TypeError, ValueError):
        raise RequestError(f"invalid 'target_cores': {payload.get('target_cores')!r}") from None

    config = _config_with_overrides(payload, base_config)

    if "measurements" in payload:
        try:
            measurements = MeasurementSet.from_dict(payload["measurements"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"invalid 'measurements': {exc}") from None
    elif payload.get("workload") and payload.get("machine"):
        measurements = _simulate(
            str(payload["workload"]),
            str(payload["machine"]),
            payload.get("measure_cores"),
        )
    else:
        raise RequestError(
            "request needs either 'measurements' or both 'workload' and 'machine'"
        )

    measure_cores = payload.get("measure_cores")
    if measure_cores is not None:
        try:
            measurements = measurements.restrict_to(int(measure_cores))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid 'measure_cores': {exc}") from None

    try:
        return PredictionRequest(
            measurements=measurements,
            target_cores=target_cores,
            baseline=bool(payload.get("baseline", False)),
            config=config,
        )
    except ValueError as exc:
        raise RequestError(str(exc)) from None


def _simulate(workload: str, machine: str, measure_cores: Any) -> MeasurementSet:
    # Simulation pulls in the workload registry and machine models; importing
    # lazily keeps `repro.engine` free of an eager engine -> simulation edge.
    from repro.machine.machines import get_machine
    from repro.simulation import MachineSimulator
    from repro.workloads.registry import get_workload

    try:
        spec = get_machine(machine)
        target = get_workload(workload)
    except KeyError as exc:
        raise RequestError(str(exc)) from None
    cores = int(measure_cores) if measure_cores is not None else spec.total_threads
    return MachineSimulator(spec).sweep(
        target, core_counts=[c for c in spec.core_counts() if c <= cores]
    )


def parse_campaign_request(
    payload: Mapping[str, Any], base_config: EstimaConfig
) -> tuple[Any, tuple[str, ...]]:
    """Validate one ``{"op": "campaign"}`` request.

    Returns ``(campaign, workload_names)`` where ``campaign`` is a ready
    :class:`~repro.runner.campaign.ErrorCampaign` — the exact object the CLI
    builds for ``estima campaign``, so streamed rows are the batch rows.
    Unlike predict requests, a campaign may name its ``executor`` backend:
    backends change wall time, never numbers (pinned by tests).
    """
    # Imported lazily like _simulate: keeps `import repro.engine` free of an
    # eager engine -> runner/workloads edge.
    from repro.machine.machines import get_machine
    from repro.runner.campaign import ErrorCampaign
    from repro.workloads.registry import TABLE4_WORKLOADS, WORKLOADS

    if not isinstance(payload, Mapping):
        raise RequestError("request must be a JSON object")
    machine_name = payload.get("machine")
    if not machine_name:
        raise RequestError("campaign request needs 'machine'")
    try:
        machine = get_machine(str(machine_name))
    except KeyError as exc:
        raise RequestError(str(exc)) from None
    try:
        measure_cores = int(payload["measure_cores"])
    except KeyError:
        raise RequestError("campaign request needs 'measure_cores'") from None
    except (TypeError, ValueError):
        raise RequestError(
            f"invalid 'measure_cores': {payload.get('measure_cores')!r}"
        ) from None
    targets_raw = payload.get("targets")
    if not isinstance(targets_raw, Mapping) or not targets_raw:
        raise RequestError(
            "campaign request needs 'targets': a non-empty object of label -> target cores"
        )
    try:
        targets = {str(label): int(cores) for label, cores in targets_raw.items()}
    except (TypeError, ValueError):
        raise RequestError(f"invalid 'targets': {targets_raw!r}") from None

    workloads_raw = payload.get("workloads")
    if workloads_raw is None:
        workloads = tuple(TABLE4_WORKLOADS)
    else:
        if isinstance(workloads_raw, str):
            workloads = tuple(w.strip() for w in workloads_raw.split(",") if w.strip())
        elif isinstance(workloads_raw, (list, tuple)):
            workloads = tuple(str(w) for w in workloads_raw)
        else:
            raise RequestError("'workloads' must be a list of names or a comma-separated string")
        if not workloads:
            raise RequestError("campaign request needs at least one workload")
        unknown = [w for w in workloads if w not in WORKLOADS]
        if unknown:
            raise RequestError(f"unknown workloads: {', '.join(unknown)}")

    core_counts = payload.get("core_counts")
    if core_counts is not None:
        try:
            core_counts = [int(c) for c in core_counts]
        except (TypeError, ValueError):
            raise RequestError(f"invalid 'core_counts': {payload.get('core_counts')!r}") from None

    executor = payload.get("executor")
    if executor is not None:
        from .executor import parse_executor_spec

        executor = str(executor)
        try:
            parse_executor_spec(executor)
        except ValueError as exc:
            raise RequestError(str(exc)) from None

    config = _config_with_overrides(payload, base_config)
    campaign = ErrorCampaign(
        machine=machine,
        measurement_cores=measure_cores,
        targets=targets,
        config=config,
        core_counts=core_counts,
        executor=executor,
    )
    return campaign, workloads


def result_payload(prediction: Any) -> dict:
    """The response document for one prediction (shared CLI/server schema)."""
    from repro.core.result import ScalabilityPrediction
    from repro.runner.io import baseline_payload, prediction_payload

    if isinstance(prediction, ScalabilityPrediction):
        return prediction_payload(prediction)
    return baseline_payload(prediction)


@dataclass
class ServerMetrics:
    """Throughput/latency/batching counters of one server instance."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    campaigns: int = 0
    campaign_rows: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    started_at: float = field(default_factory=time.perf_counter)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_latency(self, seconds: float) -> None:
        self.responses += 1
        self.total_latency_s += seconds
        self.max_latency_s = max(self.max_latency_s, seconds)

    def as_dict(self) -> dict[str, object]:
        elapsed = max(time.perf_counter() - self.started_at, 1e-9)
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "mean_batch_size": (self.batched_requests / self.batches) if self.batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "campaigns": self.campaigns,
            "campaign_rows": self.campaign_rows,
            "throughput_rps": self.responses / elapsed,
            "mean_latency_ms": (
                1000.0 * self.total_latency_s / self.responses if self.responses else 0.0
            ),
            "max_latency_ms": 1000.0 * self.max_latency_s,
        }


@dataclass
class _Pending:
    """One parsed request waiting for (or being served by) the batcher."""

    request: PredictionRequest
    future: "asyncio.Future[Any]"
    enqueued_at: float


class _OrderedResponseWriter:
    """Serialise one connection's response lines in request order.

    Each request owns one *slot* (its arrival sequence number).  Slot ``seq``
    may write any number of lines — a predict writes one, a streamed campaign
    writes a row line per result plus the summary — and :meth:`finish` hands
    the stream to slot ``seq + 1``.  Requests still *execute* concurrently;
    only the writes are ordered, so micro-batching across a connection's
    requests is preserved while clients see strict FIFO responses.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._next = 0
        self._cond = asyncio.Condition()

    async def write(self, seq: int, document: Mapping[str, Any]) -> None:
        await sync_point_async("server.writer.write")
        async with self._cond:
            await self._cond.wait_for(lambda: self._next == seq)
            self._writer.write(json.dumps(document).encode() + b"\n")
            await self._writer.drain()

    async def finish(self, seq: int) -> None:
        await sync_point_async("server.writer.finish")
        async with self._cond:
            await self._cond.wait_for(lambda: self._next == seq)
            self._next = seq + 1
            self._cond.notify_all()


class PredictionServer:
    """Micro-batching asyncio front-end over one :class:`PredictionService`.

    Parameters mirror the ``serve_*`` knobs of :class:`EstimaConfig` (the
    config's values are the defaults).  The pipeline itself runs in a worker
    thread (`run_in_executor`), so the event loop keeps accepting and
    coalescing requests while a batch computes.
    """

    def __init__(
        self,
        config: EstimaConfig | None = None,
        *,
        service: PredictionService | None = None,
        max_batch: int | None = None,
        batch_window_ms: float | None = None,
        queue_limit: int | None = None,
        idle_timeout: float | None = None,
    ) -> None:
        self.config = config or EstimaConfig()
        # share_max_target=False: served numbers must be bit-identical to a
        # standalone per-request EstimaPredictor run (the serving contract).
        self.service = service or PredictionService(self.config, share_max_target=False)
        self.max_batch = max_batch if max_batch is not None else self.config.serve_max_batch
        window = (
            batch_window_ms if batch_window_ms is not None else self.config.serve_batch_window_ms
        )
        self.batch_window_s = window / 1000.0
        self.queue_limit = queue_limit if queue_limit is not None else self.config.serve_queue_limit
        # Idle/read timeout: explicit kwarg, else the config field, else
        # ESTIMA_SERVE_IDLE_TIMEOUT.  Stored as None when disabled (0/unset)
        # so read loops can gate on a single attribute.
        from .pool import parse_idle_timeout, serve_idle_timeout_from_env

        if idle_timeout is None:
            idle_timeout = self.config.serve_idle_timeout
            if idle_timeout is None:
                idle_timeout = serve_idle_timeout_from_env()
        self.idle_timeout = (
            parse_idle_timeout(idle_timeout) if idle_timeout is not None else 0.0
        ) or None
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_ms must be >= 0")
        self.metrics = ServerMetrics()
        self._queue: "asyncio.Queue[_Pending] | None" = None
        self._batcher: "asyncio.Task[None] | None" = None
        self._campaign_pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the batcher task (idempotent; bound to the running loop)."""
        if self._batcher is None:
            self._queue = asyncio.Queue(maxsize=self.queue_limit)
            self.metrics.started_at = time.perf_counter()
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    async def stop(self) -> None:
        """Cancel the batcher; queued requests get a server-shutdown error."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._queue is not None:
            while not self._queue.empty():
                pending = self._queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_exception(RuntimeError("server shutting down"))
            self._queue = None
        if self._campaign_pool is not None:
            # Queued (not yet started) campaigns are dropped; running ones
            # finish in the background rather than blocking shutdown.
            self._campaign_pool.shutdown(wait=False, cancel_futures=True)
            self._campaign_pool = None

    def _campaign_executor(self) -> ThreadPoolExecutor:
        """The dedicated pool campaign requests run on (created lazily).

        Separate from the event loop's default executor on purpose: the
        micro-batcher and request parsing run there, and minutes-long
        campaigns sharing that pool would starve every predict request.
        Campaigns beyond the pool size queue behind each other instead.
        """
        if self._campaign_pool is None:
            self._campaign_pool = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="estima-campaign"
            )
        return self._campaign_pool

    def stats(self) -> dict[str, object]:
        """Throughput/latency counters plus the service's per-tier cache stats.

        Includes the engine profiler's per-stage fit timings (design/
        non-linear solves, screening, scoring — see
        :mod:`repro.engine.profiling`); every leaf is numeric, so the whole
        snapshot flattens into ``/metrics`` gauges unchanged.
        """
        from repro.engine.profiling import PROFILER

        return {
            "server": self.metrics.as_dict(),
            "batching": {
                "max_batch": self.max_batch,
                "batch_window_ms": self.batch_window_s * 1000.0,
                "queue_limit": self.queue_limit,
            },
            "caches": self.service.cache_stats(),
            "profile": PROFILER.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # Request paths
    # ------------------------------------------------------------------ #
    async def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one JSON request object; returns the JSON response object."""
        await self.start()
        assert self._queue is not None
        request_id = payload.get("id") if isinstance(payload, Mapping) else None
        self.metrics.requests += 1
        try:
            # Parsing can simulate a measurement sweep (workload/machine
            # requests), which is CPU-heavy — keep it off the event loop so
            # other clients' requests keep coalescing meanwhile.
            request = await asyncio.get_running_loop().run_in_executor(
                None, parse_request, payload, self.config
            )
        except RequestError as exc:
            self.metrics.errors += 1
            return {
                "id": request_id, "ok": False, "error": str(exc), "error_kind": "request",
            }
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=time.perf_counter(),
        )
        await sync_point_async("server.submit.enqueue")
        await self._queue.put(pending)  # blocks when full: backpressure
        try:
            prediction = await pending.future
        except Exception as exc:  # pipeline errors are per-batch, not fatal
            self.metrics.errors += 1
            # error_kind tells transports whose fault this was: "request"
            # errors are the client's (HTTP 400), "internal" the server's
            # (HTTP 500) — retry policies must see the difference.
            return {
                "id": request_id, "ok": False, "error": str(exc), "error_kind": "internal",
            }
        self.metrics.record_latency(time.perf_counter() - pending.enqueued_at)
        return {"id": request_id, "ok": True, "result": result_payload(prediction)}

    async def submit_campaign(
        self,
        payload: Mapping[str, Any],
        *,
        on_row: "Callable[[dict[str, Any]], Awaitable[None]] | None" = None,
    ) -> dict[str, Any]:
        """Serve one streamed ``campaign`` request.

        The campaign runs in the server's dedicated campaign thread pool
        (never the event loop's default executor, which the micro-batcher
        needs — long campaigns must not starve predict traffic); every
        finished row is pushed back to the event loop and awaited through
        ``on_row`` as a progress document (``{"id": ..., "ok": true, "op":
        "campaign", "row": ...}``) in campaign order.  Returns the final
        summary response.  Row payloads are built by
        :func:`repro.runner.io.campaign_row_payload` — the same helper
        ``estima campaign --json`` uses — so streamed rows are bit-identical
        to batch output (pinned by tests).  If the client disconnects
        mid-stream the campaign is abandoned at the next row boundary
        instead of burning CPU to completion.
        """
        await self.start()
        request_id = payload.get("id") if isinstance(payload, Mapping) else None
        self.metrics.requests += 1
        loop = asyncio.get_running_loop()
        try:
            campaign, workloads = await loop.run_in_executor(
                None, parse_campaign_request, payload, self.config
            )
        except RequestError as exc:
            self.metrics.errors += 1
            return {
                "id": request_id, "ok": False, "error": str(exc), "error_kind": "request",
            }
        self.metrics.campaigns += 1
        started = time.perf_counter()
        queue: "asyncio.Queue[tuple[str, Any]]" = asyncio.Queue()
        abandoned = threading.Event()

        def run_campaign() -> None:
            from repro.runner.io import campaign_row_payload

            def post_row(row: Any) -> None:
                if abandoned.is_set():
                    raise _CampaignAbandoned()
                loop.call_soon_threadsafe(
                    queue.put_nowait, ("row", campaign_row_payload(row))
                )

            try:
                result = campaign.run(workloads, on_row=post_row)
            except _CampaignAbandoned:
                loop.call_soon_threadsafe(queue.put_nowait, ("abandoned", None))
            except Exception as exc:  # reported per request, never fatal
                loop.call_soon_threadsafe(queue.put_nowait, ("error", exc))
            else:
                loop.call_soon_threadsafe(queue.put_nowait, ("done", result))

        worker = loop.run_in_executor(self._campaign_executor(), run_campaign)
        rows_emitted = 0
        try:
            while True:
                kind, value = await queue.get()
                if kind == "row":
                    rows_emitted += 1
                    self.metrics.campaign_rows += 1
                    if on_row is not None and not abandoned.is_set():
                        try:
                            await on_row(
                                {"id": request_id, "ok": True, "op": "campaign", "row": value}
                            )
                        except (ConnectionResetError, BrokenPipeError):
                            # Client is gone: stop the campaign at the next
                            # row boundary, then drain to its final message.
                            abandoned.set()
                elif kind == "abandoned":
                    self.metrics.errors += 1
                    return {
                        "id": request_id,
                        "ok": False,
                        "error": "campaign abandoned: client disconnected",
                        "error_kind": "disconnect",
                    }
                elif kind == "error":
                    self.metrics.errors += 1
                    return {
                        "id": request_id,
                        "ok": False,
                        "error": f"campaign failed: {value}",
                        "error_kind": "internal",
                    }
                else:  # done
                    result = value
                    break
        finally:
            await worker
        from repro.runner.io import campaign_result_payload

        summary = campaign_result_payload(result)
        summary["engine"] = result.engine_stats
        self.metrics.record_latency(time.perf_counter() - started)
        return {
            "id": request_id,
            "ok": True,
            "op": "campaign",
            "done": True,
            "rows": rows_emitted,
            "summary": summary,
        }

    async def handle_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one NDJSON client connection until EOF.

        Lines are dispatched concurrently, so one connection still benefits
        from micro-batching, but responses are *written* in request order:
        a client never observes dropped, duplicated or reordered responses,
        and a streamed campaign's row lines appear contiguously at that
        request's position (pinned by the concurrency stress test).
        """
        await self.start()
        tasks: set[asyncio.Task] = set()
        responses = _OrderedResponseWriter(writer)
        # Cap the per-connection in-flight work: without it a fast client
        # could have the read loop spawn a task (holding its parsed payload)
        # for every line long before the batcher drains any of them, and the
        # bounded queue's backpressure would never reach the client.
        in_flight = asyncio.Semaphore(self.queue_limit)

        async def respond(seq: int, line: bytes) -> None:
            try:
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    self.metrics.requests += 1
                    self.metrics.errors += 1
                    await responses.write(
                        seq,
                        {
                            "id": None, "ok": False,
                            "error": f"bad JSON: {exc}", "error_kind": "request",
                        },
                    )
                    return
                op = payload.get("op", "predict") if isinstance(payload, Mapping) else "predict"
                if op not in SUPPORTED_OPS:
                    self.metrics.requests += 1
                    self.metrics.errors += 1
                    await responses.write(
                        seq,
                        {
                            "id": payload.get("id"), "ok": False,
                            "error": f"unknown op: {op!r}", "error_kind": "request",
                        },
                    )
                elif op == "campaign":
                    final = await self.submit_campaign(
                        payload, on_row=lambda doc: responses.write(seq, doc)
                    )
                    await responses.write(seq, final)
                else:  # predict
                    await responses.write(seq, await self.submit(payload))
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away mid-response; reader sees EOF next
            finally:
                await responses.finish(seq)
                in_flight.release()

        try:
            seq = 0
            while True:
                if self.idle_timeout is not None:
                    try:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout
                        )
                    except asyncio.TimeoutError:
                        if tasks:
                            continue  # responses in flight: peer is waiting on us
                        break  # idle peer: free the connection slot
                else:
                    line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await in_flight.acquire()  # stops reading when saturated
                task = asyncio.get_running_loop().create_task(respond(seq, line))
                seq += 1
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError):
                pass

    # ------------------------------------------------------------------ #
    # Micro-batcher
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        batch: list[_Pending] = []
        try:
            while True:
                batch = [await self._queue.get()]
                await sync_point_async("server.batch.first")
                deadline = loop.time() + self.batch_window_s
                # Coalesce: wait out the latency window (or until the batch is
                # full) so concurrent clients land in one predict_batch call
                # and dedup applies across them.
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                    except asyncio.TimeoutError:
                        break
                await sync_point_async("server.batch.formed")
                self.metrics.record_batch(len(batch))
                requests = [pending.request for pending in batch]
                try:
                    predictions = await loop.run_in_executor(
                        None, self.service.predict_batch, requests
                    )
                except Exception as exc:
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(
                                RuntimeError(f"prediction failed: {exc}")
                            )
                    continue
                for pending, prediction in zip(batch, predictions):
                    if not pending.future.done():
                        pending.future.set_result(prediction)
                batch = []
        except asyncio.CancelledError:
            # stop() drains the queue, but the batch popped here would
            # otherwise be abandoned with its submitters awaiting forever.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(RuntimeError("server shutting down"))
            raise


# --------------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------------- #


async def serve_unix(server: PredictionServer, socket_path: str) -> None:
    """Serve NDJSON connections on a unix domain socket until cancelled.

    A stale socket file from a previous (killed) server is removed before
    binding — unix sockets are not cleaned up on process death — and the
    path is unlinked again on the way out so restarts always succeed.
    """
    await server.start()
    path = Path(socket_path)
    if path.is_socket():
        path.unlink()
    unix_server = await asyncio.start_unix_server(server.handle_stream, path=socket_path)
    try:
        async with unix_server:
            await unix_server.serve_forever()
    finally:
        try:
            path.unlink()
        except OSError:
            pass


async def serve_tcp(
    server: PredictionServer,
    host: str,
    port: int,
    *,
    on_listening: "Callable[[tuple[str, int]], None] | None" = None,
) -> None:
    """Serve NDJSON connections on a TCP listener until cancelled.

    ``port`` 0 binds an ephemeral port; ``on_listening`` receives the actual
    ``(host, port)`` once the socket is bound (the CLI announces it, tests
    connect to it).
    """
    await server.start()
    tcp_server = await asyncio.start_server(server.handle_stream, host=host, port=port)
    if on_listening is not None:
        bound = tcp_server.sockets[0].getsockname()
        on_listening((bound[0], bound[1]))
    async with tcp_server:
        await tcp_server.serve_forever()


async def serve_stdio(server: PredictionServer) -> None:  # pragma: no cover
    """Serve NDJSON requests on stdin/stdout until EOF.

    Exercised end-to-end by the CLI subprocess test; as subprocess-only code
    it never appears in in-process coverage data.
    """
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, protocol, None, loop)
    await server.handle_stream(reader, writer)
