"""HTTP/JSON gateway over the NDJSON prediction server.

``estima serve --http HOST:PORT`` puts a minimal, stdlib-only HTTP/1.1
front-end in front of the exact machinery the NDJSON protocol uses — the
micro-batching :class:`~repro.engine.server.PredictionServer`, its
:class:`~repro.engine.service.PredictionService` and the tiered fit caches —
so load balancers, browsers, ``curl`` and standard client libraries can reach
the predictor without speaking a custom protocol.

Routes (the full reference, with schemas and examples, lives in
``docs/serve-protocol.md``; the doc-sync test keeps it honest):

``POST /v1/predict``
    Body: one predict request object (the NDJSON ``predict`` op without the
    ``"op"`` key).  Response: the NDJSON response document.  200 when
    ``"ok"`` is true, 400 otherwise.
``POST /v1/predict_batch``
    Body: ``{"requests": [...]}`` (or a bare JSON array) of predict request
    objects.  Every element is submitted concurrently, so the batch
    coalesces in the micro-batcher exactly like concurrent NDJSON clients.
    Response: 200 with ``{"ok": <all ok>, "responses": [...]}`` in request
    order (per-element errors are reported inline, multi-status style).
``POST /v1/campaign``
    Body: one NDJSON ``campaign`` request object (the ``"op"`` key is
    implied by the route).  Response: ``200`` with ``Transfer-Encoding:
    chunked`` NDJSON — one chunk per completed Table-4-style row as it
    finishes, then the final summary document.  Row payloads are built by
    :func:`repro.runner.io.campaign_row_payload`, the same helper ``estima
    campaign --json`` uses, so streamed rows are bit-identical to batch
    output.  Requests that fail validation are rejected with 400 *before*
    the stream starts.
``GET /healthz``
    Liveness: 200 ``{"ok": true}`` once the server's batcher is running.
``GET /metrics``
    The server's throughput/latency/batching/cache counters in Prometheus
    text format.  Rendered from the *same* stats snapshot ``estima serve
    --stats`` prints (:meth:`HttpGateway.stats` -> :func:`flatten_stats`),
    so the two can never disagree.

Concurrency / crash-safety invariants of this module:

* **Sequential per connection.** Requests on one HTTP connection are read,
  dispatched and answered strictly one at a time (HTTP/1.1 keep-alive
  without pipelining) — response ordering needs no
  ``_OrderedResponseWriter`` here; concurrency comes from many connections,
  which still coalesce in the shared micro-batcher.
* **Validate before streaming.** ``/v1/campaign`` parses the request fully
  before the 200 header is written, so clients always get a real HTTP
  status for malformed requests; errors after streaming begins arrive as a
  final NDJSON error document inside the 200 body (the HTTP status is
  already on the wire).
* **Disconnect containment.** A client vanishing mid-stream aborts its
  campaign at the next row boundary (the write raises, the server's
  abandonment path stops the worker thread) and never takes the gateway
  down; malformed framing closes only that connection.
* **One stats source.** ``GET /metrics`` renders
  :meth:`HttpGateway.stats`; the CLI's ``--stats`` shutdown report prints
  the same dict.  ``/metrics`` counts itself before rendering, so the
  response body already includes the request that fetched it.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.config import EstimaConfig

from .server import PredictionServer, RequestError, parse_campaign_request

__all__ = [
    "ROUTES",
    "STATUS_REASONS",
    "HttpGateway",
    "flatten_stats",
    "metrics_text",
    "serve_http",
]

#: Every route the gateway serves, ``(method, path) -> handler name``.  The
#: doc-sync test walks this mapping, so an undocumented route fails CI.
ROUTES: dict[tuple[str, str], str] = {
    ("POST", "/v1/predict"): "predict",
    ("POST", "/v1/predict_batch"): "predict_batch",
    ("POST", "/v1/campaign"): "campaign",
    ("GET", "/healthz"): "healthz",
    ("GET", "/metrics"): "metrics",
}

#: Every status code the gateway can emit (also walked by the doc-sync test).
STATUS_REASONS: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Default bound on a request body (measurement sets are ~100 KiB; 16 MiB
#: leaves generous headroom while keeping a misbehaving client from ballooning
#: worker memory).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_JSON_CONTENT_TYPE = "application/json"
_NDJSON_CONTENT_TYPE = "application/x-ndjson"
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# --------------------------------------------------------------------------- #
# Stats flattening (the single source of truth behind /metrics and --stats)
# --------------------------------------------------------------------------- #


def _metric_segment(key: object) -> str:
    """One Prometheus-safe name segment from a snapshot dict key."""
    text = re.sub(r"[^a-z0-9_]+", "_", str(key).lower()).strip("_")
    return text or "x"


def flatten_stats(snapshot: Mapping[str, Any], prefix: str = "estima") -> dict[str, float]:
    """Flatten a stats snapshot into ``{metric_name: float}`` gauges.

    Every numeric leaf of the nested snapshot dict becomes one metric named
    by its path (``{"server": {"requests": 3}}`` -> ``estima_server_requests
    3.0``); booleans become 0/1.  A non-numeric leaf (a string, a list,
    ``None``) raises ``ValueError`` naming the offending metric path: a
    counter that cannot render as a gauge must fail loudly at the source,
    not silently vanish from ``/metrics`` (non-numeric facts belong in dict
    *keys*, like the per-backend sub-dicts of the router's snapshot).  Both
    ``GET /metrics`` and the tests asserting metrics/stats identity go
    through this one function — there is no second dict assembly to drift.
    """
    gauges: dict[str, float] = {}

    def walk(parts: list[str], value: Any) -> None:
        if isinstance(value, Mapping):
            for key, child in value.items():
                walk(parts + [_metric_segment(key)], child)
        elif isinstance(value, bool):
            gauges["_".join(parts)] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            gauges["_".join(parts)] = float(value)
        else:
            raise ValueError(
                f"non-numeric stats leaf at {'_'.join(parts)}: {value!r} "
                "(every /metrics leaf must be a number or bool)"
            )

    walk([_metric_segment(prefix)], snapshot)
    return gauges


def metrics_text(snapshot: Mapping[str, Any], prefix: str = "estima") -> str:
    """Render a stats snapshot as Prometheus text exposition format."""
    gauges = flatten_stats(snapshot, prefix)
    lines = []
    for name in sorted(gauges):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {gauges[name]!r}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# Request framing
# --------------------------------------------------------------------------- #


class _HttpError(Exception):
    """A request that cannot be served; carries the HTTP status to report."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _HttpRequest:
    method: str
    path: str
    version: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> _HttpRequest | None:
    """Read one HTTP/1.x request; ``None`` on clean EOF before a request."""
    try:
        request_line = await reader.readline()
    except ValueError:  # line longer than the stream's limit
        raise _HttpError(400, "request line too long") from None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line: {request_line[:80]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise _HttpError(400, "header line too long") from None
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise _HttpError(400, "connection closed inside headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise _HttpError(411, "chunked request bodies are not supported")
    if method.upper() in ("POST", "PUT", "PATCH") and "content-length" not in headers:
        raise _HttpError(411, f"{method} requests need a Content-Length header")
    if "content-length" in headers:
        # Consume the declared body on *every* method (a GET carrying one is
        # unusual but legal): leaving it unread would desync this keep-alive
        # connection — the next read would parse body bytes as a request line.
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length header")
        if length > max_body_bytes:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the {max_body_bytes} byte bound"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _HttpError(400, "connection closed inside the request body") from None
    path = target.split("?", 1)[0]
    return _HttpRequest(method.upper(), path, version, headers, body)


# --------------------------------------------------------------------------- #
# The gateway
# --------------------------------------------------------------------------- #


class HttpGateway:
    """Serve the HTTP routes above from one :class:`PredictionServer`.

    The gateway owns no prediction machinery: every request lands in the
    server's existing submit paths (and therefore its micro-batcher and
    metrics).  One gateway instance is shared by all connections of a
    process so the HTTP-level counters it adds to :meth:`stats` are
    process-wide, exactly like the server's own.
    """

    def __init__(
        self,
        server: PredictionServer | None = None,
        *,
        config: EstimaConfig | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        idle_timeout: "float | None" = None,
    ) -> None:
        self.server = server if server is not None else PredictionServer(config)
        self.max_body_bytes = max_body_bytes
        # Same resolution as the NDJSON server: explicit kwarg, else the
        # server's own (config / ESTIMA_SERVE_IDLE_TIMEOUT) value; 0 = off.
        self.idle_timeout = (
            idle_timeout if idle_timeout is not None else self.server.idle_timeout
        ) or None
        if self.idle_timeout is not None and self.idle_timeout < 0:
            raise ValueError("idle_timeout must be >= 0 (0 = disabled)")
        self._requests_by_route: dict[str, int] = {}
        self._responses_by_status: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Stats (the one snapshot /metrics and --stats both report)
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """The server's snapshot plus this gateway's HTTP-level counters."""
        snapshot = self.server.stats()
        snapshot["http"] = {
            "requests_by_route": dict(sorted(self._requests_by_route.items())),
            "responses_by_status": dict(sorted(self._responses_by_status.items())),
        }
        return snapshot

    def _count_request(self, route_key: str) -> None:
        self._requests_by_route[route_key] = self._requests_by_route.get(route_key, 0) + 1

    def _count_response(self, status: int) -> None:
        key = str(status)
        self._responses_by_status[key] = self._responses_by_status.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP connection (keep-alive) until EOF or close."""
        await self.server.start()
        try:
            while True:
                try:
                    # The idle timeout only covers waiting for (and framing)
                    # the next request: a connection with a request being
                    # served is working, not idle.  A peer that opens a slot
                    # and hangs gets its connection closed instead of pinning
                    # a server slot forever.
                    if self.idle_timeout is None:
                        request = await _read_request(reader, self.max_body_bytes)
                    else:
                        request = await asyncio.wait_for(
                            _read_request(reader, self.max_body_bytes),
                            timeout=self.idle_timeout,
                        )
                except asyncio.TimeoutError:
                    self._count_request("idle_timeout")
                    break
                except _HttpError as exc:
                    # Framing is broken or untrusted past this point: report
                    # the status and close rather than resynchronise.
                    self._count_request("unparsed")
                    await self._write_json(
                        writer, exc.status, {"ok": False, "error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing left to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError):
                pass

    async def _dispatch(self, request: _HttpRequest, writer: asyncio.StreamWriter) -> bool:
        """Serve one parsed request; returns whether to keep the connection."""
        method, path = request.method, request.path
        handler = ROUTES.get((method, path))
        self._count_request(f"{method} {path}" if handler else "unmatched")
        keep_alive = request.keep_alive
        if handler is None:
            allowed = sorted({m for m, p in ROUTES if p == path})
            if allowed:
                await self._write_json(
                    writer,
                    405,
                    {"ok": False, "error": f"method {method} not allowed for {path}"},
                    keep_alive=keep_alive,
                    extra_headers=(("Allow", ", ".join(allowed)),),
                )
            else:
                await self._write_json(
                    writer, 404, {"ok": False, "error": f"no route for {path}"},
                    keep_alive=keep_alive,
                )
            return keep_alive
        try:
            if handler == "healthz":
                await self._write_json(writer, 200, {"ok": True}, keep_alive=keep_alive)
            elif handler == "metrics":
                # Count this response *before* rendering so the exposition
                # already includes the request/response that produced it —
                # a later stats() snapshot then matches it exactly.
                self._count_response(200)
                body = metrics_text(self.stats()).encode()
                await self._write_response(
                    writer, 200, body, _METRICS_CONTENT_TYPE,
                    keep_alive=keep_alive, count=False,
                )
            elif handler == "predict":
                status, document = await self._predict(request.body)
                await self._write_json(writer, status, document, keep_alive=keep_alive)
            elif handler == "predict_batch":
                status, document = await self._predict_batch(request.body)
                await self._write_json(writer, status, document, keep_alive=keep_alive)
            else:  # campaign
                keep_alive = await self._campaign(request, writer, keep_alive)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # a handler bug must not kill the listener
            await self._write_json(
                writer, 500, {"ok": False, "error": f"internal error: {exc}"},
                keep_alive=False,
            )
            return False
        return keep_alive

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #
    def _parse_body(self, body: bytes) -> Any:
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad JSON body: {exc}") from None

    async def _predict(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = self._parse_body(body)
        except _HttpError as exc:
            return exc.status, {"ok": False, "error": str(exc)}
        if isinstance(payload, Mapping) and payload.get("op", "predict") != "predict":
            return 400, {
                "id": payload.get("id"),
                "ok": False,
                "error": f"unsupported op {payload.get('op')!r} for /v1/predict"
                " (campaigns go to /v1/campaign)",
            }
        document = await self.server.submit(payload)
        if document.get("ok"):
            return 200, document
        # "request" errors are the client's fault (400); pipeline failures
        # are the server's (500) — retry policies must see the difference.
        return (500 if document.get("error_kind") == "internal" else 400), document

    async def _predict_batch(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = self._parse_body(body)
        except _HttpError as exc:
            return exc.status, {"ok": False, "error": str(exc)}
        requests = payload.get("requests") if isinstance(payload, Mapping) else payload
        if not isinstance(requests, list):
            return 400, {
                "ok": False,
                "error": "body must be {\"requests\": [...]} or a JSON array",
            }
        if not requests:
            return 400, {"ok": False, "error": "predict_batch needs at least one request"}
        # Submitted concurrently so the whole batch coalesces in the
        # micro-batcher; responses come back in request order regardless.
        documents = await asyncio.gather(
            *(self.server.submit(request) for request in requests)
        )
        ok = all(document.get("ok") for document in documents)
        return 200, {"ok": ok, "responses": list(documents)}

    async def _campaign(
        self, request: _HttpRequest, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        try:
            payload = self._parse_body(request.body)
        except _HttpError as exc:
            await self._write_json(
                writer, exc.status, {"ok": False, "error": str(exc)}, keep_alive=keep_alive
            )
            return keep_alive
        if not isinstance(payload, Mapping):
            await self._write_json(
                writer, 400, {"ok": False, "error": "request must be a JSON object"},
                keep_alive=keep_alive,
            )
            return keep_alive
        # Validate fully before committing to a 200: a malformed campaign
        # gets a real HTTP status, never a 200 with an error inside.  (The
        # parse runs again inside submit_campaign — milliseconds of lookup
        # work, accepted so the server API keeps one entry point while the
        # gateway keeps real statuses; the campaign itself costs minutes.)
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, parse_campaign_request, payload, self.server.config
            )
        except RequestError as exc:
            await self._write_json(
                writer,
                400,
                {"id": payload.get("id"), "ok": False, "error": str(exc)},
                keep_alive=keep_alive,
            )
            return keep_alive

        self._count_response(200)
        writer.write(
            (
                f"HTTP/1.1 200 {STATUS_REASONS[200]}\r\n"
                f"Content-Type: {_NDJSON_CONTENT_TYPE}\r\n"
                "Transfer-Encoding: chunked\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            ).encode()
        )
        await writer.drain()

        async def write_chunk(document: Mapping[str, Any]) -> None:
            data = json.dumps(document).encode() + b"\n"
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        try:
            final = await self.server.submit_campaign(payload, on_row=write_chunk)
            await write_chunk(final)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception:
            # The 200 header (and possibly rows) are already on the wire: a
            # trailing HTTP error response would corrupt the chunked framing.
            # Close without the terminating 0-chunk — the truncated stream is
            # the client's error signal.
            return False
        return keep_alive

    # ------------------------------------------------------------------ #
    # Response writing
    # ------------------------------------------------------------------ #
    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Mapping[str, Any],
        *,
        keep_alive: bool,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self._count_response(status)
        await write_json_response(
            writer, status, document, keep_alive=keep_alive, extra_headers=extra_headers,
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        *,
        keep_alive: bool,
        extra_headers: tuple[tuple[str, str], ...] = (),
        count: bool = True,
    ) -> None:
        if count:
            self._count_response(status)
        await write_http_response(
            writer, status, body, content_type,
            keep_alive=keep_alive, extra_headers=extra_headers,
        )


# --------------------------------------------------------------------------- #
# Response framing (module-level: the cluster router emits the same shapes)
# --------------------------------------------------------------------------- #


async def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
    *,
    keep_alive: bool,
    extra_headers: tuple[tuple[str, str], ...] = (),
    reasons: Mapping[int, str] = STATUS_REASONS,
) -> None:
    """Write one complete HTTP/1.1 response (the gateway's exact framing).

    ``reasons`` lets front-ends with extra statuses (the router's 503) reuse
    this writer without widening the gateway's own status table.
    """
    lines = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
    await writer.drain()


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    document: Mapping[str, Any],
    *,
    keep_alive: bool,
    extra_headers: tuple[tuple[str, str], ...] = (),
    reasons: Mapping[int, str] = STATUS_REASONS,
) -> None:
    """Write one JSON document as a complete HTTP response."""
    await write_http_response(
        writer,
        status,
        json.dumps(document).encode() + b"\n",
        _JSON_CONTENT_TYPE,
        keep_alive=keep_alive,
        extra_headers=extra_headers,
        reasons=reasons,
    )


# --------------------------------------------------------------------------- #
# Transport
# --------------------------------------------------------------------------- #


async def serve_http(
    gateway: HttpGateway,
    host: str,
    port: int,
    *,
    on_listening: "Callable[[tuple[str, int]], None] | None" = None,
) -> None:
    """Serve HTTP connections on a TCP listener until cancelled.

    The exact shape of :func:`repro.engine.server.serve_tcp`: ``port`` 0
    binds an ephemeral port and ``on_listening`` receives the bound
    ``(host, port)`` (the CLI announces it, tests connect to it).
    """
    await gateway.server.start()
    http_server = await asyncio.start_server(gateway.handle_connection, host=host, port=port)
    if on_listening is not None:
        bound = http_server.sockets[0].getsockname()
        on_listening((bound[0], bound[1]))
    async with http_server:
        await http_server.serve_forever()
