"""Disk-backed second cache tier: content-addressed files with LRU eviction.

The in-memory :class:`~repro.engine.cache.ContentCache` regions pay for each
kernel fit once *per process*; every new process (a CLI run, a campaign
worker, a serving restart) still starts cold.  :class:`DiskStore` adds a
persistent tier underneath them:

* entries are **content-addressed**: the file name is the same digest the
  memory tier uses, so any process that computes the same inputs reads the
  same file — no coordination needed beyond the filesystem;
* writes are **atomic** (temp file + ``os.replace`` in the same directory),
  so concurrent writers and readers never observe a torn entry;
* the store is **size-bounded**: once the configured byte budget is
  exceeded, least-recently-used entries are evicted (reads refresh an
  entry's recency);
* entries are **schema-versioned**: a payload whose embedded version does
  not match :data:`SCHEMA_VERSION` is ignored as a miss, so stale formats
  from older code are never deserialised into current objects.

Layout under the store root (one subdirectory per cache region)::

    <root>/
      fit/ab/abcdef....entry
      extrapolation/12/1234....entry
      service/...

A store is attached to cache regions with
:func:`repro.engine.cache.attach_disk_tier`, configured through
``EstimaConfig(cache_dir=...)`` / ``ESTIMA_CACHE_DIR`` (byte budget via
``ESTIMA_CACHE_MAX_BYTES``), and inspected or cleared with the
``estima cache`` CLI subcommand.

Like the sibling ``cache`` and ``executor`` modules, this module imports
nothing from the rest of :mod:`repro` so the core layer can depend on it
without cycles.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "StoreStats",
    "DiskStore",
    "default_cache_dir",
    "store_for",
]

#: Version stamped into every entry; bump when cached object layouts change.
#: Entries carrying any other version are ignored (treated as misses).
SCHEMA_VERSION = 1

#: Default byte budget of a store (overridden by ``ESTIMA_CACHE_MAX_BYTES``).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable naming the disk-tier directory.
ENV_CACHE_DIR = "ESTIMA_CACHE_DIR"
#: Environment variable bounding the disk tier's size in bytes.
ENV_CACHE_MAX_BYTES = "ESTIMA_CACHE_MAX_BYTES"

_ENTRY_SUFFIX = ".entry"

_MISS = object()


@dataclass
class StoreStats:
    """Operational counters of one :class:`DiskStore`."""

    reads: int = 0
    read_hits: int = 0
    writes: int = 0
    evictions: int = 0
    invalid_entries: int = 0  # schema mismatches / undecodable files seen

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "read_hits": self.read_hits,
            "writes": self.writes,
            "evictions": self.evictions,
            "invalid_entries": self.invalid_entries,
        }


@dataclass
class _Entry:
    size: int
    last_used: int  # monotonically increasing access stamp (process-local)


class DiskStore:
    """A content-addressed, size-bounded, schema-versioned file store.

    One store serves several regions (``fit``, ``extrapolation``, ...), each
    in its own subdirectory; the eviction budget spans all of them.  All
    methods are thread-safe; cross-process safety comes from atomic renames
    and from treating every unreadable file as a miss.
    """

    def __init__(self, root: str | Path, *, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._index: dict[Path, _Entry] = {}
        self._total_bytes = 0
        self._clock = 0
        self._scanned = False

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, region: str, key: str) -> Any:
        """Return the stored value, or :data:`MISS` when absent/stale.

        Use :meth:`contains`-free idiom: ``value = store.get(r, k)``;
        ``store.is_miss(value)`` tells the two apart (``None`` is storable).
        """
        path = self._path(region, key)
        with self._lock:
            self._ensure_scanned()
            self.stats.reads += 1
        try:
            blob = path.read_bytes()
        except OSError:
            return _MISS
        value = self._decode(blob)
        if value is _MISS:
            return _MISS
        with self._lock:
            self.stats.read_hits += 1
            self._touch(path)
        return value

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def put(self, region: str, key: str, value: Any) -> bool:
        """Persist ``value`` atomically; returns False if it cannot be stored.

        Unpicklable values (and filesystem errors) are swallowed: the disk
        tier is an accelerator, never a correctness dependency.
        """
        try:
            blob = pickle.dumps(
                {"schema": SCHEMA_VERSION, "region": region, "key": key, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            return False
        path = self._path(region, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        with self._lock:
            self._ensure_scanned()
            previous = self._index.get(path)
            if previous is not None:
                self._total_bytes -= previous.size
            self._clock += 1
            self._index[path] = _Entry(size=len(blob), last_used=self._clock)
            self._total_bytes += len(blob)
            self.stats.writes += 1
            self._evict_locked()
        return True

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #
    def clear(self, region: str | None = None) -> int:
        """Delete all entries (or one region's); returns the number removed."""
        with self._lock:
            self._ensure_scanned()
            roots = (self.root / region,) if region else (self.root,)
            removed = 0
            for path in list(self._index):
                if any(root == path or root in path.parents for root in roots):
                    removed += self._remove_locked(path, count_eviction=False)
            return removed

    def entry_count(self, region: str | None = None) -> int:
        with self._lock:
            self._ensure_scanned()
            if region is None:
                return len(self._index)
            root = self.root / region
            return sum(1 for path in self._index if root in path.parents)

    def total_bytes(self) -> int:
        with self._lock:
            self._ensure_scanned()
            return self._total_bytes

    def regions(self) -> dict[str, dict[str, int]]:
        """Per-region entry counts and byte totals (for ``estima cache stats``)."""
        with self._lock:
            self._ensure_scanned()
            summary: dict[str, dict[str, int]] = {}
            for path, entry in self._index.items():
                region = path.relative_to(self.root).parts[0]
                bucket = summary.setdefault(region, {"entries": 0, "bytes": 0})
                bucket["entries"] += 1
                bucket["bytes"] += entry.size
            return summary

    def describe(self) -> dict[str, object]:
        """One JSON-friendly summary of the store's state."""
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "total_bytes": self.total_bytes(),
            "entries": self.entry_count(),
            "schema_version": SCHEMA_VERSION,
            "regions": self.regions(),
            "counters": self.stats.as_dict(),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _path(self, region: str, key: str) -> Path:
        # Two-character fan-out keeps directories small at high entry counts.
        return self.root / region / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def _decode(self, blob: bytes) -> Any:
        try:
            payload = pickle.loads(blob)
        except Exception:
            with self._lock:
                self.stats.invalid_entries += 1
            return _MISS
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            with self._lock:
                self.stats.invalid_entries += 1
            return _MISS
        return payload.get("value")

    def _ensure_scanned(self) -> None:
        """Build the in-memory index from the directory tree (lock held)."""
        if self._scanned:
            return
        self._scanned = True
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob(f"*{_ENTRY_SUFFIX}")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            self._clock += 1
            self._index[path] = _Entry(size=size, last_used=self._clock)
            self._total_bytes += size

    def _touch(self, path: Path) -> None:
        entry = self._index.get(path)
        if entry is not None:
            self._clock += 1
            entry.last_used = self._clock

    def _evict_locked(self) -> None:
        while self._total_bytes > self.max_bytes and len(self._index) > 1:
            victim = min(self._index, key=lambda p: self._index[p].last_used)
            self._remove_locked(victim, count_eviction=True)

    def _remove_locked(self, path: Path, *, count_eviction: bool) -> int:
        entry = self._index.pop(path, None)
        if entry is None:
            return 0
        self._total_bytes -= entry.size
        if count_eviction:
            self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass
        return 1


def default_cache_dir() -> Path:
    """The disk-tier directory used when none is configured explicitly.

    ``ESTIMA_CACHE_DIR`` wins; otherwise a per-user directory under
    ``~/.cache`` keeps runs from different checkouts sharing warm fits.
    """
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "estima"


def max_bytes_from_env(default: int = DEFAULT_MAX_BYTES) -> int:
    """The byte budget configured via ``ESTIMA_CACHE_MAX_BYTES`` (validated)."""
    raw = os.environ.get(ENV_CACHE_MAX_BYTES, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {ENV_CACHE_MAX_BYTES}={raw!r}: expected a positive integer byte count"
        ) from None
    if value < 1:
        raise ValueError(f"invalid {ENV_CACHE_MAX_BYTES}={raw!r}: must be >= 1")
    return value


_STORES: dict[Path, DiskStore] = {}
_STORES_LOCK = threading.Lock()


def store_for(root: str | Path, *, max_bytes: int | None = None) -> DiskStore:
    """One shared :class:`DiskStore` per resolved root directory.

    Sharing matters: the LRU index and byte accounting live on the store
    object, so every cache region attached to the same directory must go
    through the same instance.  ``max_bytes`` applies on first creation
    (later callers inherit the existing budget).
    """
    resolved = Path(root).expanduser().resolve()
    with _STORES_LOCK:
        store = _STORES.get(resolved)
        if store is None:
            budget = max_bytes if max_bytes is not None else max_bytes_from_env()
            store = _STORES[resolved] = DiskStore(resolved, max_bytes=budget)
        return store
