"""Disk-backed second cache tier: content-addressed files with LRU eviction.

The in-memory :class:`~repro.engine.cache.ContentCache` regions pay for each
kernel fit once *per process*; every new process (a CLI run, a campaign
worker, a serving restart) still starts cold.  :class:`DiskStore` adds a
persistent tier underneath them:

* entries are **content-addressed**: the file name is the same digest the
  memory tier uses, so any process that computes the same inputs reads the
  same file — no coordination needed beyond the filesystem;
* writes are **atomic** (temp file + ``os.replace`` in the same directory),
  so concurrent writers and readers never observe a torn entry;
* the store is **size-bounded**: once the configured byte budget is
  exceeded, least-recently-used entries are evicted (reads refresh an
  entry's recency);
* eviction is **multi-process safe**: recency is published through file
  mtimes, and writers keep a shared byte ledger in ``<root>/.lock`` under an
  advisory ``flock`` — every put updates the ledger in O(1), and only when
  the ledger crosses the budget (or is missing/corrupt) does the writer
  rescan the directory and evict, so several processes (e.g. the ``estima
  serve`` worker pool) writing the same cache dir concurrently neither
  corrupt entries nor exceed the byte budget once they settle;
* entries are **schema-versioned**: a payload whose embedded version does
  not match :data:`SCHEMA_VERSION` is ignored as a miss, so stale formats
  from older code are never deserialised into current objects.

Layout under the store root (one subdirectory per cache region)::

    <root>/
      .lock
      fit/ab/abcdef....entry
      extrapolation/12/1234....entry
      service/...

Concurrency / crash-safety invariants of this module:

* **Flock ledger.** Writers serialise byte accounting through an advisory
  ``flock`` on ``<root>/.lock`` holding the shared byte ledger; each put is
  an O(1) ledger update, and only a missing/corrupt ledger or crossing the
  byte budget triggers a directory rescan (+ LRU eviction).  N processes
  writing one cache dir neither corrupt entries nor exceed the budget once
  they settle.
* **Torn-write immunity.** Every entry is written to a temp file in its
  final directory and published with ``os.replace``; readers see either the
  complete entry or none.  A crash mid-write leaves at most a temp file the
  next rescan sweeps up — never a half entry that deserialises.
* **Version fencing.** Entries embed :data:`SCHEMA_VERSION`; any other
  version reads as a miss, so stale formats from older code are never
  deserialised into current objects.

A store is attached to cache regions with
:func:`repro.engine.cache.attach_disk_tier`, configured through
``EstimaConfig(cache_dir=...)`` / ``ESTIMA_CACHE_DIR`` (byte budget via
``ESTIMA_CACHE_MAX_BYTES``), and inspected or cleared with the
``estima cache`` CLI subcommand.

Like the sibling ``cache`` and ``executor`` modules, this module imports
nothing from the rest of :mod:`repro` so the core layer can depend on it
without cycles.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.testing.syncpoints import sync_point

try:  # POSIX advisory locks; on platforms without fcntl the store still
    import fcntl  # works, it just loses cross-process eviction coordination.
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "StoreStats",
    "DiskStore",
    "default_cache_dir",
    "store_for",
]

#: Version stamped into every entry; bump when cached object layouts change.
#: Entries carrying any other version are ignored (treated as misses).
SCHEMA_VERSION = 1

#: Default byte budget of a store (overridden by ``ESTIMA_CACHE_MAX_BYTES``).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable naming the disk-tier directory.
ENV_CACHE_DIR = "ESTIMA_CACHE_DIR"
#: Environment variable bounding the disk tier's size in bytes.
ENV_CACHE_MAX_BYTES = "ESTIMA_CACHE_MAX_BYTES"

_ENTRY_SUFFIX = ".entry"
_LOCK_NAME = ".lock"

_MISS = object()


@dataclass
class StoreStats:
    """Operational counters of one :class:`DiskStore`."""

    reads: int = 0
    read_hits: int = 0
    writes: int = 0
    evictions: int = 0
    invalid_entries: int = 0  # schema mismatches / undecodable files seen

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "read_hits": self.read_hits,
            "writes": self.writes,
            "evictions": self.evictions,
            "invalid_entries": self.invalid_entries,
        }


@dataclass
class _Entry:
    size: int
    last_used: float  # wall-clock access stamp; published to peers via mtime


class DiskStore:
    """A content-addressed, size-bounded, schema-versioned file store.

    One store serves several regions (``fit``, ``extrapolation``, ...), each
    in its own subdirectory; the eviction budget spans all of them.  All
    methods are thread-safe.  Cross-process safety comes from three pieces:
    atomic renames (readers never see a torn entry), treating every
    unreadable file as a miss, and an advisory file lock around the
    rescan-then-evict step so concurrent writers converge on the shared
    byte budget instead of each enforcing it against a stale local view.
    """

    def __init__(self, root: str | Path, *, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._index: dict[Path, _Entry] = {}
        self._total_bytes = 0
        self._last_stamp = 0.0
        self._scanned = False

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, region: str, key: str) -> Any:
        """Return the stored value, or :data:`MISS` when absent/stale.

        Use :meth:`contains`-free idiom: ``value = store.get(r, k)``;
        ``store.is_miss(value)`` tells the two apart (``None`` is storable).
        """
        path = self._path(region, key)
        with self._lock:
            self._ensure_scanned()
            self.stats.reads += 1
        try:
            blob = path.read_bytes()
        except OSError:
            return _MISS
        value = self._decode(blob)
        if value is _MISS:
            return _MISS
        with self._lock:
            self.stats.read_hits += 1
            self._touch(path)
        return value

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def put(self, region: str, key: str, value: Any) -> bool:
        """Persist ``value`` atomically; returns False if it cannot be stored.

        Unpicklable values (and filesystem errors) are swallowed: the disk
        tier is an accelerator, never a correctness dependency.
        """
        try:
            blob = pickle.dumps(
                {"schema": SCHEMA_VERSION, "region": region, "key": key, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            return False
        path = self._path(region, key)
        # Force the lazy first scan *before* publishing: a scan that runs
        # after ``os.replace`` absorbs the entry being written, making the
        # ledger delta below 0 — the entry's bytes would then never reach
        # the shared ledger, and fresh processes could overshoot the byte
        # budget forever without ever triggering the over-budget rescan.
        with self._lock:
            self._ensure_scanned()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
                sync_point("store.put.publish")
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        with self._lock:
            self._ensure_scanned()
            previous = self._index.get(path)
            delta = len(blob) - (previous.size if previous is not None else 0)
            if previous is not None:
                self._total_bytes -= previous.size
            self._index[path] = _Entry(size=len(blob), last_used=self._stamp())
            self._total_bytes += len(blob)
            self.stats.writes += 1
        # Enforce the budget against the *directory*, not only the local
        # index: other processes may have written entries this process never
        # saw.  A full rescan per put would be O(entries), so writers share a
        # byte ledger in the lock file instead — O(1) per put — and rescan
        # only when the ledger says the budget is exceeded (or is missing).
        # Concurrent-overwrite drift in the ledger is tolerated: the next
        # over-budget rescan rewrites it from the actual directory state.
        with self._file_lock() as ledger:
            with self._lock:
                if ledger is None:
                    # No cross-process lock available: fall back to the
                    # rescan so the budget still holds.
                    self._refresh_locked()
                    self._evict_locked()
                else:
                    shared = self._read_ledger(ledger)
                    sync_point("store.ledger.read")
                    total = shared + delta if shared is not None else None
                    if total is None or total > self.max_bytes:
                        sync_point("store.ledger.rescan")
                        self._refresh_locked()
                        self._evict_locked()
                        total = self._total_bytes
                    self._write_ledger(ledger, total)
        return True

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-synchronise the in-memory index with the directory contents."""
        with self._file_lock() as ledger:
            with self._lock:
                self._refresh_locked()
                if ledger is not None:
                    self._write_ledger(ledger, self._total_bytes)

    def clear(self, region: str | None = None) -> int:
        """Delete all entries (or one region's); returns the number removed.

        Clears what is actually on disk — including entries written by other
        processes that this instance has never looked at.
        """
        with self._file_lock() as ledger:
            with self._lock:
                self._refresh_locked()
                roots = (self.root / region,) if region else (self.root,)
                removed = 0
                for path in list(self._index):
                    if any(root == path or root in path.parents for root in roots):
                        removed += self._remove_locked(path, count_eviction=False)
                if ledger is not None:
                    self._write_ledger(ledger, self._total_bytes)
                return removed

    def entry_count(self, region: str | None = None) -> int:
        with self._lock:
            self._ensure_scanned()
            if region is None:
                return len(self._index)
            root = self.root / region
            return sum(1 for path in self._index if root in path.parents)

    def total_bytes(self) -> int:
        with self._lock:
            self._ensure_scanned()
            return self._total_bytes

    def regions(self) -> dict[str, dict[str, int]]:
        """Per-region entry counts and byte totals (for ``estima cache stats``)."""
        with self._lock:
            self._ensure_scanned()
            summary: dict[str, dict[str, int]] = {}
            for path, entry in self._index.items():
                region = path.relative_to(self.root).parts[0]
                bucket = summary.setdefault(region, {"entries": 0, "bytes": 0})
                bucket["entries"] += 1
                bucket["bytes"] += entry.size
            return summary

    def describe(self) -> dict[str, object]:
        """One JSON-friendly summary of the store's state (rescans first, so
        entries written by other processes are included)."""
        self.refresh()
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "total_bytes": self.total_bytes(),
            "entries": self.entry_count(),
            "schema_version": SCHEMA_VERSION,
            "regions": self.regions(),
            "counters": self.stats.as_dict(),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _path(self, region: str, key: str) -> Path:
        # Two-character fan-out keeps directories small at high entry counts.
        return self.root / region / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def _decode(self, blob: bytes) -> Any:
        try:
            payload = pickle.loads(blob)
        except Exception:
            with self._lock:
                self.stats.invalid_entries += 1
            return _MISS
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            with self._lock:
                self.stats.invalid_entries += 1
            return _MISS
        return payload.get("value")

    def _stamp(self) -> float:
        """A strictly increasing wall-clock stamp (ties broken locally)."""
        self._last_stamp = max(time.time(), self._last_stamp + 1e-6)
        return self._last_stamp

    @contextmanager
    def _file_lock(self) -> "Iterator[Any | None]":
        """Advisory exclusive lock on ``<root>/.lock`` (best effort).

        Yields the open lock-file handle (the shared byte ledger lives in
        it) or ``None`` when locking is unavailable.  Serialises ledger
        updates and the rescan-then-evict step across processes.
        Filesystems without ``flock`` support degrade to uncoordinated
        eviction, which is still safe (atomic writes, unlink tolerates
        ENOENT) — the budget just becomes approximate.
        """
        handle = None
        if fcntl is not None:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                # O_RDWR (not append) so the ledger can be rewritten in place.
                fd = os.open(self.root / _LOCK_NAME, os.O_RDWR | os.O_CREAT, 0o644)
                handle = os.fdopen(fd, "r+b")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                if handle is not None:
                    handle.close()
                    handle = None
        try:
            if handle is not None:
                sync_point("store.ledger.acquire")
            yield handle
        finally:
            if handle is not None:
                try:
                    sync_point("store.ledger.release")
                finally:
                    handle.close()  # closing the descriptor releases the flock

    @staticmethod
    def _read_ledger(handle: Any) -> int | None:
        """The shared byte total recorded in the lock file (None = unknown)."""
        try:
            handle.seek(0)
            data = handle.read(32)
        except OSError:
            return None
        if not data:
            return None
        try:
            return int(data.split()[0])
        except (ValueError, IndexError):
            return None

    @staticmethod
    def _write_ledger(handle: Any, total: int) -> None:
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(str(max(int(total), 0)).encode())
            handle.flush()
        except OSError:
            pass  # ledger is advisory; the next rescan restores it

    def _ensure_scanned(self) -> None:
        """Build the in-memory index from the directory tree (lock held)."""
        if self._scanned:
            return
        self._scanned = True
        self._refresh_locked()

    def _refresh_locked(self) -> None:
        """Re-read sizes and recency (mtimes) from the directory (lock held).

        Entries this process wrote keep their local (at least as fresh)
        stamp; entries other processes created or touched take their mtime.
        """
        self._scanned = True
        seen: set[Path] = set()
        total = 0
        if self.root.is_dir():
            for path in self.root.rglob(f"*{_ENTRY_SUFFIX}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # concurrently evicted by another process
                seen.add(path)
                entry = self._index.get(path)
                if entry is None:
                    self._index[path] = _Entry(size=stat.st_size, last_used=stat.st_mtime)
                else:
                    entry.size = stat.st_size
                    entry.last_used = max(entry.last_used, stat.st_mtime)
                total += stat.st_size
        for path in list(self._index):
            if path not in seen:
                del self._index[path]
        self._total_bytes = total

    def _touch(self, path: Path) -> None:
        entry = self._index.get(path)
        if entry is not None:
            entry.last_used = self._stamp()
            try:
                os.utime(path)  # publish recency to other processes
            except OSError:
                pass

    def _evict_locked(self) -> None:
        while self._total_bytes > self.max_bytes and len(self._index) > 1:
            victim = min(self._index, key=lambda p: self._index[p].last_used)
            self._remove_locked(victim, count_eviction=True)

    def _remove_locked(self, path: Path, *, count_eviction: bool) -> int:
        entry = self._index.pop(path, None)
        if entry is None:
            return 0
        self._total_bytes -= entry.size
        if count_eviction:
            self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass
        return 1


def default_cache_dir() -> Path:
    """The disk-tier directory used when none is configured explicitly.

    ``ESTIMA_CACHE_DIR`` wins; otherwise a per-user directory under
    ``~/.cache`` keeps runs from different checkouts sharing warm fits.
    """
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "estima"


def max_bytes_from_env(default: int = DEFAULT_MAX_BYTES) -> int:
    """The byte budget configured via ``ESTIMA_CACHE_MAX_BYTES`` (validated)."""
    raw = os.environ.get(ENV_CACHE_MAX_BYTES, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {ENV_CACHE_MAX_BYTES}={raw!r}: expected a positive integer byte count"
        ) from None
    if value < 1:
        raise ValueError(f"invalid {ENV_CACHE_MAX_BYTES}={raw!r}: must be >= 1")
    return value


_STORES: dict[Path, DiskStore] = {}
_STORES_LOCK = threading.Lock()


def store_for(root: str | Path, *, max_bytes: int | None = None) -> DiskStore:
    """One shared :class:`DiskStore` per resolved root directory.

    Sharing matters: the LRU index and byte accounting live on the store
    object, so every cache region attached to the same directory must go
    through the same instance.  ``max_bytes`` applies on first creation
    (later callers inherit the existing budget).
    """
    resolved = Path(root).expanduser().resolve()
    with _STORES_LOCK:
        store = _STORES.get(resolved)
        if store is None:
            budget = max_bytes if max_bytes is not None else max_bytes_from_env()
            store = _STORES[resolved] = DiskStore(resolved, max_bytes=budget)
        return store
