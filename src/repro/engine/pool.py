"""Multi-process serving: a supervisor and N forked prediction workers.

``estima serve --workers N`` turns the single-process asyncio front-end into
a pre-fork pool, the multi-core serving leg of the roadmap:

* the **supervisor** owns the listening socket (TCP or unix) and nothing
  else: it accepts connections and hands each one to a worker round-robin
  over a unix socketpair (``SCM_RIGHTS`` fd passing), so a slow client never
  occupies the supervisor;
* each **worker** is a forked process running a full
  :class:`~repro.engine.server.PredictionServer` — its own asyncio loop,
  micro-batcher and prediction service.  All workers share the persistent
  :class:`~repro.engine.store.DiskStore` tier through the filesystem (the
  store's file locking makes concurrent writes and eviction safe), so one
  worker's kernel fits warm-start every other worker;
* the supervisor **health-checks** workers over a per-worker control pipe
  (ping/pong plus liveness) and forks a replacement when one crashes;
  accepted connections keep flowing to the survivors meanwhile;
* :meth:`WorkerPool.stats` polls every worker for its server counters and
  returns them per worker *and* merged (numeric leaves summed, ``max_*``
  maxed), so the pool reports one coherent set of throughput/latency/cache
  numbers.

The protocol spoken on every connection is exactly the single-process one —
NDJSON predict + streamed campaign ops by default, or HTTP
(:mod:`repro.engine.gateway`) when the pool is built with
``protocol="http"`` — so which mode serves a client is invisible to it.

Concurrency / crash-safety invariants of this module:

* **SCM_RIGHTS handoff.** The supervisor owns the listening socket alone;
  workers receive each accepted connection as a duplicated file descriptor
  over a per-worker unix socketpair.  Once the fd is sent the supervisor
  closes its copy — exactly one process owns every connection, and a worker
  crash can only drop the connections that worker held, never the listener.
* **Fd hygiene on fork.** A freshly forked worker closes the inherited
  listener (an orphan must not hold the port after a supervisor crash) and
  its siblings' channel fds (a dead sibling's socketpair must read as
  closed, or dispatch to it would block forever).
* **Supervised restart.** The health loop detects a dead worker, forks a
  replacement into the same slot under exponential backoff (crash loops
  cannot spin the supervisor), and dispatch skips dead workers meanwhile —
  the pool serves with the survivors at every point in time.
* **Stats are merged, never shared.** Workers share no memory; counters are
  polled over per-worker control pipes and merged (sums, ``max_*`` maxima,
  denominator-weighted means), so one coherent stats document exists without
  any cross-process synchronisation.  The only shared mutable state is the
  :class:`~repro.engine.store.DiskStore` tier, which is multi-process safe
  by its own flock-ledger invariants.

This module imports :mod:`repro.engine.server` (and, for HTTP pools,
:mod:`repro.engine.gateway`) only inside the worker entry point, so
:class:`EstimaConfig` can import the parse helpers below without a cycle.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.testing.syncpoints import sync_point

__all__ = [
    "ENV_SERVE_WORKERS",
    "ENV_SERVE_HTTP",
    "ENV_SERVE_IDLE_TIMEOUT",
    "PROTOCOLS",
    "parse_serve_workers",
    "serve_workers_from_env",
    "serve_http_from_env",
    "parse_idle_timeout",
    "serve_idle_timeout_from_env",
    "parse_tcp_address",
    "WorkerPool",
]

#: Environment variable with the default worker count (0 = serve in-process).
ENV_SERVE_WORKERS = "ESTIMA_SERVE_WORKERS"

#: Environment variable with the default ``estima serve --http`` address.
ENV_SERVE_HTTP = "ESTIMA_SERVE_HTTP"

#: Environment variable with the default idle/read timeout (seconds) for
#: served connections.  0 (or unset) disables the timeout.
ENV_SERVE_IDLE_TIMEOUT = "ESTIMA_SERVE_IDLE_TIMEOUT"

#: Wire protocols a worker (or the in-process server) can speak on accepted
#: connections: the native NDJSON protocol or the HTTP/JSON gateway.
PROTOCOLS = ("ndjson", "http")

#: How long the supervisor waits for a worker's control reply (seconds).
_CONTROL_TIMEOUT_S = 10.0


def parse_serve_workers(value: object, *, source: str = "serve_workers") -> int:
    """Parse a worker count strictly: a non-negative integer or a clear error.

    Shared by ``EstimaConfig`` construction (``serve_workers`` field and the
    ``ESTIMA_SERVE_WORKERS`` environment variable) and ``estima serve
    --workers`` — same pattern as ``ESTIMA_EXECUTOR`` validation, so a
    malformed value fails fast instead of deep inside the serving stack.
    """
    try:
        workers = int(str(value).strip())
    except ValueError:
        raise ValueError(
            f"invalid {source}={value!r}: expected a non-negative integer worker count"
        ) from None
    if workers < 0:
        raise ValueError(f"invalid {source}={value!r}: worker count must be >= 0")
    return workers


def serve_workers_from_env(default: int = 0) -> int:
    """The worker count configured via ``ESTIMA_SERVE_WORKERS`` (validated)."""
    raw = os.environ.get(ENV_SERVE_WORKERS, "").strip()
    if not raw:
        return default
    return parse_serve_workers(raw, source=ENV_SERVE_WORKERS)


def serve_http_from_env() -> str | None:
    """The HTTP listening address configured via ``ESTIMA_SERVE_HTTP``.

    Returns ``None`` when unset/blank; a set value is validated strictly
    (``HOST:PORT``) so a malformed address fails fast, the same contract as
    ``ESTIMA_SERVE_WORKERS``.
    """
    raw = os.environ.get(ENV_SERVE_HTTP, "").strip()
    if not raw:
        return None
    try:
        parse_tcp_address(raw)
    except ValueError as exc:
        raise ValueError(f"invalid {ENV_SERVE_HTTP} environment variable: {exc}") from None
    return raw


def parse_idle_timeout(value: object, *, source: str = "serve_idle_timeout") -> float:
    """Parse an idle/read timeout strictly: seconds >= 0 or a clear error.

    0 disables the timeout (a hung peer may then pin its connection slot
    forever — the pre-timeout behaviour).  Shared by ``EstimaConfig``
    construction, the ``ESTIMA_SERVE_IDLE_TIMEOUT`` environment variable and
    the server/gateway constructors.
    """
    try:
        timeout = float(str(value).strip())
    except ValueError:
        raise ValueError(
            f"invalid {source}={value!r}: expected a timeout in seconds (0 disables)"
        ) from None
    if not timeout >= 0:  # rejects NaN too
        raise ValueError(f"invalid {source}={value!r}: timeout must be >= 0 seconds")
    return timeout


def serve_idle_timeout_from_env() -> "float | None":
    """The idle timeout configured via ``ESTIMA_SERVE_IDLE_TIMEOUT``.

    Returns ``None`` when unset/blank; a set value is validated strictly so a
    malformed timeout fails fast, the same contract as the other ``ESTIMA_``
    serving variables.
    """
    raw = os.environ.get(ENV_SERVE_IDLE_TIMEOUT, "").strip()
    if not raw:
        return None
    return parse_idle_timeout(raw, source=ENV_SERVE_IDLE_TIMEOUT)


def parse_tcp_address(spec: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` TCP address strictly.

    Returns ``(host, port)``; ``[v6::addr]:port`` brackets are accepted and
    stripped.  Port 0 is allowed (the listener picks a free port).  Raises a
    clear ``ValueError`` for anything malformed — consumed by
    ``EstimaConfig`` construction (the ``serve_tcp`` field, i.e. ``estima
    serve --tcp``) so bad addresses are rejected up front.
    """
    text = str(spec).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or not port_text:
        raise ValueError(f"invalid TCP address {spec!r}: expected HOST:PORT")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"invalid TCP address {spec!r}: empty host")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid TCP address {spec!r}: port must be an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid TCP address {spec!r}: port must be in 0..65535")
    return host, port


#: Per-worker configuration values (not counters): first worker's value wins.
_CONFIG_KEYS = frozenset({"max_batch", "batch_window_ms", "queue_limit"})


def _merge_counters(total: dict[str, Any], part: Mapping[str, Any]) -> None:
    """Merge one worker's stats into ``total``: sum numbers, max ``max_*``."""
    for key, value in part.items():
        if key in _CONFIG_KEYS:
            total.setdefault(key, value)
        elif isinstance(value, Mapping):
            _merge_counters(total.setdefault(key, {}), value)
        elif isinstance(value, bool):
            total[key] = bool(total.get(key, False)) or value
        elif isinstance(value, (int, float)):
            if key.startswith("max_"):
                total[key] = max(total.get(key, value), value)
            else:
                total[key] = total.get(key, 0) + value
        else:
            total.setdefault(key, value)


def _merge_worker_stats(per_worker: "list[dict[str, Any] | None]") -> dict[str, Any]:
    """One coherent stats document from N workers' snapshots.

    Counters sum, ``max_*`` take the maximum, per-worker config values pass
    through, and the derived means (which must not be summed) are recomputed
    as weighted averages over their own denominators.
    """
    merged: dict[str, Any] = {}
    for stats in per_worker:
        if stats:
            _merge_counters(merged, stats)
    servers = [
        stats["server"]
        for stats in per_worker
        if stats and isinstance(stats.get("server"), Mapping)
    ]
    if servers and isinstance(merged.get("server"), dict):
        responses = sum(server.get("responses", 0) for server in servers)
        batches = sum(server.get("batches", 0) for server in servers)
        merged["server"]["mean_latency_ms"] = (
            sum(s.get("mean_latency_ms", 0.0) * s.get("responses", 0) for s in servers)
            / responses
            if responses
            else 0.0
        )
        merged["server"]["mean_batch_size"] = (
            sum(s.get("mean_batch_size", 0.0) * s.get("batches", 0) for s in servers)
            / batches
            if batches
            else 0.0
        )
    return merged


@dataclass
class _WorkerHandle:
    """Supervisor-side bookkeeping for one live worker process."""

    index: int
    process: Any  # multiprocessing.Process
    fd_channel: socket.socket  # supervisor end of the SCM_RIGHTS socketpair
    control: Any  # multiprocessing.connection.Connection
    control_lock: threading.Lock = field(default_factory=threading.Lock)
    last_stats: dict[str, Any] | None = None
    started_at: float = field(default_factory=time.monotonic)


class WorkerPool:
    """Supervise N forked :class:`PredictionServer` workers behind one socket.

    Parameters
    ----------
    config:
        The :class:`EstimaConfig` every worker serves with (workers fork
        before serving, so they share nothing in memory — the persistent
        disk tier named by ``config.cache_dir`` is their shared cache).
    workers:
        Number of worker processes (>= 1).
    tcp / unix_socket:
        Exactly one transport: a ``HOST:PORT`` string (or ``(host, port)``
        tuple) for TCP, or a filesystem path for a unix listening socket.
    max_batch / batch_window_ms / queue_limit:
        Per-worker micro-batching knobs, forwarded to each worker's
        :class:`~repro.engine.server.PredictionServer`.
    protocol:
        What the workers speak on accepted connections: ``"ndjson"`` (the
        native protocol, default) or ``"http"`` (each worker serves the
        routes of :class:`~repro.engine.gateway.HttpGateway`).  Dispatch,
        health checks and stats merging are identical either way — the
        supervisor never looks inside a connection.
    health_interval_s:
        How often the supervisor checks worker liveness and restarts
        crashed workers.
    """

    def __init__(
        self,
        config: Any = None,
        *,
        workers: int,
        tcp: "str | tuple[str, int] | None" = None,
        unix_socket: "str | None" = None,
        max_batch: int | None = None,
        batch_window_ms: float | None = None,
        queue_limit: int | None = None,
        protocol: str = "ndjson",
        health_interval_s: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if (tcp is None) == (unix_socket is None):
            raise ValueError("exactly one of tcp / unix_socket is required")
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}: expected one of {PROTOCOLS}")
        if tcp is not None and not isinstance(tcp, tuple):
            tcp = parse_tcp_address(tcp)
        self.config = config
        self.workers = workers
        self.protocol = protocol
        self.tcp = tcp
        self.unix_socket = unix_socket
        self.health_interval_s = health_interval_s
        self.restarts = 0
        self._serve_options = {
            "max_batch": max_batch,
            "batch_window_ms": batch_window_ms,
            "queue_limit": queue_limit,
        }
        self._mp = multiprocessing.get_context("fork")
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | str | None = None
        self._handles: list[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._rr = 0
        self._accept_thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> "tuple[str, int] | str":
        """The bound address: ``(host, port)`` for TCP (after ephemeral-port
        resolution), the socket path for unix."""
        if self._address is None:
            raise RuntimeError("pool is not started")
        return self._address

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (diagnostics/tests)."""
        with self._lock:
            return [handle.process.pid for handle in self._handles]

    def start(self) -> "WorkerPool":
        """Bind the listener, fork the workers, start accept + health loops."""
        if self._listener is not None:
            raise RuntimeError("pool already started")
        if self.tcp is not None:
            host, port = self.tcp
            self._listener = socket.create_server((host, port), backlog=128)
            bound = self._listener.getsockname()
            self._address = (bound[0], bound[1])
        else:
            path = Path(str(self.unix_socket))
            if path.is_socket():
                path.unlink()  # stale socket from a killed server
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(str(path))
            self._listener.listen(128)
            self._address = str(path)
        self._handles = []
        for index in range(self.workers):
            self._handles.append(self._spawn(index))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="estima-serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="estima-serve-health", daemon=True
        )
        self._health_thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop accepting, drain and join the workers; returns final stats."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()  # unblocks the accept loop
            except OSError:
                pass
        for thread in (self._accept_thread, self._health_thread):
            if thread is not None:
                thread.join(timeout=5)
        with self._lock:
            handles = list(self._handles)
        per_worker: list[dict[str, Any] | None] = []
        for handle in handles:
            reply = self._request(handle, "stop")
            if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "stopped":
                handle.last_stats = reply[1]
            per_worker.append(handle.last_stats)
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            self._close_handle(handle)
        if self.unix_socket is not None:
            try:
                Path(str(self.unix_socket)).unlink()
            except OSError:
                pass
        return {
            "workers": self.workers,
            "restarts": self.restarts,
            "merged": _merge_worker_stats(per_worker),
            "per_worker": per_worker,
        }

    # ------------------------------------------------------------------ #
    # Stats / health
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Per-worker and merged server counters (live poll over control pipes).

        A worker that fails to answer contributes its last known snapshot, so
        ``merged`` is always a lower bound during worker churn.
        """
        with self._lock:
            handles = list(self._handles)
        per_worker: list[dict[str, Any] | None] = []
        for handle in handles:
            reply = self._request(handle, "stats")
            if isinstance(reply, dict):
                handle.last_stats = reply
            per_worker.append(handle.last_stats)
        return {
            "workers": self.workers,
            "restarts": self.restarts,
            "merged": _merge_worker_stats(per_worker),
            "per_worker": per_worker,
        }

    def ping(self) -> list[bool]:
        """Health-check every worker over its control pipe."""
        with self._lock:
            handles = list(self._handles)
        return [self._request(handle, "ping") == ("pong", handle.index) for handle in handles]

    # ------------------------------------------------------------------ #
    # Internals (supervisor side)
    # ------------------------------------------------------------------ #
    def _spawn(self, index: int) -> _WorkerHandle:
        parent_sock, child_sock = socket.socketpair()
        parent_conn, child_conn = self._mp.Pipe()
        # Forked children inherit every supervisor fd.  The child must not
        # keep the listening socket (an orphaned worker would hold the port
        # bound after a supervisor crash) or its siblings' channels (a dead
        # sibling's socketpair would otherwise never read as closed).
        inherited_fds = []
        if self._listener is not None:
            inherited_fds.append(self._listener.fileno())
        for sibling in self._handles:
            for channel in (sibling.fd_channel, sibling.control):
                try:
                    inherited_fds.append(channel.fileno())
                except (OSError, ValueError):
                    pass  # already closed (e.g. the crashed slot being replaced)
        process = self._mp.Process(
            target=_worker_main,
            args=(index, child_sock, child_conn, self.config, self._serve_options,
                  tuple(inherited_fds), self.protocol),
            name=f"estima-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        child_conn.close()
        return _WorkerHandle(
            index=index, process=process, fd_channel=parent_sock, control=parent_conn
        )

    def _close_handle(self, handle: _WorkerHandle) -> None:
        for closeable in (handle.fd_channel, handle.control):
            try:
                closeable.close()
            except OSError:
                pass

    def _request(self, handle: _WorkerHandle, command: str) -> Any:
        """Send one control command and wait for its reply (None on failure)."""
        with handle.control_lock:
            try:
                handle.control.send(command)
                if handle.control.poll(_CONTROL_TIMEOUT_S):
                    return handle.control.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
        return None

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed: shutting down
            try:
                # On success the worker holds its own duplicate of the fd; on
                # failure (no live worker) closing makes the client see EOF.
                self._dispatch(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _dispatch(self, conn: socket.socket) -> bool:
        """Hand one accepted connection to a live worker (round-robin)."""
        with self._lock:
            handles = list(self._handles)
            start = self._rr
            self._rr = (self._rr + 1) % max(len(handles), 1)
        for offset in range(len(handles)):
            handle = handles[(start + offset) % len(handles)]
            if not handle.process.is_alive():
                sync_point("pool.dispatch.skip_dead")
                continue
            sync_point("pool.dispatch.pick")
            try:
                socket.send_fds(handle.fd_channel, [b"c"], [conn.fileno()])
                sync_point("pool.dispatch.sent")
                return True
            except OSError:
                sync_point("pool.dispatch.send_failed")
                continue  # worker died between the check and the send
        return False

    def _health_loop(self) -> None:
        crash_streaks: dict[int, int] = {}
        restart_not_before: dict[int, float] = {}
        while not self._stopping.wait(self.health_interval_s):
            with self._lock:
                handles = list(self._handles)
            for handle in handles:
                if handle.process.is_alive() or self._stopping.is_set():
                    continue
                if time.monotonic() < restart_not_before.get(handle.index, 0.0):
                    continue  # crash-looping slot: wait out the backoff
                # Crashed (not stopped by us): fork a replacement in its slot.
                uptime = time.monotonic() - handle.started_at
                if uptime < 5.0:
                    streak = crash_streaks.get(handle.index, 0) + 1
                else:
                    streak = 0
                crash_streaks[handle.index] = streak
                backoff = min(self.health_interval_s * (2 ** streak), 30.0)
                restart_not_before[handle.index] = time.monotonic() + backoff
                print(
                    f"estima serve: worker {handle.index} (pid {handle.process.pid}) "
                    f"died with exit code {handle.process.exitcode} after {uptime:.1f}s; "
                    f"restarting"
                    + (f" (crash streak {streak}, next retry backoff {backoff:.1f}s)"
                       if streak else ""),
                    file=sys.stderr,
                    flush=True,
                )
                sync_point("pool.health.respawn")
                with self._lock:
                    if self._handles[handle.index] is not handle:
                        continue  # already replaced
                    self._close_handle(handle)
                    self._handles[handle.index] = self._spawn(handle.index)
                    self.restarts += 1
                sync_point("pool.health.respawned")
                handle.process.join(timeout=1)


# --------------------------------------------------------------------------- #
# Worker side (runs in forked child processes)
# --------------------------------------------------------------------------- #


def _worker_main(index, fd_channel, control, config, serve_options,
                 inherited_fds=(), protocol="ndjson"):  # pragma: no cover
    # Forked child: coverage and the parent's signal expectations do not
    # apply here.  SIGINT belongs to the supervisor (workers are stopped over
    # the control pipe), so ignore it to avoid double-handling a Ctrl-C that
    # the terminal delivers to the whole process group.
    import asyncio
    import signal
    import traceback

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for fd in inherited_fds:
        try:
            os.close(fd)  # esp. the listening socket: see _spawn
        except OSError:
            pass
    try:
        asyncio.run(
            _worker_serve(index, fd_channel, control, config, serve_options, protocol)
        )
    except Exception:
        # Leave a trace before dying: the supervisor only sees the exit code.
        print(f"estima serve: worker {index} crashed:", file=sys.stderr, flush=True)
        traceback.print_exc()
        os._exit(1)  # supervisor's health loop forks a replacement


async def _worker_serve(index, fd_channel, control, config, serve_options,
                        protocol="ndjson"):  # pragma: no cover
    import asyncio

    from .server import PredictionServer

    server = PredictionServer(config, **serve_options)
    if protocol == "http":
        from .gateway import HttpGateway

        gateway = HttpGateway(server)
        handle_connection = gateway.handle_connection
        stats = gateway.stats  # one snapshot source: includes http counters
    else:
        handle_connection = server.handle_stream
        stats = server.stats
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    send_lock = threading.Lock()
    connections: set = set()

    def adopt(fd: int) -> None:
        sock = socket.socket(fileno=fd)

        async def serve_connection() -> None:
            try:
                reader, writer = await asyncio.open_connection(sock=sock)
            except OSError:
                sock.close()
                return
            await handle_connection(reader, writer)

        task = loop.create_task(serve_connection())
        connections.add(task)
        task.add_done_callback(connections.discard)

    def receive_fds() -> None:  # thread: blocking SCM_RIGHTS reads
        while True:
            try:
                msg, fds, _flags, _addr = socket.recv_fds(fd_channel, 1, 1)
            except OSError:
                break
            if not msg and not fds:
                break  # supervisor closed its end
            for fd in fds:
                loop.call_soon_threadsafe(adopt, fd)
        loop.call_soon_threadsafe(stop.set)

    def control_commands() -> None:  # thread: blocking pipe reads
        while True:
            try:
                command = control.recv()
            except (EOFError, OSError):
                break
            if command == "ping":
                with send_lock:
                    control.send(("pong", index))
            elif command == "stats":
                with send_lock:
                    control.send(stats())
            elif command == "stop":
                break
        loop.call_soon_threadsafe(stop.set)

    threading.Thread(target=receive_fds, daemon=True).start()
    threading.Thread(target=control_commands, daemon=True).start()

    await stop.wait()
    try:
        fd_channel.close()  # unblock the receiver thread
    except OSError:
        pass
    if connections:  # drain in-flight connections before reporting stats
        await asyncio.gather(*connections, return_exceptions=True)
    final = stats()
    await server.stop()
    with send_lock:
        try:
            control.send(("stopped", final))
        except (OSError, BrokenPipeError):
            pass
    # Give the supervisor a beat to read the pipe before the process exits.
    time.sleep(0.05)
