"""Batched prediction service: one computation per distinct extrapolation.

A campaign evaluates every workload against several prediction targets
(Table 4 scores "2 CPUs" and "4 CPUs" columns from the same measurements).
Computed naively that re-walks — and, if each target ran its own pipeline,
re-fits — the same curves once per target.  :class:`PredictionService`
batches such requests and deduplicates the shared work:

* requests are grouped by the *content* of their measurement set and config
  (via :func:`repro.engine.cache.measurements_digest` /
  :func:`~repro.engine.cache.config_digest`), never by object identity;
* each group computes one full pipeline at the group's largest target and
  serves smaller targets as slices of that curve — exactly the semantics of
  the seed campaign, which evaluated every target on the single
  largest-target prediction, so sliced results are bit-identical to it;
* repeated requests hit the service's prediction cache (statistics exposed
  via :meth:`PredictionService.cache_stats`), and the underlying kernel fits
  go through the engine's fit/extrapolation caches when
  ``config.use_fit_cache`` is set.

``share_max_target=False`` disables the slicing behaviour: every distinct
(measurements, config, target) triple is computed independently, which is
the right mode when per-target kernel *selection* must match a standalone
:class:`~repro.core.predictor.EstimaPredictor` run at that exact target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.config import EstimaConfig
from repro.core.measurement import MeasurementSet
from repro.core.predictor import EstimaPredictor
from repro.core.result import ScalabilityPrediction
from repro.core.time_extrapolation import TimeExtrapolation, TimeExtrapolationPrediction

from .cache import (
    ContentCache,
    attach_disk_tier,
    cache_stats,
    caches_enabled,
    config_digest,
    digest,
    measurements_digest,
)

__all__ = ["PredictionRequest", "PredictionService"]


@dataclass(frozen=True)
class PredictionRequest:
    """One prediction a batch caller wants.

    ``baseline=True`` requests the time-extrapolation baseline instead of the
    full ESTIMA pipeline.  ``config=None`` inherits the service's config.
    """

    measurements: MeasurementSet
    target_cores: int
    baseline: bool = False
    config: EstimaConfig | None = None

    def __post_init__(self) -> None:
        if self.target_cores < 1:
            raise ValueError("target_cores must be >= 1")


class PredictionService:
    """Serve (batched) scalability predictions from one cached substrate.

    Parameters
    ----------
    config:
        Default pipeline configuration for requests that do not carry their
        own.  ``config.use_fit_cache`` additionally enables the engine's
        fit/extrapolation caches around every computation.
    share_max_target:
        When true (default), requests that differ only in ``target_cores``
        share one computation at the largest target; smaller targets receive
        slices of it (seed-campaign semantics).  When false, each distinct
        target is computed independently.
    max_entries:
        Bound on the number of retained predictions.
    cache_dir:
        Directory of the persistent disk tier; overrides
        ``config.cache_dir``.  When either names a directory *and* the fit
        cache is enabled, the service attaches one shared
        :class:`~repro.engine.store.DiskStore` to its own prediction region
        and to the global fit/extrapolation regions, so a restarted service
        (or a different process) starts warm.  This is also how the
        ``estima serve`` worker pool shares work: every forked worker's
        service attaches the same directory, and the store's file-locked
        eviction keeps their concurrent writes within one byte budget.
    """

    def __init__(
        self,
        config: EstimaConfig | None = None,
        *,
        share_max_target: bool = True,
        max_entries: int = 4096,
        cache_dir: str | None = None,
    ) -> None:
        self.config = config or EstimaConfig()
        self.share_max_target = share_max_target
        self._cache = ContentCache("service", enabled=True, max_entries=max_entries)
        resolved_dir = cache_dir or (
            self.config.cache_dir if self.config.use_fit_cache else None
        )
        if resolved_dir:
            store = attach_disk_tier(
                resolved_dir, max_bytes=self.config.cache_max_bytes
            )
            self._cache.attach_store(store)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def predict(
        self,
        measurements: MeasurementSet,
        target_cores: int,
        *,
        baseline: bool = False,
        config: EstimaConfig | None = None,
    ) -> ScalabilityPrediction | TimeExtrapolationPrediction:
        """Single-request convenience wrapper around :meth:`predict_batch`."""
        [prediction] = self.predict_batch(
            [PredictionRequest(measurements, target_cores, baseline=baseline, config=config)]
        )
        return prediction

    def predict_batch(
        self, requests: Iterable[PredictionRequest]
    ) -> list[ScalabilityPrediction | TimeExtrapolationPrediction]:
        """Serve every request, computing each distinct pipeline only once.

        Results come back in request order.  Within a batch, requests sharing
        measurements and config are served from one computation at the
        group's largest target (unless ``share_max_target`` is off); across
        batches the service's prediction cache deduplicates further.
        """
        requests = list(requests)
        groups: dict[str, list[int]] = {}
        keys: list[str] = []
        for index, request in enumerate(requests):
            if not isinstance(request, PredictionRequest):
                raise TypeError(f"expected PredictionRequest, got {type(request).__name__}")
            key = self._group_key(request)
            keys.append(key)
            groups.setdefault(key, []).append(index)

        results: dict[int, ScalabilityPrediction | TimeExtrapolationPrediction] = {}
        for key, indices in groups.items():
            group_target = max(requests[i].target_cores for i in indices)
            # Descending-target order makes the largest request populate the
            # cache and every smaller one register as a dedup hit.
            for i in sorted(indices, key=lambda i: -requests[i].target_cores):
                request = requests[i]
                full = self._cache.get_or_compute(
                    key,
                    lambda req=request, tgt=group_target: self._compute(req, tgt),
                    valid=lambda pred, tgt=group_target: pred.target_cores >= tgt,
                )
                results[i] = _slice_prediction(full, request.target_cores)
        return [results[i] for i in range(len(requests))]

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Per-tier hit/miss counters: this service's dedup cache + the global regions."""
        stats = cache_stats()
        stats["prediction"] = self._cache.stats_dict()
        return stats

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _config_for(self, request: PredictionRequest) -> EstimaConfig:
        return request.config or self.config

    def _group_key(self, request: PredictionRequest) -> str:
        config = self._config_for(request)
        parts = [
            "baseline" if request.baseline else "estima",
            measurements_digest(request.measurements),
            config_digest(config),
        ]
        if not self.share_max_target:
            parts.append(int(request.target_cores))
        return digest(*parts)

    def _compute(
        self, request: PredictionRequest, target_cores: int
    ) -> ScalabilityPrediction | TimeExtrapolationPrediction:
        config = self._config_for(request)
        if request.baseline:
            run = lambda: TimeExtrapolation(config).predict(  # noqa: E731
                request.measurements, target_cores=target_cores
            )
        else:
            run = lambda: EstimaPredictor(config).predict(  # noqa: E731
                request.measurements, target_cores=target_cores
            )
        if config.use_fit_cache:
            # Enable (and restore) the global fit/extrapolation regions; a
            # config without the flag leaves whatever the process set globally.
            with caches_enabled(True):
                return run()
        return run()


def _slice_prediction(
    prediction: ScalabilityPrediction | TimeExtrapolationPrediction, target_cores: int
) -> ScalabilityPrediction | TimeExtrapolationPrediction:
    """Restrict a prediction to ``target_cores`` (its grid is always 1..T).

    The sliced arrays are views onto the cached prediction's arrays; both are
    treated as immutable throughout the codebase.
    """
    if target_cores >= prediction.target_cores:
        return prediction
    n = int(target_cores)
    fields = {
        "target_cores": n,
        "prediction_cores": prediction.prediction_cores[:n],
        "predicted_times": prediction.predicted_times[:n],
    }
    if isinstance(prediction, ScalabilityPrediction):
        fields["stalls_per_core"] = prediction.stalls_per_core[:n]
    return replace(prediction, **fields)
