"""Execution engine: the shared substrate every ESTIMA pipeline runs on.

The engine layer sits between :mod:`repro.core` (the numerics) and
:mod:`repro.runner` / :mod:`repro.cli` (the workflows) and provides three
pieces:

* :mod:`repro.engine.executor` — pluggable :class:`Executor` backends
  (``serial`` / ``parallel``) that map independent experiment and fit tasks
  with deterministic result ordering;
* :mod:`repro.engine.cache` — content-addressed memoization of
  ``fit_kernel`` / ``extrapolate_series`` / prediction results with hit/miss
  statistics;
* :mod:`repro.engine.service` — a batched :class:`PredictionService` that
  deduplicates the shared extrapolation work behind the multiple targets a
  campaign evaluates;
* :mod:`repro.engine.server` / :mod:`repro.engine.pool` — the serving
  front-end: an asyncio NDJSON :class:`PredictionServer` (stdio, unix
  socket or TCP; micro-batching, backpressure, streamed campaigns) and the
  pre-fork :class:`WorkerPool` supervisor that puts N of them behind one
  listening socket.

Picking a backend
-----------------
The serial path is the default and reproduces the seed numerics bit for bit.
Parallel and cached paths are opt-in and verified equal by the test suite:

* per run: ``EstimaConfig(executor="parallel", max_workers=8,
  use_fit_cache=True)`` or an ``Executor`` instance passed to
  ``ErrorCampaign`` / ``Experiment.run_many``;
* per process: ``ESTIMA_EXECUTOR=parallel[:N]`` and ``ESTIMA_FIT_CACHE=1``;
* per command: ``estima campaign --executor parallel --fit-cache``.

:mod:`repro.core.fitting` and :mod:`repro.core.regression` consult the cache
layer directly, so this package's ``__init__`` must stay importable from the
core layer: it imports only the dependency-free ``cache`` and ``executor``
modules eagerly and loads ``service`` (which depends on core) lazily.
"""

from .cache import (
    EXTRAPOLATION_CACHE,
    FIT_CACHE,
    CacheStats,
    ContentCache,
    attach_disk_tier,
    cache_stats,
    caches_enabled,
    clear_caches,
    detach_disk_tier,
    get_cache,
    reset_cache_stats,
    set_caches_enabled,
)
from .executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    active_fit_pool,
    executor_for_config,
    fit_pool_for_config,
    get_executor,
    parse_executor_spec,
)
from .pool import WorkerPool, parse_serve_workers, parse_tcp_address, serve_workers_from_env
from .store import DiskStore, default_cache_dir, store_for

__all__ = [
    "CacheStats",
    "ContentCache",
    "DiskStore",
    "EXTRAPOLATION_CACHE",
    "Executor",
    "FIT_CACHE",
    "ParallelExecutor",
    "PredictionRequest",
    "PredictionServer",
    "PredictionService",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerPool",
    "active_fit_pool",
    "attach_disk_tier",
    "cache_stats",
    "caches_enabled",
    "clear_caches",
    "default_cache_dir",
    "detach_disk_tier",
    "executor_for_config",
    "fit_pool_for_config",
    "get_cache",
    "get_executor",
    "parse_executor_spec",
    "parse_serve_workers",
    "parse_tcp_address",
    "reset_cache_stats",
    "serve_workers_from_env",
    "set_caches_enabled",
    "store_for",
]

_LAZY_SERVICE_EXPORTS = ("PredictionService", "PredictionRequest")
_LAZY_SERVER_EXPORTS = ("PredictionServer",)


def __getattr__(name: str):
    # ``service`` and ``server`` import repro.core, which imports the cache
    # module above; loading them lazily keeps core -> engine acyclic.
    if name in _LAZY_SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    if name in _LAZY_SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
