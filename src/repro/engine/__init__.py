"""Execution engine: the shared substrate every ESTIMA pipeline runs on.

The engine layer sits between :mod:`repro.core` (the numerics) and
:mod:`repro.runner` / :mod:`repro.cli` (the workflows) and provides three
pieces:

* :mod:`repro.engine.executor` — pluggable :class:`Executor` backends
  (``serial`` / ``parallel``) that map independent experiment and fit tasks
  with deterministic result ordering;
* :mod:`repro.engine.cache` — content-addressed memoization of
  ``fit_kernel`` / ``extrapolate_series`` / prediction results with hit/miss
  statistics;
* :mod:`repro.engine.service` — a batched :class:`PredictionService` that
  deduplicates the shared extrapolation work behind the multiple targets a
  campaign evaluates.

Picking a backend
-----------------
The serial path is the default and reproduces the seed numerics bit for bit.
Parallel and cached paths are opt-in and verified equal by the test suite:

* per run: ``EstimaConfig(executor="parallel", max_workers=8,
  use_fit_cache=True)`` or an ``Executor`` instance passed to
  ``ErrorCampaign`` / ``Experiment.run_many``;
* per process: ``ESTIMA_EXECUTOR=parallel[:N]`` and ``ESTIMA_FIT_CACHE=1``;
* per command: ``estima campaign --executor parallel --fit-cache``.

:mod:`repro.core.fitting` and :mod:`repro.core.regression` consult the cache
layer directly, so this package's ``__init__`` must stay importable from the
core layer: it imports only the dependency-free ``cache`` and ``executor``
modules eagerly and loads ``service`` (which depends on core) lazily.
"""

from .cache import (
    EXTRAPOLATION_CACHE,
    FIT_CACHE,
    CacheStats,
    ContentCache,
    cache_stats,
    caches_enabled,
    clear_caches,
    get_cache,
    reset_cache_stats,
    set_caches_enabled,
)
from .executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_for_config,
    get_executor,
)

__all__ = [
    "CacheStats",
    "ContentCache",
    "EXTRAPOLATION_CACHE",
    "Executor",
    "FIT_CACHE",
    "ParallelExecutor",
    "PredictionRequest",
    "PredictionService",
    "SerialExecutor",
    "cache_stats",
    "caches_enabled",
    "clear_caches",
    "executor_for_config",
    "get_cache",
    "get_executor",
    "reset_cache_stats",
    "set_caches_enabled",
]

_LAZY_SERVICE_EXPORTS = ("PredictionService", "PredictionRequest")


def __getattr__(name: str):
    # ``service`` imports repro.core, which imports the cache module above;
    # loading it lazily keeps the core -> engine dependency acyclic.
    if name in _LAZY_SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
