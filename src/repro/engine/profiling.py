"""Named wall/CPU timers and call counters for the fit engine's hot path.

ROADMAP item 3 ("vectorize the fit grid itself") follows the paper's
measure-first discipline: before restructuring the prefix-sweep hot path we
need to know where fit time actually goes, and after restructuring we need
the claim recorded rather than asserted.  This module is that instrument — a
tiny, dependency-free profiler the numerical layers wrap around their stages:

* ``design_solve`` — direct least-squares solves of the linear-in-parameters
  kernels (``CubicLn``/``Poly25``);
* ``nonlinear_solve`` — iterative LM/TRF solves of the rational/exponential
  kernels (the dominant cost of a cold campaign);
* ``start_screen`` — the vectorized engine's batched multi-start screening
  (:mod:`repro.core.fastfit`, opt-in via ``ESTIMA_FIT_SCREEN=prune``);
* ``realism_screen`` / ``checkpoint_score`` — the Section-3.1.2 candidate
  screening and checkpoint-RMSE scoring.

Counters (``PROFILER.count``) record event totals with no time attached,
e.g. ``nonlinear_starts_pruned`` — how many iterative solves the vectorized
grid avoided.

The global :data:`PROFILER` accumulates monotonically for the process, like
the cache counters in :mod:`repro.engine.cache`.  Snapshots are plain nested
dicts of numbers, so they flatten into ``/metrics`` gauges through
:func:`repro.engine.gateway.flatten_stats` unchanged; per-command deltas
(``estima --stats``, ``estima profile``) are taken with
:func:`profile_delta` around the work.

This module deliberately imports nothing from the rest of :mod:`repro`, so
the core layer can depend on it without cycles (same posture as
:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["Profiler", "PROFILER", "profile_delta"]


class Profiler:
    """Thread-safe accumulator of named stage timings and event counters.

    Each stage accumulates three monotone totals: ``calls`` (times entered),
    ``wall_s`` (elapsed wall-clock seconds, :func:`time.perf_counter`) and
    ``cpu_s`` (CPU seconds of the calling thread, :func:`time.thread_time`,
    so time spent blocked — e.g. waiting on the LM lock — shows up as the
    gap between the two).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, list[float]] = {}  # name -> [calls, wall_s, cpu_s]

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (reentrant, thread-safe)."""
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        try:
            yield
        finally:
            self._add(name, 1, time.perf_counter() - wall0, time.thread_time() - cpu0)

    def count(self, name: str, n: int = 1) -> None:
        """Record ``n`` occurrences of an event with no time attached."""
        self._add(name, n, 0.0, 0.0)

    def _add(self, name: str, calls: int, wall_s: float, cpu_s: float) -> None:
        with self._lock:
            entry = self._stages.get(name)
            if entry is None:
                entry = self._stages[name] = [0, 0.0, 0.0]
            entry[0] += calls
            entry[1] += wall_s
            entry[2] += cpu_s

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Numeric-only copy of every stage: ``{name: {calls, wall_s, cpu_s}}``.

        Every leaf is a number, so the snapshot drops straight into
        ``/metrics`` via ``flatten_stats`` without a rendering shim.
        """
        with self._lock:
            return {
                name: {"calls": entry[0], "wall_s": entry[1], "cpu_s": entry[2]}
                for name, entry in sorted(self._stages.items())
            }

    def reset(self) -> None:
        """Zero all stages (used by tests and ``estima profile`` runs)."""
        with self._lock:
            self._stages.clear()


#: Process-global profiler consulted by the core fitting/regression layers.
PROFILER = Profiler()


def profile_delta(
    before: Mapping[str, Mapping[str, float]],
    after: Mapping[str, Mapping[str, float]],
) -> dict[str, dict[str, float]]:
    """Per-stage ``after - before`` of two snapshots, dropping untouched stages.

    The global profiler accumulates for the process lifetime; a CLI command
    reporting "what did *this* run cost" brackets the work with two
    snapshots and publishes the difference.
    """
    delta: dict[str, dict[str, float]] = {}
    for name, stats in after.items():
        base = before.get(name, {})
        entry = {key: value - base.get(key, 0) for key, value in stats.items()}
        if entry.get("calls"):
            delta[name] = entry
    return delta
