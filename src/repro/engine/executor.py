"""Pluggable execution backends for experiment and fit fan-out.

ESTIMA's pipeline is embarrassingly parallel at two levels: the workloads of a
campaign are independent of each other, and so are the multi-start kernel fits
inside one prediction.  An :class:`Executor` abstracts over *how* such a batch
of independent tasks is mapped:

* :class:`SerialExecutor` — a plain in-process loop; the default, and the
  reference semantics every other backend must reproduce bit-identically;
* :class:`ThreadExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  fan-out.  Kernel fitting is numpy/scipy-bound and releases the GIL, so this
  backend parallelises at the *fit/kernel* level rather than the workload
  level: when it is the selected backend, :mod:`repro.core.regression` maps
  the (prefix, kernel) fit grid of every extrapolation through the shared fit
  pool (see :func:`fit_pool_for_config`), while workloads stay serial
  in-process and share one prediction service;
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out with deterministic result ordering (results always come back in
  task-submission order, regardless of completion order).

A fourth backend lives in the cluster package:
:class:`~repro.engine.cluster.remote.RemoteExecutor`
(``remote:<host:port,...>``) ships registered tasks to downstream ``estima
serve`` hosts over NDJSON and is resolved here like any other spec.

Backends are chosen per run via ``EstimaConfig(executor=...)``, the
``ESTIMA_EXECUTOR`` environment variable (``serial``, ``threads[:N]``,
``parallel[:N]`` or ``remote:<host:port,...>``), or by passing an
:class:`Executor` instance directly to the runner layer.  Task functions and
task payloads handed to :class:`ParallelExecutor` must be picklable
(module-level functions and plain dataclasses); the runner layer ships
workload *names* rather than workload objects for exactly this reason.

This module imports nothing from the rest of :mod:`repro` eagerly (the
``remote`` spec lazily pulls in :mod:`repro.engine.cluster.remote`, itself a
leaf-only importer), so any layer can use it without cycles.
"""

from __future__ import annotations

import os
import threading
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, TypeVar

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ParallelExecutor",
    "parse_executor_spec",
    "get_executor",
    "executor_for_config",
    "fit_pool_for_config",
    "active_fit_pool",
]

#: Environment variable naming the default backend (``serial`` when unset).
ENV_EXECUTOR = "ESTIMA_EXECUTOR"

#: Backend names accepted by :func:`parse_executor_spec`.
EXECUTOR_NAMES = ("serial", "threads", "parallel", "remote")

T = TypeVar("T")
R = TypeVar("R")


class Executor(ABC):
    """Maps a function over independent tasks with deterministic ordering."""

    #: Short backend identifier used in reports and CLI output.
    name: str = "abstract"
    #: Whether task functions/payloads must be picklable (process backends).
    requires_pickling: bool = False

    def __init__(self) -> None:
        self.tasks_mapped = 0
        self.batches_mapped = 0

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results are in input order."""

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Yield results in input order as they become available.

        Streaming counterpart of :meth:`map` — the caller observes result
        ``i`` without waiting for results ``i+1..n`` (used by streamed
        campaigns over the serve protocol).  The base implementation is
        eager; backends override it with genuinely incremental versions.
        Results are identical to :meth:`map` in value and order.
        """
        yield from self.map(fn, items)

    def _count(self, n_tasks: int) -> None:
        self.tasks_mapped += n_tasks
        self.batches_mapped += 1

    def stats(self) -> dict[str, object]:
        """Executor counters for ``--stats`` reporting (JSON-friendly)."""
        return {
            "backend": self.name,
            "tasks": self.tasks_mapped,
            "batches": self.batches_mapped,
        }

    def close(self) -> None:
        """Release backend resources (no-op for stateless backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """The reference backend: a plain loop in the calling process."""

    name = "serial"
    requires_pickling = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        tasks = list(items)
        self._count(len(tasks))
        return [fn(item) for item in tasks]

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        tasks = list(items)
        self._count(len(tasks))
        for item in tasks:
            yield fn(item)


class ThreadExecutor(Executor):
    """Thread-pool fan-out for GIL-releasing (numpy/scipy-bound) tasks.

    The pool is created lazily and reused across :meth:`map` calls, so the
    many small fit batches of one prediction do not pay thread start-up each
    time; :meth:`close` shuts it down.  Results come back in submission
    order.  ``max_workers=0`` (the default) sizes the pool to the machine's
    CPU count.
    """

    name = "threads"
    requires_pickling = False

    def __init__(self, max_workers: int = 0) -> None:
        super().__init__()
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        self.max_workers = max_workers or os.cpu_count() or 1
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="estima-fit"
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        tasks = list(items)
        self._count(len(tasks))
        if len(tasks) <= 1:
            return [fn(item) for item in tasks]
        # Executor.map preserves input order even when tasks finish out of
        # order, which keeps fit candidate lists (and campaign rows)
        # deterministic.
        return list(self._ensure_pool().map(fn, tasks))

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        tasks = list(items)
        self._count(len(tasks))
        if len(tasks) <= 1:
            for item in tasks:
                yield fn(item)
            return
        yield from self._ensure_pool().map(fn, tasks)

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ParallelExecutor(Executor):
    """Process-pool fan-out with results in deterministic submission order.

    ``max_workers=0`` (the default) sizes the pool to the machine's CPU count.
    If a process pool cannot be created or dies (restricted sandboxes,
    fork-less platforms), the batch transparently falls back to serial
    execution — results are identical either way, only wall time differs; the
    ``fell_back`` flag records that it happened.
    """

    name = "parallel"
    requires_pickling = True

    def __init__(self, max_workers: int = 0) -> None:
        super().__init__()
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.fell_back = False

    def stats(self) -> dict[str, object]:
        stats = super().stats()
        stats["workers"] = self.max_workers
        stats["fell_back"] = self.fell_back
        return stats

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        tasks = list(items)
        self._count(len(tasks))
        if len(tasks) <= 1:
            return [fn(item) for item in tasks]
        chunksize = max(1, len(tasks) // (self.max_workers * 4))
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                # pool.map preserves input order even when tasks finish out of
                # order, which keeps campaign rows deterministic.
                return list(pool.map(fn, tasks, chunksize=chunksize))
        except (OSError, BrokenProcessPool) as exc:
            self.fell_back = True
            warnings.warn(
                f"ParallelExecutor could not use a process pool ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in tasks]

    def imap(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Stream results in submission order as workers finish them.

        ``chunksize=1`` so the first result surfaces as soon as any worker
        completes task 0 — the streaming path trades a little IPC overhead
        for latency.  If the pool cannot be created or breaks mid-stream the
        remaining tasks fall back to serial execution; already-yielded
        results are never recomputed or duplicated.
        """
        tasks = list(items)
        self._count(len(tasks))
        if len(tasks) <= 1:
            for item in tasks:
                yield fn(item)
            return
        done = 0
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                for result in pool.map(fn, tasks, chunksize=1):
                    done += 1
                    yield result
            return
        except (OSError, BrokenProcessPool) as exc:
            self.fell_back = True
            warnings.warn(
                f"ParallelExecutor could not use a process pool ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
        for item in tasks[done:]:
            yield fn(item)


def parse_executor_spec(spec: str) -> tuple[str, int | None]:
    """Parse ``"serial"`` / ``"threads[:N]"`` / ``"parallel[:N]"`` /
    ``"remote:<host:port,...>"`` strictly.

    Returns ``(backend, workers)`` where ``workers`` is ``None`` when no
    ``:<n>`` suffix was given (always ``None`` for ``remote``, whose suffix
    is a backend host list, validated here, not a worker count).  Raises a
    clear ``ValueError`` for unknown backends, non-integer suffixes and
    suffixes on the serial backend — the validation both
    :func:`get_executor` and ``EstimaConfig`` construction rely on, so a
    malformed ``ESTIMA_EXECUTOR`` fails fast instead of deep inside the
    engine.
    """
    head, head_sep, rest = str(spec).strip().partition(":")
    if head.strip().lower() == "remote":
        # The suffix is a host list (it contains colons itself), so the
        # lowercase/worker-count path below must not touch it.
        if not head_sep or not rest.strip():
            raise ValueError(
                f"executor 'remote' needs a backend list, e.g. 'remote:host:7070', got {spec!r}"
            )
        # Validate the host list here (cluster imports only leaf modules, so
        # this lazy import cannot cycle); the spec string stays the source of
        # truth and get_executor re-parses it.
        from .cluster.remote import parse_backends

        parse_backends(rest)
        return "remote", None
    name, sep, suffix = spec.strip().lower().partition(":")
    if name not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {spec!r}; expected 'serial', 'threads[:N]', "
            "'parallel[:N]' or 'remote:<host:port,...>'"
        )
    if not sep:
        return name, None
    if name == "serial":
        raise ValueError(f"executor 'serial' takes no worker count, got {spec!r}")
    try:
        workers = int(suffix)
    except ValueError:
        raise ValueError(f"invalid worker count in executor spec {spec!r}") from None
    if workers < 0:
        raise ValueError(f"worker count must be >= 0 in executor spec {spec!r}")
    return name, workers


def get_executor(
    spec: "Executor | str | None" = None, *, max_workers: int = 0
) -> Executor:
    """Resolve an executor from an instance, a backend name, or the environment.

    ``spec`` may be an :class:`Executor` (returned as-is), a name —
    ``"serial"``, ``"threads[:N]"``, ``"parallel[:N]"`` or
    ``"remote:<host:port,...>"`` — or ``None``, in which case the
    ``ESTIMA_EXECUTOR`` environment variable decides (default ``serial``).
    ``max_workers`` applies to the pool backends and is overridden by an
    explicit ``:<n>`` suffix.
    """
    if isinstance(spec, Executor):
        return spec
    text = spec or os.environ.get(ENV_EXECUTOR) or "serial"
    name, suffix_workers = parse_executor_spec(text)
    if name == "remote":
        from .cluster.remote import remote_executor_from_spec

        return remote_executor_from_spec(text)
    workers = suffix_workers if suffix_workers is not None else max_workers
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadExecutor(max_workers=workers)
    return ParallelExecutor(max_workers=workers)


def executor_for_config(config: object, override: "Executor | str | None" = None) -> Executor:
    """The executor a run should use, honouring explicit overrides first.

    Resolution order: ``override`` (instance or name) → ``config.executor``
    when it names a non-default backend → ``ESTIMA_EXECUTOR`` → serial.  A
    config left at its ``"serial"`` default does not shadow the environment
    variable, so ``ESTIMA_EXECUTOR=parallel`` accelerates unmodified scripts.
    ``config`` is duck typed so this module stays independent of
    :mod:`repro.core`.
    """
    workers = int(getattr(config, "max_workers", 0) or 0)
    if override is not None:
        return get_executor(override, max_workers=workers)
    spec = getattr(config, "executor", None)
    if spec in (None, "serial"):
        spec = None  # fall through to ESTIMA_EXECUTOR, default serial
    return get_executor(spec, max_workers=workers)


# --------------------------------------------------------------------------- #
# Fit-level thread pool
# --------------------------------------------------------------------------- #

_FIT_POOL: ThreadExecutor | None = None
_FIT_POOL_LOCK = threading.Lock()
_ACTIVE_FIT_POOL = threading.local()


def _shared_fit_pool(max_workers: int) -> ThreadExecutor:
    """The process-global thread pool used for fit-level fan-out.

    One shared pool (first creation fixes its size) instead of a pool per
    extrapolation call: predictions issue many small fit batches and must not
    pay pool start-up per batch, and a single bounded pool caps total thread
    count no matter how many predictions run concurrently.
    """
    global _FIT_POOL
    with _FIT_POOL_LOCK:
        if _FIT_POOL is None:
            _FIT_POOL = ThreadExecutor(max_workers=max_workers)
        return _FIT_POOL


class active_fit_pool:
    """Context manager pinning the fit pool for the current thread.

    The runner layer uses this to route kernel fits through an explicitly
    constructed :class:`ThreadExecutor` (e.g. the campaign backend) without
    touching the config: ``with active_fit_pool(executor): ...``.
    """

    def __init__(self, pool: ThreadExecutor | None) -> None:
        self.pool = pool
        self._token: object = None

    def __enter__(self) -> "active_fit_pool":
        self._token = getattr(_ACTIVE_FIT_POOL, "pool", None)
        _ACTIVE_FIT_POOL.pool = self.pool
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE_FIT_POOL.pool = self._token


def fit_pool_for_config(config: object) -> ThreadExecutor | None:
    """The thread pool kernel fits should fan out over, or ``None`` for serial.

    Consulted by :func:`repro.core.regression.candidate_fits`.  Resolution:
    an :class:`active_fit_pool` context pinned by the runner layer wins;
    otherwise a ``threads[:N]`` backend named by ``config.executor`` or (when
    the config is at its serial default) ``ESTIMA_EXECUTOR`` selects the
    shared process-global pool.  Process and serial backends return ``None``
    — their parallelism (if any) lives at the workload level.
    """
    pinned = getattr(_ACTIVE_FIT_POOL, "pool", None)
    if pinned is not None:
        return pinned
    spec = getattr(config, "executor", None)
    if spec in (None, "serial"):
        spec = os.environ.get(ENV_EXECUTOR) or "serial"
    try:
        name, suffix_workers = parse_executor_spec(spec)
    except ValueError:
        return None  # strict validation happens at config construction
    if name != "threads":
        return None
    workers = suffix_workers if suffix_workers is not None else int(
        getattr(config, "max_workers", 0) or 0
    )
    return _shared_fit_pool(workers)
