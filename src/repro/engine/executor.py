"""Pluggable execution backends for experiment and fit fan-out.

ESTIMA's pipeline is embarrassingly parallel at two levels: the workloads of a
campaign are independent of each other, and so are the multi-start kernel fits
inside one prediction.  An :class:`Executor` abstracts over *how* such a batch
of independent tasks is mapped:

* :class:`SerialExecutor` — a plain in-process loop; the default, and the
  reference semantics every other backend must reproduce bit-identically;
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out with deterministic result ordering (results always come back in
  task-submission order, regardless of completion order).

Backends are chosen per run via ``EstimaConfig(executor=...)``, the
``ESTIMA_EXECUTOR`` environment variable (``serial``, ``parallel`` or
``parallel:<workers>``), or by passing an :class:`Executor` instance directly
to the runner layer.  Task functions and task payloads handed to
:class:`ParallelExecutor` must be picklable (module-level functions and plain
dataclasses); the runner layer ships workload *names* rather than workload
objects for exactly this reason.

This module imports nothing from the rest of :mod:`repro`, so any layer can
use it without cycles.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, TypeVar

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "executor_for_config",
]

#: Environment variable naming the default backend (``serial`` when unset).
ENV_EXECUTOR = "ESTIMA_EXECUTOR"

T = TypeVar("T")
R = TypeVar("R")


class Executor(ABC):
    """Maps a function over independent tasks with deterministic ordering."""

    #: Short backend identifier used in reports and CLI output.
    name: str = "abstract"
    #: Whether task functions/payloads must be picklable (process backends).
    requires_pickling: bool = False

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results are in input order."""

    def close(self) -> None:
        """Release backend resources (no-op for stateless backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """The reference backend: a plain loop in the calling process."""

    name = "serial"
    requires_pickling = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """Process-pool fan-out with results in deterministic submission order.

    ``max_workers=0`` (the default) sizes the pool to the machine's CPU count.
    If a process pool cannot be created or dies (restricted sandboxes,
    fork-less platforms), the batch transparently falls back to serial
    execution — results are identical either way, only wall time differs; the
    ``fell_back`` flag records that it happened.
    """

    name = "parallel"
    requires_pickling = True

    def __init__(self, max_workers: int = 0) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.fell_back = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        tasks = list(items)
        if len(tasks) <= 1:
            return [fn(item) for item in tasks]
        chunksize = max(1, len(tasks) // (self.max_workers * 4))
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                # pool.map preserves input order even when tasks finish out of
                # order, which keeps campaign rows deterministic.
                return list(pool.map(fn, tasks, chunksize=chunksize))
        except (OSError, BrokenProcessPool) as exc:
            self.fell_back = True
            warnings.warn(
                f"ParallelExecutor could not use a process pool ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in tasks]


def get_executor(
    spec: "Executor | str | None" = None, *, max_workers: int = 0
) -> Executor:
    """Resolve an executor from an instance, a backend name, or the environment.

    ``spec`` may be an :class:`Executor` (returned as-is), a name —
    ``"serial"``, ``"parallel"`` or ``"parallel:<n>"`` — or ``None``, in which
    case the ``ESTIMA_EXECUTOR`` environment variable decides (default
    ``serial``).  ``max_workers`` applies to the parallel backend and is
    overridden by an explicit ``parallel:<n>`` suffix.
    """
    if isinstance(spec, Executor):
        return spec
    name = (spec or os.environ.get(ENV_EXECUTOR) or "serial").strip().lower()
    workers = max_workers
    if name.startswith("parallel:"):
        name, _, suffix = name.partition(":")
        try:
            workers = int(suffix)
        except ValueError:
            raise ValueError(f"invalid worker count in executor spec {spec!r}") from None
    if name == "serial":
        return SerialExecutor()
    if name == "parallel":
        return ParallelExecutor(max_workers=workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'parallel' or 'parallel:<n>'"
    )


def executor_for_config(config: object, override: "Executor | str | None" = None) -> Executor:
    """The executor a run should use, honouring explicit overrides first.

    Resolution order: ``override`` (instance or name) → ``config.executor``
    when it names a non-default backend → ``ESTIMA_EXECUTOR`` → serial.  A
    config left at its ``"serial"`` default does not shadow the environment
    variable, so ``ESTIMA_EXECUTOR=parallel`` accelerates unmodified scripts.
    ``config`` is duck typed so this module stays independent of
    :mod:`repro.core`.
    """
    workers = int(getattr(config, "max_workers", 0) or 0)
    if override is not None:
        return get_executor(override, max_workers=workers)
    spec = getattr(config, "executor", None)
    if spec in (None, "serial"):
        spec = None  # fall through to ESTIMA_EXECUTOR, default serial
    return get_executor(spec, max_workers=workers)
