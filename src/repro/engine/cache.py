"""Content-addressed memoization for fits, extrapolations and predictions.

ESTIMA's cost is dominated by multi-start non-linear least squares: a single
campaign re-fits the same (kernel, series) pairs many times — the
``allow_negative`` fallback in :func:`repro.core.regression.extrapolate_series`
re-runs every fit of the first pass, and a multi-target campaign asks for the
same extrapolations once per target.  This module provides the shared caching
substrate the engine layer uses to pay for each fit exactly once:

* :class:`ContentCache` — a bounded, thread-safe, **tiered** memo table
  addressed by a content digest of its inputs (never by object identity).
  Tier 1 is an in-process LRU dict; an optional tier 2 is a persistent
  :class:`~repro.engine.store.DiskStore` that survives across processes and
  runs (attach with :func:`attach_disk_tier`).  Hit/miss statistics are kept
  per tier;
* global cache *regions* (``"fit"``, ``"extrapolation"``) that
  :mod:`repro.core.fitting` and :mod:`repro.core.regression` consult when
  enabled, plus per-service regions created by
  :class:`repro.engine.service.PredictionService`;
* key builders that hash the actual numerical content (kernel name, core
  counts, value bytes, relevant config fields), so measurement sets loaded
  from disk hit the same entries as freshly simulated ones.

All cached values (:class:`~repro.core.fitting.FittedFunction`,
:class:`~repro.core.regression.ExtrapolationResult`,
:class:`~repro.core.result.ScalabilityPrediction`) are frozen dataclasses, so
sharing them between callers is safe.  Caching is **off by default** — the
default serial path computes exactly what the seed code computed — and is
switched on per run via ``EstimaConfig(use_fit_cache=True)``, the
``ESTIMA_FIT_CACHE=1`` environment variable, or the :func:`caches_enabled`
context manager.  The disk tier is attached per run via
``EstimaConfig(cache_dir=...)`` / ``ESTIMA_CACHE_DIR`` and managed with the
``estima cache`` CLI subcommand.

This module deliberately imports nothing from the rest of :mod:`repro`
(``store`` is a sibling leaf module) so the core layer can depend on it
without cycles.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from .store import DiskStore, store_for

__all__ = [
    "CacheStats",
    "ContentCache",
    "FIT_CACHE",
    "EXTRAPOLATION_CACHE",
    "get_cache",
    "cache_stats",
    "clear_caches",
    "reset_cache_stats",
    "set_caches_enabled",
    "caches_enabled",
    "attach_disk_tier",
    "detach_disk_tier",
    "disk_tier",
    "parse_bool_env",
    "digest",
    "fit_key",
    "extrapolation_key",
    "measurements_digest",
    "config_digest",
]

#: Environment variable that enables the fit/extrapolation caches at import.
ENV_FIT_CACHE = "ESTIMA_FIT_CACHE"

_TRUE_TOKENS = frozenset({"1", "true", "yes", "on"})
_FALSE_TOKENS = frozenset({"", "0", "false", "no", "off"})


def parse_bool_env(name: str, value: str | None, *, strict: bool = True) -> bool:
    """Parse a boolean environment value (``1/true/yes/on`` vs ``0/false/no/off``).

    With ``strict`` (the default, used at config construction) an
    unrecognised token raises a clear ``ValueError`` naming the variable
    instead of silently picking a side and failing deep inside the engine.
    Non-strict mode (import time, where raising would break ``import repro``)
    treats unrecognised tokens as false.
    """
    token = (value or "").strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    if strict:
        raise ValueError(
            f"invalid {name}={value!r}: expected one of "
            f"{sorted(_TRUE_TOKENS)} or {sorted(_FALSE_TOKENS - {''})}"
        )
    return False


@dataclass
class CacheStats:
    """Hit/miss counters of one cache region."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


_SENTINEL = object()


class ContentCache:
    """A bounded, thread-safe, content-addressed memo table with two tiers.

    Keys are opaque digests produced by the key builders below; values are
    immutable result objects.  Tier 1 is an in-process dict with
    least-recently-used eviction once ``max_entries`` is exceeded, which
    bounds memory on long-running services.  Tier 2 is an optional
    :class:`~repro.engine.store.DiskStore` (see :meth:`attach_store`): a
    tier-1 miss falls through to the store, a store hit is promoted back
    into memory, and fresh computations are written to both tiers — so a new
    process starts warm from what earlier processes computed.

    Statistics are kept per tier: ``stats`` counts tier-1 (memory) lookups
    exactly as before, ``disk_stats`` counts the tier-2 lookups that the
    memory misses triggered.  A value is recomputed only when *both* tiers
    miss, so ``disk_stats.misses`` is the number of actual computations.
    A disabled cache is transparent: :meth:`get_or_compute` calls the compute
    function directly and records nothing.
    """

    def __init__(
        self,
        name: str,
        *,
        enabled: bool = False,
        max_entries: int = 65536,
        store: DiskStore | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.name = name
        self.enabled = enabled
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.disk_stats = CacheStats()
        self.store = store
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def attach_store(self, store: DiskStore | None) -> None:
        """Attach (or with ``None`` detach) the persistent second tier."""
        self.store = store

    def get(
        self, key: Any, *, valid: Callable[[Any], bool] | None = None
    ) -> tuple[bool, Any]:
        """Probe both tiers for ``key`` without computing anything.

        Returns ``(hit, value)`` — the tuple disambiguates a cached ``None``
        from a miss.  Counting is exactly the probe phase of
        :meth:`get_or_compute`, so batch users (the vectorized fit grid
        probing a whole sweep up front) keep the same per-entry hit/miss
        accounting as per-call users.  A disabled cache always misses and
        records nothing.
        """
        if not self.enabled:
            return False, None
        with self._lock:
            cached = self._data.get(key, _SENTINEL)
            if cached is not _SENTINEL and (valid is None or valid(cached)):
                self._data.move_to_end(key)
                self.stats.hits += 1
                return True, cached
            self.stats.misses += 1
        store = self.store
        if store is not None:
            # Disk keys must be path-safe digests; every key builder below
            # produces hex strings, so this holds for all engine regions.
            stored = store.get(self.name, str(key))
            if not store.is_miss(stored) and (valid is None or valid(stored)):
                with self._lock:
                    self.disk_stats.hits += 1
                self._remember(key, stored)
                return True, stored
            with self._lock:
                self.disk_stats.misses += 1
        return False, None

    def put(self, key: Any, value: Any) -> None:
        """Store a computed value in both tiers (a no-op when disabled)."""
        if not self.enabled:
            return
        self._remember(key, value)
        store = self.store
        if store is not None:
            store.put(self.name, str(key), value)

    def get_or_compute(
        self,
        key: Any,
        compute: Callable[[], Any],
        *,
        valid: Callable[[Any], bool] | None = None,
    ) -> Any:
        """Return the cached value for ``key`` or compute, store and return it.

        ``valid`` lets a caller reject a cached entry that exists but does not
        cover the current request (e.g. an extrapolation evaluated over a
        narrower core range than now required); a rejected entry counts as a
        miss in its tier and is overwritten by the fresh computation.
        """
        if not self.enabled:
            return compute()
        hit, value = self.get(key, valid=valid)
        if hit:
            return value
        value = compute()  # outside the lock: fits can take a while
        self.put(key, value)
        return value

    def _remember(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def stats_dict(self) -> dict[str, int]:
        """Flat per-tier counters (flat ints so campaign workers can be summed)."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "disk_hits": self.disk_stats.hits,
            "disk_misses": self.disk_stats.misses,
        }

    def clear(self) -> None:
        """Drop all in-memory entries (statistics and the disk tier are kept)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero both tiers' hit/miss counters."""
        self.stats.reset()
        self.disk_stats.reset()


# --------------------------------------------------------------------------- #
# Global cache regions
# --------------------------------------------------------------------------- #

_REGISTRY: dict[str, ContentCache] = {}
_REGISTRY_LOCK = threading.Lock()


def get_cache(name: str) -> ContentCache:
    """The process-global cache region ``name`` (created on first use)."""
    with _REGISTRY_LOCK:
        cache = _REGISTRY.get(name)
        if cache is None:
            cache = _REGISTRY[name] = ContentCache(name)
        return cache


#: Region consulted by :func:`repro.core.fitting.fit_kernel`.
FIT_CACHE = get_cache("fit")
#: Region consulted by :func:`repro.core.regression.extrapolate_series`.
EXTRAPOLATION_CACHE = get_cache("extrapolation")

# Import time must never raise on a malformed environment (that would break
# ``import repro`` everywhere); EstimaConfig construction re-parses strictly.
if parse_bool_env(ENV_FIT_CACHE, os.environ.get(ENV_FIT_CACHE), strict=False):
    FIT_CACHE.enabled = True
    EXTRAPOLATION_CACHE.enabled = True


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-tier hit/miss counters of every global region, keyed by region name."""
    with _REGISTRY_LOCK:
        return {name: cache.stats_dict() for name, cache in _REGISTRY.items()}


def clear_caches() -> None:
    """Empty every global region's memory tier (entries only, not statistics)."""
    with _REGISTRY_LOCK:
        for cache in _REGISTRY.values():
            cache.clear()


def reset_cache_stats() -> None:
    """Zero the per-tier hit/miss counters of every global region."""
    with _REGISTRY_LOCK:
        for cache in _REGISTRY.values():
            cache.reset_stats()


def attach_disk_tier(
    cache_dir: "str | os.PathLike[str]",
    *,
    max_bytes: int | None = None,
    names: tuple[str, ...] = ("fit", "extrapolation"),
) -> DiskStore:
    """Attach a persistent second tier under ``cache_dir`` to global regions.

    Returns the shared :class:`~repro.engine.store.DiskStore` so callers
    (e.g. :class:`~repro.engine.service.PredictionService`) can attach the
    same store to their private regions too.  Attaching is idempotent: the
    same directory always resolves to one store instance.
    """
    store = store_for(cache_dir, max_bytes=max_bytes)
    for name in names:
        get_cache(name).attach_store(store)
    return store


def detach_disk_tier(names: tuple[str, ...] = ("fit", "extrapolation")) -> None:
    """Detach the disk tier from global regions (entries on disk are kept)."""
    for name in names:
        get_cache(name).attach_store(None)


@contextmanager
def disk_tier(
    cache_dir: "str | os.PathLike[str]",
    *,
    max_bytes: int | None = None,
    names: tuple[str, ...] = ("fit", "extrapolation"),
) -> Iterator[DiskStore]:
    """Attach a disk tier for the duration of the block, then restore.

    Unlike a bare attach/``detach_disk_tier`` pair, exiting restores each
    region's *previous* store — so a scoped use (e.g. one CLI command run
    in-process) does not clobber an attachment the environment
    (``ESTIMA_CACHE_DIR``) or an embedding application set up earlier.
    """
    previous = {name: get_cache(name).store for name in names}
    store = attach_disk_tier(cache_dir, max_bytes=max_bytes, names=names)
    try:
        yield store
    finally:
        for name, prior in previous.items():
            get_cache(name).attach_store(prior)


_ENV_CACHE_DIR = os.environ.get("ESTIMA_CACHE_DIR", "").strip()
if _ENV_CACHE_DIR:
    try:
        # Same import-time posture as ENV_FIT_CACHE: never raise here; a
        # malformed ESTIMA_CACHE_MAX_BYTES is reported at config construction.
        attach_disk_tier(_ENV_CACHE_DIR)
    except (ValueError, OSError):
        pass


def set_caches_enabled(enabled: bool, *names: str) -> None:
    """Enable or disable global regions (all of them when ``names`` is empty)."""
    targets = names or ("fit", "extrapolation")
    for name in targets:
        get_cache(name).enabled = enabled


@contextmanager
def caches_enabled(enabled: bool = True, *names: str) -> Iterator[None]:
    """Temporarily enable (or disable) global cache regions.

    Restores each region's previous state on exit, so nested uses compose.
    """
    targets = names or ("fit", "extrapolation")
    previous = {name: get_cache(name).enabled for name in targets}
    for name in targets:
        get_cache(name).enabled = enabled
    try:
        yield
    finally:
        for name, state in previous.items():
            get_cache(name).enabled = state


# --------------------------------------------------------------------------- #
# Key builders
# --------------------------------------------------------------------------- #


def digest(*parts: object) -> str:
    """A stable content digest of heterogeneous parts (arrays hashed by bytes)."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(b"<arr>")
            h.update(str(part.dtype).encode())
            h.update(np.ascontiguousarray(part).tobytes())
        elif isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def fit_key(kernel_name: str, cores: np.ndarray, values: np.ndarray, max_nfev: int) -> str:
    """Cache key of one :func:`~repro.core.fitting.fit_kernel` call."""
    return digest("fit", kernel_name, cores, values, int(max_nfev))


def extrapolation_key(
    cores: np.ndarray,
    values: np.ndarray,
    config: object,
    *,
    target_cores: int,
    category: str,
    allow_negative: bool,
) -> str:
    """Cache key of one :func:`~repro.core.regression.extrapolate_series` call.

    Only the inputs that influence the numerical result take part in the key:
    the series content, the config fields the regression reads (kernel set,
    checkpoint count, prefix floor, realism bound) and ``target_cores`` (the
    realism screen widens with the target, so the chosen fit is
    target-dependent).  Engine knobs such as the executor choice deliberately
    do not, so a serial and a parallel run address the same entries, and a
    cached result is always bit-identical to a recomputed one.  Cross-target
    sharing is the :class:`~repro.engine.service.PredictionService`'s job,
    where the slice-of-the-max-target semantics are explicit.
    """
    return digest(
        "extrapolation",
        cores,
        values,
        tuple(getattr(config, "kernel_names", ())),
        int(getattr(config, "checkpoints", 0)),
        int(getattr(config, "min_prefix", 0)),
        float(getattr(config, "max_extrapolation_factor", 0.0)),
        int(target_cores),
        category,
        bool(allow_negative),
    )


def measurements_digest(measurements: object) -> str:
    """Content digest of a :class:`~repro.core.measurement.MeasurementSet`."""
    payload = measurements.to_dict()  # type: ignore[attr-defined]
    return digest("measurements", _freeze(payload))


def config_digest(config: object) -> str:
    """Digest of the config fields that change prediction *numbers*.

    Engine knobs (``executor``, ``max_workers``, ``use_fit_cache``) are
    excluded on purpose: they change how a prediction is computed, never what
    it computes, so cached results are shared across backends.
    """
    return digest(
        "config",
        tuple(getattr(config, "kernel_names", ())),
        int(getattr(config, "checkpoints", 0)),
        int(getattr(config, "min_prefix", 0)),
        bool(getattr(config, "use_software_stalls", True)),
        bool(getattr(config, "use_frontend_stalls", False)),
        float(getattr(config, "frequency_ratio", 1.0)),
        float(getattr(config, "dataset_ratio", 1.0)),
        float(getattr(config, "max_extrapolation_factor", 0.0)),
    )


def _freeze(value: object) -> object:
    """Recursively convert mappings/sequences into hashable, ordered tuples."""
    if isinstance(value, Mapping):
        return tuple((k, _freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
