"""Hardware performance-counter catalogues (paper Tables 2 and 3).

ESTIMA uses the fine-grain backend stalled-cycle events of each processor
family rather than an aggregate backend-stall event.  The catalogues below
reproduce the events the paper lists:

AMD Family 10h (Opteron 6172, Table 2)
    ====== =============================================
    0D2h   Dispatch Stall for Branch Abort to Retire
    0D5h   Dispatch Stall for Reorder Buffer Full
    0D6h   Dispatch Stall for Reservation Station Full
    0D7h   Dispatch Stall for FPU Full
    0D8h   Dispatch Stall for LS (load/store queue) Full
    ====== =============================================

Intel (Haswell / Ivy Bridge Xeon, Table 3)
    ====== =============================================
    0487h  Stalled cycles due to IQ full
    01A2h  Cycles allocation stalled due to resource-related reasons
    04A2h  No eligible RS entry available
    08A2h  No store buffers available
    10A2h  Re-order buffer full
    ====== =============================================

Each event carries a *generic stall source* so the machine simulator can
produce vendor-specific counter names from a vendor-neutral stall
decomposition (see :mod:`repro.machine.pipeline`).  Frontend events are
catalogued too, but only used when the Table-6 experiment switches them on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

__all__ = [
    "StallSource",
    "CounterEvent",
    "CounterCatalog",
    "AMD_FAMILY_10H",
    "INTEL_HASWELL",
    "catalog_for_vendor",
]


class StallSource(str, Enum):
    """Vendor-neutral backend/frontend stall sources the simulator produces."""

    MEMORY_LATENCY = "memory_latency"  # loads waiting on cache/memory -> ROB fills up
    STORE_PRESSURE = "store_pressure"  # store queue / write bandwidth saturation
    DEPENDENCY = "dependency"  # scheduler (RS) starvation on dependent ops
    FPU_PRESSURE = "fpu_pressure"  # long-latency FP pipes backed up
    BRANCH_RECOVERY = "branch_recovery"  # mispredicted branches draining to retire
    ALLOCATION = "allocation"  # generic resource-allocation stalls
    FRONTEND_ICACHE = "frontend_icache"  # instruction fetch misses
    FRONTEND_DECODE = "frontend_decode"  # decode/fetch bandwidth


@dataclass(frozen=True)
class CounterEvent:
    """One hardware performance counter event."""

    code: str
    name: str
    description: str
    source: StallSource
    frontend: bool = False


@dataclass(frozen=True)
class CounterCatalog:
    """The set of events ESTIMA collects on one processor family."""

    vendor: str
    family: str
    backend: tuple[CounterEvent, ...]
    frontend: tuple[CounterEvent, ...]

    def backend_names(self) -> tuple[str, ...]:
        return tuple(event.name for event in self.backend)

    def frontend_names(self) -> tuple[str, ...]:
        return tuple(event.name for event in self.frontend)

    def event_by_name(self, name: str) -> CounterEvent:
        for event in (*self.backend, *self.frontend):
            if event.name == name:
                return event
        raise KeyError(f"no event named {name!r} in the {self.vendor} catalogue")

    def event_by_code(self, code: str) -> CounterEvent:
        for event in (*self.backend, *self.frontend):
            if event.code.lower() == code.lower():
                return event
        raise KeyError(f"no event with code {code!r} in the {self.vendor} catalogue")

    def backend_by_source(self) -> Mapping[StallSource, CounterEvent]:
        """Map each generic stall source to the vendor's backend event."""
        return {event.source: event for event in self.backend}


AMD_FAMILY_10H = CounterCatalog(
    vendor="amd",
    family="family10h",
    backend=(
        CounterEvent(
            code="0D2h",
            name="dispatch_stall_branch_abort",
            description="Dispatch Stall for Branch Abort to Retire",
            source=StallSource.BRANCH_RECOVERY,
        ),
        CounterEvent(
            code="0D5h",
            name="dispatch_stall_reorder_buffer_full",
            description="Dispatch Stall for Reorder Buffer Full",
            source=StallSource.MEMORY_LATENCY,
        ),
        CounterEvent(
            code="0D6h",
            name="dispatch_stall_reservation_station_full",
            description="Dispatch Stall for Reservation Station Full",
            source=StallSource.DEPENDENCY,
        ),
        CounterEvent(
            code="0D7h",
            name="dispatch_stall_fpu_full",
            description="Dispatch Stall for FPU Full",
            source=StallSource.FPU_PRESSURE,
        ),
        CounterEvent(
            code="0D8h",
            name="dispatch_stall_ls_full",
            description="Dispatch Stall for LS Full",
            source=StallSource.STORE_PRESSURE,
        ),
    ),
    frontend=(
        CounterEvent(
            code="081h",
            name="instruction_cache_misses",
            description="Instruction Cache Misses",
            source=StallSource.FRONTEND_ICACHE,
            frontend=True,
        ),
        CounterEvent(
            code="0D0h",
            name="decoder_empty",
            description="Decoder Empty (no fetched instructions available)",
            source=StallSource.FRONTEND_DECODE,
            frontend=True,
        ),
    ),
)


INTEL_HASWELL = CounterCatalog(
    vendor="intel",
    family="haswell",
    backend=(
        CounterEvent(
            code="0487h",
            name="stall_iq_full",
            description="Stalled cycles due to IQ full",
            source=StallSource.BRANCH_RECOVERY,
        ),
        CounterEvent(
            code="01A2h",
            name="resource_stalls_any",
            description="Cycles allocation stalled due to resource-related reasons",
            source=StallSource.ALLOCATION,
        ),
        CounterEvent(
            code="04A2h",
            name="resource_stalls_rs",
            description="No eligible RS entry available",
            source=StallSource.DEPENDENCY,
        ),
        CounterEvent(
            code="08A2h",
            name="resource_stalls_sb",
            description="No store buffers available",
            source=StallSource.STORE_PRESSURE,
        ),
        CounterEvent(
            code="10A2h",
            name="resource_stalls_rob",
            description="Re-order buffer full",
            source=StallSource.MEMORY_LATENCY,
        ),
    ),
    frontend=(
        CounterEvent(
            code="0280h",
            name="icache_misses",
            description="Instruction cache misses",
            source=StallSource.FRONTEND_ICACHE,
            frontend=True,
        ),
        CounterEvent(
            code="019Ch",
            name="idq_uops_not_delivered",
            description="Uops not delivered by the frontend",
            source=StallSource.FRONTEND_DECODE,
            frontend=True,
        ),
    ),
)

_BY_VENDOR = {"amd": AMD_FAMILY_10H, "intel": INTEL_HASWELL}

# Intel has only four backend events; FPU pressure manifests in RS stalls
# there, so the simulator folds FPU_PRESSURE into the dependency event when a
# vendor catalogue lacks a dedicated FPU counter.
FALLBACK_SOURCE: dict[StallSource, StallSource] = {
    StallSource.FPU_PRESSURE: StallSource.DEPENDENCY,
    StallSource.ALLOCATION: StallSource.DEPENDENCY,
    StallSource.BRANCH_RECOVERY: StallSource.DEPENDENCY,
}


def catalog_for_vendor(vendor: str) -> CounterCatalog:
    """Return the counter catalogue for ``"amd"`` or ``"intel"``."""
    try:
        return _BY_VENDOR[vendor.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unsupported vendor {vendor!r}; supported: {sorted(_BY_VENDOR)}"
        ) from exc
