"""Cache-hierarchy model: locality, capacity and coherence misses.

The simulator does not track individual addresses; it estimates per-reference
outcome probabilities from three ingredients:

* **temporal locality** — the fraction of references that hit in the private
  levels (L1/L2) regardless of dataset size, because real access streams are
  heavily skewed towards a small hot set.  This is a workload property
  (``locality``) and is what keeps absolute miss rates in the realistic
  per-cent range even for multi-gigabyte working sets.
* **capacity** — the remaining "cold" references compete for the chip-shared
  last-level cache; their hit ratio follows a smooth capacity rule against the
  LLC share of each thread, so adding threads to a chip raises the miss rate.
* **coherence** — shared lines written by other threads miss regardless of
  capacity; the invalidation probability grows with the number of writers.

These three effects are exactly the ones whose growth with the thread count
feeds the ``reorder buffer full`` / ``LS full`` stall trends ESTIMA
extrapolates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheLevel", "CacheHierarchy", "CacheBehaviour"]

# Fraction of shared-written lines that actually bounce between caches per
# access (writes are bursty, not uniformly interleaved with every reader).
_COHERENCE_PROPENSITY = 0.12


@dataclass(frozen=True)
class CacheLevel:
    """One cache level; ``shared=True`` marks the chip-shared LLC."""

    name: str
    size_kb: float
    latency_cycles: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError("cache size must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")


@dataclass(frozen=True)
class CacheBehaviour:
    """Per-access outcome probabilities and average latencies for one run."""

    hit_fractions: dict[str, float]  # per level, fraction of accesses served there
    memory_fraction: float  # fraction of accesses going to DRAM
    coherence_fraction: float  # fraction of accesses that are coherence misses
    avg_hit_latency_cycles: float  # average latency of accesses served by caches

    def miss_rate(self) -> float:
        """Fraction of memory references that leave the cache hierarchy."""
        return self.memory_fraction + self.coherence_fraction


@dataclass(frozen=True)
class CacheHierarchy:
    """Private upper levels plus a chip-shared last-level cache."""

    levels: tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a cache hierarchy needs at least one level")

    @property
    def private_levels(self) -> tuple[CacheLevel, ...]:
        return tuple(level for level in self.levels if not level.shared)

    @property
    def shared_level(self) -> CacheLevel | None:
        for level in self.levels:
            if level.shared:
                return level
        return None

    @staticmethod
    def _capacity_hit_ratio(working_set_kb: float, capacity_kb: float) -> float:
        """Smooth capacity rule for the cold-reference stream.

        Full hits while the cold set fits; a square-root tail (approximating
        set-associative behaviour) once it does not.
        """
        if working_set_kb <= 0.0:
            return 1.0
        ratio = capacity_kb / working_set_kb
        if ratio >= 1.0:
            return 1.0
        return float(np.sqrt(ratio))

    def behaviour(
        self,
        *,
        private_working_set_kb: float,
        shared_working_set_kb: float,
        threads_on_chip: int,
        shared_access_fraction: float,
        shared_write_fraction: float,
        total_threads: int,
        locality: float = 0.97,
    ) -> CacheBehaviour:
        """Estimate the access-outcome structure for one thread of the run.

        Parameters
        ----------
        private_working_set_kb / shared_working_set_kb:
            Data only this thread touches, and data all threads touch.
        threads_on_chip:
            Threads competing for this chip's shared LLC.
        shared_access_fraction / shared_write_fraction:
            Of all references, the fraction touching shared data, and of those
            the fraction that are writes (drives invalidations).
        total_threads:
            Total threads in the run (coherence needs a second thread).
        locality:
            Fraction of references absorbed by the private levels thanks to
            temporal locality, independent of the dataset size.
        """
        if threads_on_chip < 1 or total_threads < 1:
            raise ValueError("thread counts must be >= 1")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        shared_access_fraction = float(np.clip(shared_access_fraction, 0.0, 1.0))
        shared_write_fraction = float(np.clip(shared_write_fraction, 0.0, 1.0))

        ws_kb = private_working_set_kb + shared_working_set_kb
        hit_fractions: dict[str, float] = {level.name: 0.0 for level in self.levels}
        weighted_latency = 0.0

        # Hot references: served by the private levels (mostly the first one).
        privates = self.private_levels or self.levels[:1]
        hot = locality
        first_share = 0.8  # bulk of hot hits land in the first level
        if len(privates) == 1:
            shares = [1.0]
        else:
            rest = (1.0 - first_share) / (len(privates) - 1)
            shares = [first_share] + [rest] * (len(privates) - 1)
        for level, share in zip(privates, shares):
            served = hot * share
            hit_fractions[level.name] += served
            weighted_latency += served * level.latency_cycles

        # Cold references: capacity rule against this thread's LLC share.
        cold = 1.0 - locality
        llc = self.shared_level
        if llc is not None and cold > 0.0:
            llc_share_kb = llc.size_kb / threads_on_chip
            llc_hit = self._capacity_hit_ratio(ws_kb, llc_share_kb)
            served = cold * llc_hit
            hit_fractions[llc.name] += served
            weighted_latency += served * llc.latency_cycles
            remaining = cold - served
        else:
            remaining = cold

        # Coherence: shared lines written by another thread are invalid in any
        # cache.  Applies to the shared slice of all references.
        sharing_penalty = shared_access_fraction * shared_write_fraction
        coherence = (
            _COHERENCE_PROPENSITY * sharing_penalty * (1.0 - 1.0 / total_threads)
        )
        coherence = float(np.clip(coherence, 0.0, 0.5))

        cache_served = sum(hit_fractions.values())
        stolen = min(coherence, cache_served)
        if cache_served > 0.0 and stolen > 0.0:
            shrink = (cache_served - stolen) / cache_served
            for name in hit_fractions:
                hit_fractions[name] *= shrink
            weighted_latency *= shrink

        total_hits = sum(hit_fractions.values())
        avg_hit_latency = weighted_latency / total_hits if total_hits > 0 else 0.0
        return CacheBehaviour(
            hit_fractions=hit_fractions,
            memory_fraction=float(max(remaining, 0.0)),
            coherence_fraction=float(stolen),
            avg_hit_latency_cycles=float(avg_hit_latency),
        )
