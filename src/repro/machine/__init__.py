"""Simulated multicore machine substrate.

On the authors' testbeds, stalled cycles come from hardware performance
counters; here they come from a parametric contention model of the same
machines.  The package provides the machine descriptions (topology, caches,
memory system, counter catalogues) — the composition with a workload happens
in :mod:`repro.simulation`.
"""

from .caches import CacheBehaviour, CacheHierarchy, CacheLevel
from .counters import (
    AMD_FAMILY_10H,
    INTEL_HASWELL,
    CounterCatalog,
    CounterEvent,
    StallSource,
    catalog_for_vendor,
)
from .machines import (
    MACHINES,
    MachineSpec,
    get_machine,
    haswell_desktop,
    opteron48,
    xeon20,
    xeon48,
)
from .memory import MemoryBehaviour, MemorySystem
from .pipeline import InstructionMix, StallBreakdown, decompose_stalls
from .topology import CorePlacement, Topology

__all__ = [
    "AMD_FAMILY_10H",
    "CacheBehaviour",
    "CacheHierarchy",
    "CacheLevel",
    "CorePlacement",
    "CounterCatalog",
    "CounterEvent",
    "INTEL_HASWELL",
    "InstructionMix",
    "MACHINES",
    "MachineSpec",
    "MemoryBehaviour",
    "MemorySystem",
    "StallBreakdown",
    "StallSource",
    "Topology",
    "catalog_for_vendor",
    "decompose_stalls",
    "get_machine",
    "haswell_desktop",
    "opteron48",
    "xeon20",
    "xeon48",
]
