"""Machine specifications and the presets used in the paper's evaluation.

Four machines appear in the evaluation (Sections 4.2 and 5.1):

* a desktop **Intel Core i7 Haswell**, 4 cores / 8 hardware threads, 3.4 GHz —
  the measurement machine for the memcached and SQLite experiments;
* **Opteron**: 4-socket AMD Opteron 6172, 2 six-core dies per package,
  48 cores, 2.1 GHz — the main scaling-up platform;
* **Xeon20**: 2-socket Intel Xeon E5-2680 v2, 10 cores per socket, 2.8 GHz;
* **Xeon48**: 4-socket Intel Xeon E7-4830 v3, 12 cores per socket, used as the
  target of the Xeon20-to-Xeon48 extrapolations (Table 7).

The cache/memory numbers are the published characteristics of those parts;
they parameterise the contention models, they are not measured here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .caches import CacheHierarchy, CacheLevel
from .counters import CounterCatalog, catalog_for_vendor
from .memory import MemorySystem
from .topology import Topology

__all__ = [
    "MachineSpec",
    "haswell_desktop",
    "opteron48",
    "xeon20",
    "xeon48",
    "MACHINES",
    "get_machine",
]


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine description consumed by the simulator."""

    name: str
    vendor: str
    topology: Topology
    frequency_ghz: float
    caches: CacheHierarchy
    memory: MemorySystem

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        catalog_for_vendor(self.vendor)  # validates the vendor string

    @property
    def counters(self) -> CounterCatalog:
        """The performance-counter catalogue of this machine's processor family."""
        return catalog_for_vendor(self.vendor)

    @property
    def total_cores(self) -> int:
        return self.topology.total_cores

    @property
    def total_threads(self) -> int:
        return self.topology.total_threads

    @property
    def threads_per_socket(self) -> int:
        return self.topology.threads_per_socket

    def core_counts(self, *, step: int = 1) -> list[int]:
        """Measurement core counts 1..total_threads."""
        return self.topology.core_counts(step=step)

    def describe(self) -> str:
        t = self.topology
        return (
            f"{self.name}: {t.sockets} socket(s) x {t.chips_per_socket} chip(s) x "
            f"{t.cores_per_chip} cores (SMT {t.smt}) @ {self.frequency_ghz:.1f} GHz, "
            f"{self.vendor} counters"
        )


def haswell_desktop() -> MachineSpec:
    """The desktop Intel Core i7 Haswell measurement machine (4c/8t, 3.4 GHz)."""
    return MachineSpec(
        name="haswell_desktop",
        vendor="intel",
        topology=Topology(sockets=1, chips_per_socket=1, cores_per_chip=4, smt=2),
        frequency_ghz=3.4,
        caches=CacheHierarchy(
            levels=(
                CacheLevel(name="L1", size_kb=32.0, latency_cycles=4.0),
                CacheLevel(name="L2", size_kb=256.0, latency_cycles=12.0),
                CacheLevel(name="L3", size_kb=8192.0, latency_cycles=36.0, shared=True),
            )
        ),
        memory=MemorySystem(
            local_latency_ns=70.0,
            bandwidth_gbs_per_socket=25.6,
            numa_factor=1.0,
        ),
    )


def opteron48() -> MachineSpec:
    """The 4-socket, 48-core AMD Opteron 6172 machine (2.1 GHz).

    Each package is a multi-chip module with two 6-core dies, so the
    intra-socket (die-to-die) penalty is modelled separately from the
    socket-to-socket NUMA factor — this is why NUMA effects are already
    visible in single-socket measurements on this machine (Section 5.5).
    """
    return MachineSpec(
        name="opteron48",
        vendor="amd",
        topology=Topology(sockets=4, chips_per_socket=2, cores_per_chip=6, smt=1),
        frequency_ghz=2.1,
        caches=CacheHierarchy(
            levels=(
                CacheLevel(name="L1", size_kb=64.0, latency_cycles=3.0),
                CacheLevel(name="L2", size_kb=512.0, latency_cycles=12.0),
                CacheLevel(name="L3", size_kb=6144.0, latency_cycles=40.0, shared=True),
            )
        ),
        memory=MemorySystem(
            local_latency_ns=85.0,
            bandwidth_gbs_per_socket=21.3,
            numa_factor=2.2,
            intra_socket_factor=1.4,
        ),
    )


def xeon20() -> MachineSpec:
    """The 2-socket, 20-core Intel Xeon E5-2680 v2 machine (2.8 GHz)."""
    return MachineSpec(
        name="xeon20",
        vendor="intel",
        topology=Topology(sockets=2, chips_per_socket=1, cores_per_chip=10, smt=1),
        frequency_ghz=2.8,
        caches=CacheHierarchy(
            levels=(
                CacheLevel(name="L1", size_kb=32.0, latency_cycles=4.0),
                CacheLevel(name="L2", size_kb=256.0, latency_cycles=12.0),
                CacheLevel(name="L3", size_kb=25600.0, latency_cycles=40.0, shared=True),
            )
        ),
        memory=MemorySystem(
            local_latency_ns=75.0,
            bandwidth_gbs_per_socket=51.2,
            numa_factor=1.9,
        ),
    )


def xeon48() -> MachineSpec:
    """The 4-socket, 48-core Intel Xeon E7-4830 v3 machine (Section 5.1)."""
    return MachineSpec(
        name="xeon48",
        vendor="intel",
        topology=Topology(sockets=4, chips_per_socket=1, cores_per_chip=12, smt=1),
        frequency_ghz=2.1,
        caches=CacheHierarchy(
            levels=(
                CacheLevel(name="L1", size_kb=32.0, latency_cycles=4.0),
                CacheLevel(name="L2", size_kb=256.0, latency_cycles=12.0),
                CacheLevel(name="L3", size_kb=30720.0, latency_cycles=42.0, shared=True),
            )
        ),
        memory=MemorySystem(
            local_latency_ns=80.0,
            bandwidth_gbs_per_socket=57.6,
            numa_factor=2.0,
        ),
    )


MACHINES = {
    "haswell_desktop": haswell_desktop,
    "opteron48": opteron48,
    "xeon20": xeon20,
    "xeon48": xeon48,
}


def get_machine(name: str) -> MachineSpec:
    """Build one of the paper's machines by name."""
    try:
        return MACHINES[name]()
    except KeyError as exc:
        raise KeyError(f"unknown machine {name!r}; available: {sorted(MACHINES)}") from exc
