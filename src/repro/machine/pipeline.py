"""Backend-stall decomposition of exposed latencies.

Given the average memory behaviour of a run (from the cache and memory models)
and the workload's instruction mix, this module splits the cycles one
operation spends *not* retiring useful work into the vendor-neutral stall
sources of :mod:`repro.machine.counters`:

* loads that miss and fill the re-order buffer  -> ``MEMORY_LATENCY``
* stores backing up the store queue / write bandwidth -> ``STORE_PRESSURE``
* dependent instructions starving the scheduler -> ``DEPENDENCY``
* long-latency floating-point pipes -> ``FPU_PRESSURE``
* mispredicted branches draining to retire -> ``BRANCH_RECOVERY``
* generic allocation backpressure -> ``ALLOCATION``
* instruction-fetch misses / decode starvation -> frontend sources

The decomposition is deliberately simple — ESTIMA only needs stall categories
whose *trends* with core count are faithful, not a cycle-accurate pipeline.
Out-of-order overlap is modelled with a memory-level-parallelism (MLP) factor
that hides part of the miss latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .caches import CacheBehaviour
from .counters import StallSource
from .memory import MemoryBehaviour

__all__ = ["InstructionMix", "StallBreakdown", "decompose_stalls"]

# Penalty (cycles) to re-steer and refill the pipeline after a mispredict.
_BRANCH_MISS_PENALTY = 15.0
# Fraction of a store's occupancy that backs up into dispatch once write
# bandwidth saturates.
_STORE_BACKPRESSURE = 0.35
# Long-latency FP operations (div/sqrt-ish) expose this many cycles each when
# dependent work cannot cover them.
_FP_EXPOSED_LATENCY = 4.0


@dataclass(frozen=True)
class InstructionMix:
    """Per-operation instruction profile of a workload."""

    instructions_per_op: float
    mem_refs_per_op: float
    store_fraction: float  # of mem refs
    flop_fraction: float  # of instructions
    branch_fraction: float  # of instructions
    branch_miss_rate: float  # mispredictions per branch
    base_ipc: float = 1.6  # retirement rate with no stalls at all
    mlp: float = 2.0  # memory-level parallelism: misses overlapped

    def __post_init__(self) -> None:
        if self.instructions_per_op <= 0:
            raise ValueError("instructions_per_op must be positive")
        if self.mem_refs_per_op < 0:
            raise ValueError("mem_refs_per_op must be non-negative")
        for name in ("store_fraction", "flop_fraction", "branch_fraction", "branch_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.base_ipc <= 0:
            raise ValueError("base_ipc must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1.0")

    @property
    def useful_cycles_per_op(self) -> float:
        """Cycles per operation if nothing ever stalled."""
        return self.instructions_per_op / self.base_ipc


@dataclass(frozen=True)
class StallBreakdown:
    """Backend and frontend stall cycles per operation, by source."""

    backend: dict[StallSource, float]
    frontend: dict[StallSource, float]

    @property
    def total_backend(self) -> float:
        return float(sum(self.backend.values()))

    @property
    def total_frontend(self) -> float:
        return float(sum(self.frontend.values()))


def decompose_stalls(
    mix: InstructionMix,
    cache: CacheBehaviour,
    memory: MemoryBehaviour,
    *,
    icache_miss_rate: float = 0.002,
) -> StallBreakdown:
    """Split one operation's exposed latency into stall sources.

    Parameters
    ----------
    mix:
        The workload's instruction mix.
    cache / memory:
        Behaviour predicted by :class:`~repro.machine.caches.CacheHierarchy`
        and :class:`~repro.machine.memory.MemorySystem` for this run.
    icache_miss_rate:
        Instruction-cache misses per instruction (frontend; roughly
        independent of core count, as the paper observes).
    """
    loads_per_op = mix.mem_refs_per_op * (1.0 - mix.store_fraction)
    stores_per_op = mix.mem_refs_per_op * mix.store_fraction

    dram_fraction = cache.memory_fraction + cache.coherence_fraction
    dram_latency = memory.effective_latency_cycles

    # --- MEMORY_LATENCY: load misses fill the ROB; MLP hides part of it. ----
    load_miss_per_op = loads_per_op * dram_fraction
    exposed_load_latency = load_miss_per_op * dram_latency / mix.mlp
    # Cache hits beyond L1 also expose some latency (smaller, but it is what
    # keeps the single-thread stall count non-zero, as real counters are).
    # Cache hits mostly pipeline away; only a small fraction of their latency
    # is exposed as dispatch stalls (keeps single-thread stall counts non-zero,
    # as real counters are, without dominating the budget).
    exposed_hit_latency = loads_per_op * cache.avg_hit_latency_cycles * 0.05

    # --- STORE_PRESSURE: stores stall dispatch once buffers fill, which they
    # do in proportion to how congested the memory system is. --------------
    store_miss_per_op = stores_per_op * dram_fraction
    store_stalls = (
        store_miss_per_op * dram_latency * _STORE_BACKPRESSURE * memory.queue_inflation / mix.mlp
    )

    # --- DEPENDENCY: scheduler starvation scales with how much of the window
    # is already blocked on memory (dependent work cannot be found). --------
    window_pressure = float(np.clip(exposed_load_latency / (exposed_load_latency + 50.0), 0.0, 1.0))
    dependency_stalls = mix.useful_cycles_per_op * 0.15 * (0.3 + window_pressure)

    # --- FPU_PRESSURE: long-latency FP pipes back up. -----------------------
    fp_ops = mix.instructions_per_op * mix.flop_fraction
    fpu_stalls = fp_ops * _FP_EXPOSED_LATENCY * 0.15

    # --- BRANCH_RECOVERY: mispredicts drain to retire. ----------------------
    branches = mix.instructions_per_op * mix.branch_fraction
    branch_stalls = branches * mix.branch_miss_rate * _BRANCH_MISS_PENALTY

    # --- ALLOCATION: generic backpressure proportional to everything else. --
    allocation_stalls = 0.05 * (exposed_load_latency + store_stalls + dependency_stalls)

    backend = {
        StallSource.MEMORY_LATENCY: float(exposed_load_latency + exposed_hit_latency),
        StallSource.STORE_PRESSURE: float(store_stalls),
        StallSource.DEPENDENCY: float(dependency_stalls),
        StallSource.FPU_PRESSURE: float(fpu_stalls),
        StallSource.BRANCH_RECOVERY: float(branch_stalls),
        StallSource.ALLOCATION: float(allocation_stalls),
    }

    # Frontend: instruction fetch misses and decode starvation are essentially
    # flat in core count (Section 2.2) — they depend on the code footprint.
    icache_stalls = mix.instructions_per_op * icache_miss_rate * 20.0
    decode_stalls = mix.instructions_per_op * 0.01
    frontend = {
        StallSource.FRONTEND_ICACHE: float(icache_stalls),
        StallSource.FRONTEND_DECODE: float(decode_stalls),
    }
    return StallBreakdown(backend=backend, frontend=frontend)
