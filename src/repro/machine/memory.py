"""Memory-system model: DRAM latency, bandwidth saturation and NUMA.

Two effects dominate how the memory system limits scalability:

* **Bandwidth saturation** — the aggregate miss traffic of all threads on a
  socket competes for that socket's memory controllers.  Below saturation the
  latency is flat; approaching it, queueing inflates the effective latency
  (modelled with an M/M/1-style ``1 / (1 - utilisation)`` term, capped).
* **NUMA** — accesses served by a remote socket (or the other die of a
  multi-chip module) pay an interconnect penalty.  The remote fraction grows
  with how much of the data is shared and how many sockets the run spans.

Both effects feed the `memory latency` and `store pressure` stall sources of
:mod:`repro.machine.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import CorePlacement

__all__ = ["MemorySystem", "MemoryBehaviour"]

_CACHE_LINE_BYTES = 64.0
_MAX_QUEUE_INFLATION = 4.0


@dataclass(frozen=True)
class MemoryBehaviour:
    """Effective memory behaviour for one run."""

    effective_latency_cycles: float  # average DRAM access latency seen by a load
    remote_fraction: float  # fraction of DRAM accesses served remotely
    bandwidth_utilisation: float  # 0..1 per-socket demand vs capacity
    queue_inflation: float  # latency multiplier from bandwidth queueing


@dataclass(frozen=True)
class MemorySystem:
    """Per-socket DRAM characteristics plus the NUMA interconnect penalty."""

    local_latency_ns: float
    bandwidth_gbs_per_socket: float
    numa_factor: float  # remote latency / local latency (sockets)
    intra_socket_factor: float = 1.0  # chip-to-chip penalty inside an MCM package

    def __post_init__(self) -> None:
        if self.local_latency_ns <= 0:
            raise ValueError("local_latency_ns must be positive")
        if self.bandwidth_gbs_per_socket <= 0:
            raise ValueError("bandwidth_gbs_per_socket must be positive")
        if self.numa_factor < 1.0:
            raise ValueError("numa_factor must be >= 1.0")
        if self.intra_socket_factor < 1.0:
            raise ValueError("intra_socket_factor must be >= 1.0")

    def latency_cycles(self, frequency_ghz: float) -> float:
        """Local DRAM latency expressed in core cycles."""
        return self.local_latency_ns * frequency_ghz

    def remote_access_fraction(
        self, placement: CorePlacement, shared_access_fraction: float
    ) -> float:
        """Fraction of DRAM accesses that cross a socket (or die) boundary.

        Shared data is assumed spread uniformly across the sockets in use
        (first-touch by whichever thread allocated it), so a thread finds
        ``(sockets_used - 1) / sockets_used`` of it remote.  Private data stays
        local.
        """
        shared_access_fraction = float(np.clip(shared_access_fraction, 0.0, 1.0))
        if placement.sockets_used <= 1:
            return 0.0
        spread = (placement.sockets_used - 1) / placement.sockets_used
        return shared_access_fraction * spread

    def cross_chip_fraction(
        self, placement: CorePlacement, shared_access_fraction: float
    ) -> float:
        """Fraction of accesses crossing dies *within* a socket (Opteron MCM)."""
        shared_access_fraction = float(np.clip(shared_access_fraction, 0.0, 1.0))
        chips_in_sockets = placement.chips_used - (placement.sockets_used - 1)
        if placement.chips_used <= placement.sockets_used:
            return 0.0
        spread = (placement.chips_used - 1) / placement.chips_used
        del chips_in_sockets
        return shared_access_fraction * spread

    def behaviour(
        self,
        *,
        placement: CorePlacement,
        frequency_ghz: float,
        misses_per_second_per_thread: float,
        shared_access_fraction: float,
    ) -> MemoryBehaviour:
        """Compute the effective DRAM latency for one run.

        ``misses_per_second_per_thread`` is the demand the cache model predicts
        at nominal (uninflated) speed; utilisation computed from it slightly
        overestimates pressure near saturation, which matches the sharp knees
        real bandwidth-bound applications (streamcluster) show.
        """
        base_latency = self.latency_cycles(frequency_ghz)

        # Bandwidth: demand of the busiest socket vs one socket's capacity.
        threads_on_busiest = placement.max_threads_per_socket
        bytes_per_second = misses_per_second_per_thread * _CACHE_LINE_BYTES * threads_on_busiest
        capacity = self.bandwidth_gbs_per_socket * 1e9
        utilisation = float(np.clip(bytes_per_second / capacity, 0.0, 0.999))
        queue_inflation = min(1.0 / (1.0 - utilisation), _MAX_QUEUE_INFLATION)

        remote = self.remote_access_fraction(placement, shared_access_fraction)
        cross_chip = self.cross_chip_fraction(placement, shared_access_fraction)
        local = 1.0 - remote - cross_chip
        local = max(local, 0.0)
        avg_factor = (
            local * 1.0 + cross_chip * self.intra_socket_factor + remote * self.numa_factor
        )

        effective = base_latency * avg_factor * queue_inflation
        return MemoryBehaviour(
            effective_latency_cycles=float(effective),
            remote_fraction=float(remote + cross_chip),
            bandwidth_utilisation=utilisation,
            queue_inflation=float(queue_inflation),
        )
