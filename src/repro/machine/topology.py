"""Machine topology: sockets, chips, cores and thread placement.

ESTIMA "discovers the topology of the cores and uses cores within the same
socket first" (Section 4.1).  The simulator needs the same information to know
how many sockets and chips a run of *n* threads touches — that is what drives
shared-cache pressure, coherence distance and NUMA traffic.

The AMD Opteron 6172 of the paper is a multi-chip module: each package holds
two 6-core chips, so even a single-socket run crosses a chip boundary (the
reason the paper gives for NUMA effects being visible in Opteron measurements,
Section 5.5).  The topology model keeps socket and chip as separate levels to
reproduce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["CorePlacement", "Topology"]


@dataclass(frozen=True)
class CorePlacement:
    """How *n* threads are spread over the machine (socket-first fill)."""

    threads: int
    sockets_used: int
    chips_used: int
    threads_per_chip: np.ndarray  # length == chips_used
    threads_per_socket: np.ndarray  # length == sockets_used

    @property
    def max_threads_per_chip(self) -> int:
        return int(self.threads_per_chip.max())

    @property
    def max_threads_per_socket(self) -> int:
        return int(self.threads_per_socket.max())

    @property
    def crosses_socket(self) -> bool:
        return self.sockets_used > 1

    @property
    def crosses_chip(self) -> bool:
        return self.chips_used > 1


@dataclass(frozen=True)
class Topology:
    """Physical layout of a machine.

    Attributes
    ----------
    sockets:
        Number of CPU packages.
    chips_per_socket:
        Dies per package (2 for the Opteron 6172 multi-chip module).
    cores_per_chip:
        Physical cores per die.
    smt:
        Hardware threads per core (2 for the Haswell desktop with
        hyper-threading, 1 elsewhere in the paper's machines).
    """

    sockets: int
    chips_per_socket: int
    cores_per_chip: int
    smt: int = 1

    def __post_init__(self) -> None:
        for name in ("sockets", "chips_per_socket", "cores_per_chip", "smt"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def total_chips(self) -> int:
        return self.sockets * self.chips_per_socket

    @property
    def total_cores(self) -> int:
        return self.total_chips * self.cores_per_chip

    @property
    def total_threads(self) -> int:
        """Total hardware contexts (cores x SMT)."""
        return self.total_cores * self.smt

    @property
    def threads_per_chip(self) -> int:
        return self.cores_per_chip * self.smt

    @property
    def threads_per_socket(self) -> int:
        return self.threads_per_chip * self.chips_per_socket

    def core_order(self) -> Iterator[tuple[int, int, int]]:
        """Enumerate hardware contexts socket-first: (socket, chip, context).

        This is the order ESTIMA pins threads in — fill a chip, then the next
        chip of the same socket, then move to the next socket.
        """
        for socket in range(self.sockets):
            for chip in range(self.chips_per_socket):
                for ctx in range(self.threads_per_chip):
                    yield socket, chip, ctx

    def place(self, threads: int) -> CorePlacement:
        """Place ``threads`` hardware threads socket-first and summarise."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads > self.total_threads:
            raise ValueError(
                f"machine has {self.total_threads} hardware threads, requested {threads}"
            )
        per_chip = np.zeros(self.total_chips, dtype=int)
        per_socket = np.zeros(self.sockets, dtype=int)
        placed = 0
        for socket, chip, _ctx in self.core_order():
            if placed >= threads:
                break
            per_chip[socket * self.chips_per_socket + chip] += 1
            per_socket[socket] += 1
            placed += 1
        chips_used = int(np.count_nonzero(per_chip))
        sockets_used = int(np.count_nonzero(per_socket))
        return CorePlacement(
            threads=threads,
            sockets_used=sockets_used,
            chips_used=chips_used,
            threads_per_chip=per_chip[per_chip > 0],
            threads_per_socket=per_socket[per_socket > 0],
        )

    def core_counts(self, *, step: int = 1, include_one: bool = True) -> list[int]:
        """Measurement core counts 1..total_threads (used by the harness)."""
        counts = list(range(step, self.total_threads + 1, step))
        if include_one and 1 not in counts:
            counts = [1] + counts
        return counts
