"""The end-to-end ESTIMA prediction pipeline (paper Figure 3).

:class:`EstimaPredictor` glues the pieces together:

(A) take a :class:`~repro.core.measurement.MeasurementSet` collected on the
    measurement machine (stall counters + execution time at core counts 1..m);
(B) extrapolate every stall category individually with the checkpoint-based
    regression of :mod:`repro.core.regression`, then combine them into total
    stalled cycles per core over the whole target range;
(C) fit the time/stalls-per-core scaling factor
    (:mod:`repro.core.scaling_factor`) and multiply it back onto the
    extrapolated stalls per core to obtain predicted execution times.

Cross-machine frequency scaling and weak-scaling dataset scaling are applied
exactly where the paper applies them: the frequency ratio rescales the
measured times before the factor is formed (Section 4.3), and the dataset
ratio rescales the extrapolated stall values (Section 4.5).

Batch workloads should prefer :meth:`EstimaPredictor.predict_batch`, which
routes through the engine's :class:`~repro.engine.service.PredictionService`
so shared extrapolation work is computed once; kernel fits additionally go
through the engine's content-addressed cache when
``EstimaConfig(use_fit_cache=True)`` is set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine.service import PredictionRequest

from .config import EstimaConfig
from .measurement import MeasurementSet
from .regression import ExtrapolationResult, extrapolate_series
from .result import ScalabilityPrediction
from .scaling_factor import fit_scaling_factor
from .weak_scaling import scale_extrapolated_stalls

__all__ = ["EstimaPredictor"]


class EstimaPredictor:
    """Predict application scalability from low-core-count measurements.

    Parameters
    ----------
    config:
        Pipeline configuration; defaults reproduce the paper's setup
        (all six kernels, two checkpoints, software stalls enabled when
        present, frontend stalls disabled).
    """

    def __init__(self, config: EstimaConfig | None = None) -> None:
        self.config = config or EstimaConfig()

    # ------------------------------------------------------------------ #
    # Step B: per-category extrapolation
    # ------------------------------------------------------------------ #
    def extrapolate_categories(
        self, measurements: MeasurementSet, target_cores: int
    ) -> dict[str, ExtrapolationResult]:
        """Extrapolate each stall category to ``target_cores`` individually.

        Categories that are identically zero across all measurements carry no
        information and are skipped (they would only destabilise the fits).
        """
        cfg = self.config
        cores = measurements.cores
        results: dict[str, ExtrapolationResult] = {}
        for name in measurements.category_names(
            software=cfg.use_software_stalls, frontend=cfg.use_frontend_stalls
        ):
            series = measurements.category_series(
                name, software=cfg.use_software_stalls, frontend=cfg.use_frontend_stalls
            )
            if np.all(series == 0.0):
                continue
            results[name] = extrapolate_series(
                cores,
                series,
                cfg,
                target_cores=target_cores,
                category=name,
                allow_negative=False,
            )
        if not results:
            raise ValueError(
                "measurement set contains no non-zero stall categories; "
                "ESTIMA cannot extrapolate without stalled-cycle information"
            )
        return results

    def _stalls_per_core(
        self,
        extrapolations: Mapping[str, ExtrapolationResult],
        prediction_cores: np.ndarray,
    ) -> np.ndarray:
        """Combine category extrapolations into total stalled cycles per core."""
        total = np.zeros(prediction_cores.size, dtype=float)
        for result in extrapolations.values():
            total += result.predict(prediction_cores)
        return total / prediction_cores

    # ------------------------------------------------------------------ #
    # Full pipeline
    # ------------------------------------------------------------------ #
    def predict(
        self,
        measurements: MeasurementSet,
        target_cores: int,
        *,
        measurement_cores: int | None = None,
    ) -> ScalabilityPrediction:
        """Run the full ESTIMA pipeline.

        Parameters
        ----------
        measurements:
            Collected stall counters and times.  If ``measurement_cores`` is
            given the set is first restricted to that many cores, emulating a
            smaller measurement machine.
        target_cores:
            Highest core count to predict for (the target machine size).
        """
        if target_cores < 1:
            raise ValueError("target_cores must be >= 1")
        if measurement_cores is not None:
            measurements = measurements.restrict_to(measurement_cores)
        if target_cores < measurements.max_cores:
            raise ValueError(
                f"target_cores ({target_cores}) is below the measured maximum "
                f"({measurements.max_cores}); nothing to extrapolate"
            )
        if len(measurements) < max(self.config.min_prefix, 3):
            raise ValueError(
                f"need at least {max(self.config.min_prefix, 3)} measurements, "
                f"got {len(measurements)}"
            )

        cfg = self.config
        prediction_cores = np.arange(1, target_cores + 1, dtype=int)

        # (B) extrapolate stall categories and combine into stalls per core.
        extrapolations = self.extrapolate_categories(measurements, target_cores)
        stalls_per_core = self._stalls_per_core(extrapolations, prediction_cores.astype(float))

        # Weak scaling: a larger target dataset proportionally increases the
        # work (and therefore the stalls) each core performs.
        stalls_per_core = scale_extrapolated_stalls(
            stalls_per_core, dataset_ratio=cfg.dataset_ratio
        )

        # (C) scaling factor: measured time (rescaled to the target machine's
        # clock) over measured stalls per core, extrapolated and selected by
        # correlation with the stalls-per-core curve.
        measured_cores = measurements.cores
        measured_times = measurements.times * cfg.frequency_ratio
        measured_spc = measurements.stalls_per_core(
            software=cfg.use_software_stalls, frontend=cfg.use_frontend_stalls
        )
        factor_model = fit_scaling_factor(
            measured_cores,
            measured_times,
            measured_spc,
            cfg,
            eval_cores=prediction_cores,
            eval_stalls_per_core=stalls_per_core,
        )
        predicted_times = factor_model.predict_time(prediction_cores, stalls_per_core)
        # A zero predicted time is never meaningful; floor to a tiny epsilon so
        # downstream speedup/error math stays finite.
        predicted_times = np.maximum(predicted_times, 1e-12)

        return ScalabilityPrediction(
            workload=measurements.workload,
            machine=measurements.machine,
            measured=measurements,
            target_cores=int(target_cores),
            prediction_cores=prediction_cores,
            category_extrapolations=extrapolations,
            stalls_per_core=stalls_per_core,
            scaling_factor=factor_model,
            predicted_times=predicted_times,
            dataset_ratio=cfg.dataset_ratio,
            frequency_ratio=cfg.frequency_ratio,
        )

    # ------------------------------------------------------------------ #
    # Batched pipeline (engine-backed)
    # ------------------------------------------------------------------ #
    def predict_batch(
        self,
        requests: Iterable["PredictionRequest | tuple[MeasurementSet, int]"],
        *,
        share_max_target: bool = False,
    ) -> list[ScalabilityPrediction]:
        """Serve many predictions through the engine's batched service.

        Requests may be :class:`~repro.engine.service.PredictionRequest`
        objects or plain ``(measurements, target_cores)`` pairs.  Requests
        with identical content are computed once; with
        ``share_max_target=True`` requests differing only in target share one
        computation at the largest target (campaign semantics — see
        :class:`~repro.engine.service.PredictionService`).

        The import is deferred because the engine's service layer builds on
        this module.
        """
        from repro.engine.service import PredictionRequest, PredictionService

        service = PredictionService(self.config, share_max_target=share_max_target)
        normalised = [
            request
            if isinstance(request, PredictionRequest)
            else PredictionRequest(measurements=request[0], target_cores=int(request[1]))
            for request in requests
        ]
        return service.predict_batch(normalised)
