"""Non-linear least-squares fitting of a single kernel to measurements.

This module is the numerical workhorse under :mod:`repro.core.regression`.
It fits one :class:`~repro.core.kernels.Kernel` to a series of
(core count, value) points with multi-start non-linear least squares and
returns a :class:`FittedFunction` that the regression layer scores at the
checkpoints.

Values are normalised to their mean before fitting so that the generic
initial guesses work for series spanning very different magnitudes
(raw cycle counts are ~1e9-1e12, scaling factors are ~1e-9).

Both public entry points (:func:`fit_kernel`, :func:`fit_all_starts`) share
one multi-start helper, so under-determined series — fewer points than kernel
parameters, e.g. the 3-point memcached desktop runs of Section 4.3 — take the
same trust-region path everywhere instead of failing in one of them.

When the engine's fit cache is enabled (``EstimaConfig(use_fit_cache=True)``
or ``ESTIMA_FIT_CACHE=1``), :func:`fit_kernel` results are memoized
content-addressed on (kernel name, core counts, value bytes, ``max_nfev``);
see :mod:`repro.engine.cache`.  Fits are deterministic, so a cached result is
bit-identical to a recomputed one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.engine.cache import FIT_CACHE, fit_key

from .kernels import Kernel

__all__ = ["FittedFunction", "fit_kernel", "fit_all_starts"]

# SciPy's Levenberg-Marquardt backend (MINPACK ``lmdif``) is not reentrant:
# concurrent calls interfere and return slightly different (timing-dependent)
# solutions, which would break the engine's bit-identical serial≡threads
# contract.  LM solves therefore take this lock; the trust-region path and the
# linear least-squares short-circuit are reproducible under concurrency and
# run unlocked, so the thread backend still overlaps them with LM solves.
_LM_LOCK = threading.Lock()

#: Relative margin below which two candidate scores are treated as tied and
#: the earlier (deterministically ordered) candidate wins.  Scores are not
#: bit-stable across allocation contexts: numpy's SIMD reductions take
#: alignment-dependent code paths, and the iterative LM solver amplifies the
#: resulting last-ULP input differences into ~1e-7-relative score jitter.  A
#: strict ``<`` lets that noise flip near-tied selections, making "identical"
#: pipelines disagree at the 1e-8 level; genuine score differences between
#: distinct fits are far larger than this margin.
SCORE_TIE_REL = 1e-6


@dataclass(frozen=True)
class FittedFunction:
    """A kernel with concrete fitted parameters.

    The fit is performed on values normalised by ``scale`` (the mean of the
    training values); :meth:`__call__` undoes the normalisation so callers
    always see original units.
    """

    kernel: Kernel
    params: tuple[float, ...]
    scale: float
    train_cores: tuple[int, ...]
    train_rmse: float

    def __call__(self, n: np.ndarray | float | Sequence[float]) -> np.ndarray:
        values = self.kernel(np.asarray(n, dtype=float), self.params) * self.scale
        return np.asarray(values, dtype=float)

    @property
    def name(self) -> str:
        return self.kernel.name

    def is_realistic(
        self, n_eval: np.ndarray, *, allow_negative: bool = False, max_factor: float = 1e30
    ) -> bool:
        """Check the Section 3.1.2 realism criteria over ``n_eval``.

        ``max_factor`` bounds (in original units) how large an extrapolated
        value may grow before the fit is considered exploded.
        """
        n_eval = np.asarray(n_eval, dtype=float)
        if self.kernel.has_pole(self.params, n_eval):
            return False
        values = self(n_eval)
        if not np.all(np.isfinite(values)):
            return False
        if np.any(np.abs(values) > max_factor):
            return False
        if not allow_negative and np.any(values < 0.0):
            return False
        return True


def _residuals(kernel: Kernel, x: np.ndarray, y: np.ndarray):
    def fun(params: np.ndarray) -> np.ndarray:
        pred = kernel.func(x, *params)
        res = pred - y
        return np.where(np.isfinite(res), res, 1e6)

    return fun


def _linear_design(kernel_name: str, x: np.ndarray) -> np.ndarray | None:
    """Design matrix for kernels that are linear in their parameters.

    ``CubicLn`` and ``Poly25`` are plain linear models; solving them directly
    with ordinary least squares is both faster and more robust than iterating
    a non-linear solver, so :func:`fit_kernel` short-circuits to this path.
    """
    if kernel_name == "CubicLn":
        ln = np.log(np.maximum(x, 1e-9))
        return np.column_stack([np.ones_like(x), ln, ln**2, ln**3])
    if kernel_name == "Poly25":
        return np.column_stack([np.ones_like(x), x, x**2, x**2.5])
    return None


def _multi_start_fits(
    kernel: Kernel,
    x: np.ndarray,
    y: np.ndarray,
    *,
    max_nfev: int,
) -> list[FittedFunction]:
    """Every converged fit of ``kernel`` to a validated, finite series.

    Kernels that are linear in their parameters are solved directly by
    ordinary least squares (one exact solution, no multi-start).  Otherwise
    each initial guess is tried with non-linear least squares.  With fewer
    points than parameters the problem is under-determined; Levenberg-
    Marquardt cannot be used, but a trust-region solve from each starting
    point still yields a usable (if weakly constrained) fit — this matters
    for very short measurement series such as the 3-point memcached desktop
    runs of Section 4.3.
    """
    underdetermined = x.size < kernel.n_params
    scale = float(np.mean(np.abs(y)))
    if scale == 0.0 or not np.isfinite(scale):
        scale = 1.0
    y_norm = y / scale
    train_cores = tuple(int(c) for c in x)

    design = _linear_design(kernel.name, x)
    if design is not None:
        params, *_ = np.linalg.lstsq(design, y_norm, rcond=None)
        if not np.all(np.isfinite(params)):
            return []
        pred = design @ params
        rmse = float(np.sqrt(np.mean((pred - y_norm) ** 2))) * scale
        return [
            FittedFunction(
                kernel=kernel,
                params=tuple(float(p) for p in params),
                scale=scale,
                train_cores=train_cores,
                train_rmse=rmse,
            )
        ]

    fits: list[FittedFunction] = []
    for guess in kernel.initial_guesses:
        try:
            if underdetermined:
                result = optimize.least_squares(
                    _residuals(kernel, x, y_norm),
                    x0=np.asarray(guess, dtype=float),
                    method="trf",
                    max_nfev=max_nfev,
                )
            else:
                with _LM_LOCK:
                    result = optimize.least_squares(
                        _residuals(kernel, x, y_norm),
                        x0=np.asarray(guess, dtype=float),
                        method="lm",
                        max_nfev=max_nfev,
                    )
        except (ValueError, FloatingPointError):
            continue
        if not np.all(np.isfinite(result.x)):
            continue
        pred = kernel.func(x, *result.x)
        if not np.all(np.isfinite(pred)):
            continue
        rmse = float(np.sqrt(np.mean((pred - y_norm) ** 2))) * scale
        fits.append(
            FittedFunction(
                kernel=kernel,
                params=tuple(float(p) for p in result.x),
                scale=scale,
                train_cores=train_cores,
                train_rmse=rmse,
            )
        )
    return fits


def _validate_series(
    cores: Sequence[int] | np.ndarray, values: Sequence[float] | np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Shared input validation; ``None`` marks an unfittable series."""
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    if x.ndim != 1 or y.shape != x.shape:
        raise ValueError("cores and values must be 1-D arrays of equal length")
    if x.size < 2:
        return None
    if np.any(~np.isfinite(y)):
        return None
    return x, y


def fit_kernel(
    kernel: Kernel,
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    *,
    max_nfev: int = 600,
) -> FittedFunction | None:
    """Fit ``kernel`` to ``(cores, values)``; return None when nothing converges.

    Multi-start: each initial guess from the kernel is tried and the converged
    solution with the lowest training RMSE wins.  Returns ``None`` when the
    series has fewer than two points or when no start converges to a finite
    solution.
    """
    validated = _validate_series(cores, values)
    if validated is None:
        return None
    x, y = validated

    def compute() -> FittedFunction | None:
        best: FittedFunction | None = None
        for candidate in _multi_start_fits(kernel, x, y, max_nfev=max_nfev):
            if best is None or candidate.train_rmse < best.train_rmse * (1.0 - SCORE_TIE_REL):
                best = candidate
        return best

    if not FIT_CACHE.enabled:
        return compute()
    return FIT_CACHE.get_or_compute(fit_key(kernel.name, x, y, max_nfev), compute)


def fit_all_starts(
    kernel: Kernel,
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    *,
    max_nfev: int = 2000,
) -> list[FittedFunction]:
    """Return every converged multi-start fit (mainly for diagnostics/tests).

    Shares the multi-start helper with :func:`fit_kernel`, so under-determined
    series fall back to the trust-region solver instead of silently producing
    no fits (kernels linear in their parameters yield their single exact
    least-squares solution).
    """
    validated = _validate_series(cores, values)
    if validated is None:
        return []
    x, y = validated
    return _multi_start_fits(kernel, x, y, max_nfev=max_nfev)
