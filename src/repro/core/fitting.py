"""Non-linear least-squares fitting of a single kernel to measurements.

This module is the numerical workhorse under :mod:`repro.core.regression`.
It fits one :class:`~repro.core.kernels.Kernel` to a series of
(core count, value) points with multi-start non-linear least squares and
returns a :class:`FittedFunction` that the regression layer scores at the
checkpoints.

Values are normalised to their mean before fitting so that the generic
initial guesses work for series spanning very different magnitudes
(raw cycle counts are ~1e9-1e12, scaling factors are ~1e-9).

Both public entry points (:func:`fit_kernel`, :func:`fit_all_starts`) share
one multi-start helper, so under-determined series — fewer points than kernel
parameters, e.g. the 3-point memcached desktop runs of Section 4.3 — take the
same trust-region path everywhere instead of failing in one of them.

When the engine's fit cache is enabled (``EstimaConfig(use_fit_cache=True)``
or ``ESTIMA_FIT_CACHE=1``), :func:`fit_kernel` results are memoized
content-addressed on (kernel name, core counts, value bytes, ``max_nfev``);
see :mod:`repro.engine.cache`.  Fits are deterministic, so a cached result is
bit-identical to a recomputed one.

The single-solve primitives (``_solve_start``, ``_linear_fit``,
``_finish_nonlinear``) are deliberately free-standing: the vectorized grid
engine (:mod:`repro.core.fastfit`) builds its cells from exactly these
pieces (its lean driver reproduces ``_solve_start`` bit for bit and falls
back to it when scipy's private entry points are unavailable), so both
strategies choose identical fits.  The solvers are wrapped in the engine
profiler's ``design_solve`` / ``nonlinear_solve`` stages (see
:mod:`repro.engine.profiling`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.engine.cache import FIT_CACHE, fit_key
from repro.engine.profiling import PROFILER

from .kernels import Kernel

__all__ = ["FittedFunction", "fit_kernel", "fit_all_starts"]

# SciPy's Levenberg-Marquardt backend (MINPACK ``lmdif``) is not reentrant:
# concurrent calls interfere and return slightly different (timing-dependent)
# solutions, which would break the engine's bit-identical serial≡threads
# contract.  LM solves therefore take this lock; the trust-region path and the
# linear least-squares short-circuit are reproducible under concurrency and
# run unlocked, so the thread backend still overlaps them with LM solves.
_LM_LOCK = threading.Lock()

#: Relative margin below which two candidate scores are treated as tied and
#: the earlier (deterministically ordered) candidate wins.  Scores are not
#: bit-stable across allocation contexts: numpy's SIMD reductions take
#: alignment-dependent code paths, and the iterative LM solver amplifies the
#: resulting last-ULP input differences into ~1e-7-relative score jitter.  A
#: strict ``<`` lets that noise flip near-tied selections, making "identical"
#: pipelines disagree at the 1e-8 level; genuine score differences between
#: distinct fits are far larger than this margin.
SCORE_TIE_REL = 1e-6


@dataclass(frozen=True)
class FittedFunction:
    """A kernel with concrete fitted parameters.

    The fit is performed on values normalised by ``scale`` (the mean of the
    training values); :meth:`__call__` undoes the normalisation so callers
    always see original units.
    """

    kernel: Kernel
    params: tuple[float, ...]
    scale: float
    train_cores: tuple[int, ...]
    train_rmse: float

    def __call__(self, n: np.ndarray | float | Sequence[float]) -> np.ndarray:
        values = self.kernel(np.asarray(n, dtype=float), self.params) * self.scale
        return np.asarray(values, dtype=float)

    @property
    def name(self) -> str:
        return self.kernel.name

    def is_realistic(
        self, n_eval: np.ndarray, *, allow_negative: bool = False, max_factor: float = 1e30
    ) -> bool:
        """Check the Section 3.1.2 realism criteria over ``n_eval``.

        ``max_factor`` bounds (in original units) how large an extrapolated
        value may grow before the fit is considered exploded.
        """
        n_eval = np.asarray(n_eval, dtype=float)
        if self.kernel.has_pole(self.params, n_eval):
            return False
        values = self(n_eval)
        if not np.all(np.isfinite(values)):
            return False
        if np.any(np.abs(values) > max_factor):
            return False
        if not allow_negative and np.any(values < 0.0):
            return False
        return True


def _residuals(kernel: Kernel, x: np.ndarray, y: np.ndarray):
    def fun(params: np.ndarray) -> np.ndarray:
        pred = kernel.func(x, *params)
        res = pred - y
        return np.where(np.isfinite(res), res, 1e6)

    return fun


def _linear_design(kernel_name: str, x: np.ndarray) -> np.ndarray | None:
    """Design matrix for kernels that are linear in their parameters.

    ``CubicLn`` and ``Poly25`` are plain linear models; solving them directly
    with ordinary least squares is both faster and more robust than iterating
    a non-linear solver, so :func:`fit_kernel` short-circuits to this path.
    """
    if kernel_name == "CubicLn":
        ln = np.log(np.maximum(x, 1e-9))
        return np.column_stack([np.ones_like(x), ln, ln**2, ln**3])
    if kernel_name == "Poly25":
        return np.column_stack([np.ones_like(x), x, x**2, x**2.5])
    return None


def _norm_scale(y: np.ndarray) -> float:
    """Normalisation scale of a training slice (mean |y|, guarded)."""
    scale = float(np.mean(np.abs(y)))
    if scale == 0.0 or not np.isfinite(scale):
        scale = 1.0
    return scale


def _linear_fit(
    kernel: Kernel, design: np.ndarray, x: np.ndarray, y_norm: np.ndarray, scale: float
) -> FittedFunction | None:
    """Exact least-squares solve of a linear-in-parameters kernel.

    ``design`` must be the design matrix of ``x`` (callers may slice a
    precomputed full-series matrix; the rows are built elementwise, so a
    slice is bit-identical to building the matrix on the prefix directly).
    """
    with PROFILER.stage("design_solve"):
        params, *_ = np.linalg.lstsq(design, y_norm, rcond=None)
    if not np.all(np.isfinite(params)):
        return None
    pred = design @ params
    rmse = float(np.sqrt(np.mean((pred - y_norm) ** 2))) * scale
    return FittedFunction(
        kernel=kernel,
        params=tuple(float(p) for p in params),
        scale=scale,
        train_cores=tuple(int(c) for c in x),
        train_rmse=rmse,
    )


def _solve_start(
    kernel: Kernel,
    x: np.ndarray,
    y_norm: np.ndarray,
    guess: Sequence[float],
    *,
    underdetermined: bool,
    max_nfev: int,
) -> np.ndarray | None:
    """One iterative solve from one starting point — THE reference solver call.

    Every non-linear solve in the system goes through this function (the
    scalar multi-start loop and the vectorized engine's surviving starts
    alike), so two paths that solve the same (kernel, series, guess) get
    bit-identical parameters.  Returns ``None`` when the solver raises or
    lands on non-finite parameters.
    """
    try:
        with PROFILER.stage("nonlinear_solve"):
            if underdetermined:
                result = optimize.least_squares(
                    _residuals(kernel, x, y_norm),
                    x0=np.asarray(guess, dtype=float),
                    method="trf",
                    max_nfev=max_nfev,
                )
            else:
                with _LM_LOCK:
                    result = optimize.least_squares(
                        _residuals(kernel, x, y_norm),
                        x0=np.asarray(guess, dtype=float),
                        method="lm",
                        max_nfev=max_nfev,
                    )
    except (ValueError, FloatingPointError):
        return None
    if not np.all(np.isfinite(result.x)):
        return None
    return result.x


def _finish_nonlinear(
    kernel: Kernel, x: np.ndarray, y_norm: np.ndarray, scale: float, params: np.ndarray
) -> FittedFunction | None:
    """Wrap solved parameters into a FittedFunction (None when pred blows up)."""
    pred = kernel.func(x, *params)
    if not np.all(np.isfinite(pred)):
        return None
    rmse = float(np.sqrt(np.mean((pred - y_norm) ** 2))) * scale
    return FittedFunction(
        kernel=kernel,
        params=tuple(float(p) for p in params),
        scale=scale,
        train_cores=tuple(int(c) for c in x),
        train_rmse=rmse,
    )


def _multi_start_fits(
    kernel: Kernel,
    x: np.ndarray,
    y: np.ndarray,
    *,
    max_nfev: int,
    design: np.ndarray | None = None,
) -> list[FittedFunction]:
    """Every converged fit of ``kernel`` to a validated, finite series.

    Kernels that are linear in their parameters are solved directly by
    ordinary least squares (one exact solution, no multi-start).  Otherwise
    each initial guess is tried with non-linear least squares.  With fewer
    points than parameters the problem is under-determined; Levenberg-
    Marquardt cannot be used, but a trust-region solve from each starting
    point still yields a usable (if weakly constrained) fit — this matters
    for very short measurement series such as the 3-point memcached desktop
    runs of Section 4.3.

    ``design`` optionally supplies a precomputed design matrix for the
    linear kernels (the prefix sweep slices one full-series matrix instead
    of rebuilding identical rows per prefix); it must match ``x``.
    """
    scale = _norm_scale(y)
    y_norm = y / scale

    if design is None:
        design = _linear_design(kernel.name, x)
    if design is not None:
        fit = _linear_fit(kernel, design, x, y_norm, scale)
        return [fit] if fit is not None else []

    underdetermined = x.size < kernel.n_params
    fits: list[FittedFunction] = []
    for guess in kernel.initial_guesses:
        params = _solve_start(
            kernel, x, y_norm, guess, underdetermined=underdetermined, max_nfev=max_nfev
        )
        if params is None:
            continue
        fit = _finish_nonlinear(kernel, x, y_norm, scale, params)
        if fit is not None:
            fits.append(fit)
    return fits


def _validate_series(
    cores: Sequence[int] | np.ndarray, values: Sequence[float] | np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Shared input validation; ``None`` marks an unfittable series.

    Core counts must be finite and strictly positive: a NaN/inf or
    non-positive count would flow into the ``log`` and rational kernels as
    a silent NaN fit (the ``log`` design clamps at 1e-9, turning a zero
    count into a wildly wrong but finite row), so such series are rejected
    here like non-finite values always were.
    """
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    if x.ndim != 1 or y.shape != x.shape:
        raise ValueError("cores and values must be 1-D arrays of equal length")
    if x.size < 2:
        return None
    if np.any(~np.isfinite(x)) or np.any(x <= 0.0):
        return None
    if np.any(~np.isfinite(y)):
        return None
    return x, y


def fit_kernel(
    kernel: Kernel,
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    *,
    max_nfev: int = 600,
    design: np.ndarray | None = None,
) -> FittedFunction | None:
    """Fit ``kernel`` to ``(cores, values)``; return None when nothing converges.

    Multi-start: each initial guess from the kernel is tried and the converged
    solution with the lowest training RMSE wins.  Returns ``None`` when the
    series has fewer than two points or when no start converges to a finite
    solution.

    ``design`` optionally passes a precomputed linear design matrix for
    ``cores`` (see :func:`_multi_start_fits`); it does not take part in the
    cache key because it is derived from ``cores``.
    """
    validated = _validate_series(cores, values)
    if validated is None:
        return None
    x, y = validated

    def compute() -> FittedFunction | None:
        best: FittedFunction | None = None
        for candidate in _multi_start_fits(kernel, x, y, max_nfev=max_nfev, design=design):
            if best is None or candidate.train_rmse < best.train_rmse * (1.0 - SCORE_TIE_REL):
                best = candidate
        return best

    if not FIT_CACHE.enabled:
        return compute()
    return FIT_CACHE.get_or_compute(fit_key(kernel.name, x, y, max_nfev), compute)


def fit_all_starts(
    kernel: Kernel,
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    *,
    max_nfev: int = 2000,
) -> list[FittedFunction]:
    """Return every converged multi-start fit (mainly for diagnostics/tests).

    Shares the multi-start helper with :func:`fit_kernel`, so under-determined
    series fall back to the trust-region solver instead of silently producing
    no fits (kernels linear in their parameters yield their single exact
    least-squares solution).
    """
    validated = _validate_series(cores, values)
    if validated is None:
        return []
    x, y = validated
    return _multi_start_fits(kernel, x, y, max_nfev=max_nfev)
