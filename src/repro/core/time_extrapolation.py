"""The time-extrapolation baseline (Section 2.4).

The straightforward alternative to ESTIMA: fit the Table-1 kernels directly to
the measured execution times and extrapolate.  It works when the scalability
trend is already visible in the measurements and fails otherwise (kmeans,
intruder, yada, Figure 1 / Figure 7) — reproducing that failure mode is the
point of keeping this baseline around.

Selection mirrors ESTIMA's per-category procedure (checkpoints + prefix sweep)
so the comparison isolates *what* is extrapolated (time vs fine-grain stalls),
not *how*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import EstimaConfig
from .measurement import MeasurementSet
from .metrics import max_relative_error, mean_relative_error
from .regression import ExtrapolationResult, extrapolate_series
from .result import PredictionError

__all__ = ["TimeExtrapolation", "TimeExtrapolationPrediction"]


@dataclass(frozen=True)
class TimeExtrapolationPrediction:
    """Output of the time-extrapolation baseline."""

    workload: str
    machine: str
    measured: MeasurementSet
    target_cores: int
    prediction_cores: np.ndarray
    predicted_times: np.ndarray
    extrapolation: ExtrapolationResult

    def predicted_time_at(self, cores: int) -> float:
        idx = np.where(self.prediction_cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction at {cores} cores")
        return float(self.predicted_times[int(idx[0])])

    def predicted_peak_cores(self) -> int:
        """Core count with the lowest predicted execution time."""
        return int(self.prediction_cores[int(np.argmin(self.predicted_times))])

    def predicts_scaling_beyond(self, cores: int, *, tolerance: float = 0.02) -> bool:
        """Whether the baseline believes performance keeps improving past ``cores``."""
        idx = np.where(self.prediction_cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction at {cores} cores")
        i = int(idx[0])
        if i == self.prediction_cores.size - 1:
            return False
        best_later = float(np.min(self.predicted_times[i + 1 :]))
        return best_later < self.predicted_times[i] * (1.0 - tolerance)

    def evaluate(
        self, actual: MeasurementSet, *, core_counts: Sequence[int] | None = None
    ) -> PredictionError:
        """Score the baseline against ground truth (same contract as ESTIMA)."""
        if core_counts is None:
            cutoff = self.measured.max_cores
            core_counts = [int(c) for c in actual.cores if c > cutoff]
        core_counts = [int(c) for c in core_counts]
        if not core_counts:
            raise ValueError("no core counts to evaluate the prediction at")
        predicted = np.asarray([self.predicted_time_at(c) for c in core_counts], dtype=float)
        measured = np.asarray([actual.time_at(c) for c in core_counts], dtype=float)
        return PredictionError(
            cores=np.asarray(core_counts, dtype=int),
            predicted=predicted,
            actual=measured,
            max_error_pct=max_relative_error(predicted, measured),
            mean_error_pct=mean_relative_error(predicted, measured),
        )


class TimeExtrapolation:
    """Directly extrapolate measured execution time with the Table-1 kernels."""

    def __init__(self, config: EstimaConfig | None = None) -> None:
        self.config = config or EstimaConfig()

    def predict(
        self,
        measurements: MeasurementSet,
        target_cores: int,
        *,
        measurement_cores: int | None = None,
    ) -> TimeExtrapolationPrediction:
        """Extrapolate execution time to ``target_cores``."""
        if measurement_cores is not None:
            measurements = measurements.restrict_to(measurement_cores)
        if target_cores < measurements.max_cores:
            raise ValueError(
                f"target_cores ({target_cores}) below measured maximum "
                f"({measurements.max_cores})"
            )
        cfg = self.config
        prediction_cores = np.arange(1, target_cores + 1, dtype=int)
        times = measurements.times * cfg.frequency_ratio
        extrapolation = extrapolate_series(
            measurements.cores,
            times,
            cfg,
            target_cores=target_cores,
            category="execution_time",
            allow_negative=False,
        )
        predicted = np.maximum(extrapolation.predict(prediction_cores), 1e-12)
        # Weak scaling: the baseline scales time directly by the dataset ratio.
        predicted = predicted * cfg.dataset_ratio
        return TimeExtrapolationPrediction(
            workload=measurements.workload,
            machine=measurements.machine,
            measured=measurements,
            target_cores=int(target_cores),
            prediction_cores=prediction_cores,
            predicted_times=predicted,
            extrapolation=extrapolation,
        )
