"""Measurement containers — the input format of the ESTIMA tool.

A :class:`Measurement` is what one profiled run of the target application at a
given core count yields: the execution time plus the value of every collected
stalled-cycle event (hardware counters, and optionally software-reported
stalls).  A :class:`MeasurementSet` is the ordered collection over core counts
``1..m`` that ESTIMA extrapolates from.

These containers are deliberately independent of the machine simulator: on a
real system they would be filled from ``perf stat`` output and runtime-library
logs (see :mod:`repro.core.plugins`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Measurement", "MeasurementSet"]


@dataclass(frozen=True)
class Measurement:
    """One profiled run at a fixed core count.

    Attributes
    ----------
    cores:
        Number of cores (threads) the application used.
    time:
        Execution time in seconds.
    hardware_stalls:
        Backend stalled-cycle counters, keyed by event name
        (e.g. ``"dispatch_stall_reorder_buffer_full"``).  Values are total
        cycles summed over all cores, as a ``perf`` aggregate would report.
    software_stalls:
        Optional software-reported stall cycles (e.g. ``"stm_aborted_tx_cycles"``,
        ``"lock_spin_cycles"``), same units.
    frontend_stalls:
        Optional frontend stalled-cycle counters; only used when the
        configuration explicitly enables them (Table-6 experiment).
    memory_footprint_mb:
        Resident dataset size of the run; used by weak scaling.
    """

    cores: int
    time: float
    hardware_stalls: Mapping[str, float] = field(default_factory=dict)
    software_stalls: Mapping[str, float] = field(default_factory=dict)
    frontend_stalls: Mapping[str, float] = field(default_factory=dict)
    memory_footprint_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.time <= 0.0 or not np.isfinite(self.time):
            raise ValueError(f"time must be positive and finite, got {self.time}")
        for group in (self.hardware_stalls, self.software_stalls, self.frontend_stalls):
            for key, value in group.items():
                if value < 0.0 or not np.isfinite(value):
                    raise ValueError(f"stall counter {key!r} must be non-negative, got {value}")

    def stall_categories(
        self, *, software: bool = True, frontend: bool = False
    ) -> dict[str, float]:
        """All stall counters merged into one mapping, honouring the toggles."""
        merged = dict(self.hardware_stalls)
        if software:
            merged.update(self.software_stalls)
        if frontend:
            merged.update(self.frontend_stalls)
        return merged

    def total_stalls(self, *, software: bool = True, frontend: bool = False) -> float:
        """Sum of all selected stall categories (cycles, all cores)."""
        return float(sum(self.stall_categories(software=software, frontend=frontend).values()))

    def stalls_per_core(self, *, software: bool = True, frontend: bool = False) -> float:
        """Total stalled cycles divided by the core count (the paper's key quantity)."""
        return self.total_stalls(software=software, frontend=frontend) / self.cores

    def to_dict(self) -> dict:
        return {
            "cores": self.cores,
            "time": self.time,
            "hardware_stalls": dict(self.hardware_stalls),
            "software_stalls": dict(self.software_stalls),
            "frontend_stalls": dict(self.frontend_stalls),
            "memory_footprint_mb": self.memory_footprint_mb,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Measurement":
        return cls(
            cores=int(payload["cores"]),
            time=float(payload["time"]),
            hardware_stalls=dict(payload.get("hardware_stalls", {})),
            software_stalls=dict(payload.get("software_stalls", {})),
            frontend_stalls=dict(payload.get("frontend_stalls", {})),
            memory_footprint_mb=float(payload.get("memory_footprint_mb", 0.0)),
        )


@dataclass(frozen=True)
class MeasurementSet:
    """Measurements of one workload over increasing core counts.

    Measurements are stored sorted by core count; duplicate core counts are
    rejected because the regression assumes one sample per count.
    """

    measurements: tuple[Measurement, ...]
    workload: str = ""
    machine: str = ""
    frequency_ghz: float = 0.0
    dataset_size: float = 1.0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.measurements, key=lambda m: m.cores))
        object.__setattr__(self, "measurements", ordered)
        cores = [m.cores for m in ordered]
        if len(set(cores)) != len(cores):
            raise ValueError(f"duplicate core counts in measurement set: {cores}")
        if not ordered:
            raise ValueError("a MeasurementSet needs at least one measurement")

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    @property
    def cores(self) -> np.ndarray:
        """Core counts as an integer array (ascending)."""
        return np.asarray([m.cores for m in self.measurements], dtype=int)

    @property
    def times(self) -> np.ndarray:
        """Execution times (seconds), aligned with :attr:`cores`."""
        return np.asarray([m.time for m in self.measurements], dtype=float)

    @property
    def max_cores(self) -> int:
        return int(self.measurements[-1].cores)

    def category_names(
        self, *, software: bool = True, frontend: bool = False
    ) -> tuple[str, ...]:
        """Union of stall-category names present across all measurements."""
        names: dict[str, None] = {}
        for m in self.measurements:
            for key in m.stall_categories(software=software, frontend=frontend):
                names.setdefault(key, None)
        return tuple(names)

    def category_series(
        self, name: str, *, software: bool = True, frontend: bool = False
    ) -> np.ndarray:
        """Values of one stall category across core counts (0.0 when absent)."""
        return np.asarray(
            [
                m.stall_categories(software=software, frontend=frontend).get(name, 0.0)
                for m in self.measurements
            ],
            dtype=float,
        )

    def stalls_per_core(self, *, software: bool = True, frontend: bool = False) -> np.ndarray:
        """Measured total stalled cycles per core for each core count."""
        return np.asarray(
            [m.stalls_per_core(software=software, frontend=frontend) for m in self.measurements],
            dtype=float,
        )

    def restrict_to(self, max_cores: int) -> "MeasurementSet":
        """Keep only measurements with ``cores <= max_cores``.

        This is how a "small measurement machine" is emulated when the data
        was collected on a bigger one (e.g. measuring on one Opteron socket,
        Section 4.4).
        """
        kept = tuple(m for m in self.measurements if m.cores <= max_cores)
        if not kept:
            raise ValueError(f"no measurements with cores <= {max_cores}")
        return MeasurementSet(
            measurements=kept,
            workload=self.workload,
            machine=self.machine,
            frequency_ghz=self.frequency_ghz,
            dataset_size=self.dataset_size,
        )

    def subset(self, core_counts: Iterable[int]) -> "MeasurementSet":
        """Keep only the given core counts (raises if any is missing)."""
        wanted = set(int(c) for c in core_counts)
        by_cores = {m.cores: m for m in self.measurements}
        missing = wanted - set(by_cores)
        if missing:
            raise KeyError(f"missing core counts: {sorted(missing)}")
        return MeasurementSet(
            measurements=tuple(by_cores[c] for c in sorted(wanted)),
            workload=self.workload,
            machine=self.machine,
            frequency_ghz=self.frequency_ghz,
            dataset_size=self.dataset_size,
        )

    def time_at(self, cores: int) -> float:
        """Measured execution time at an exact core count."""
        for m in self.measurements:
            if m.cores == cores:
                return m.time
        raise KeyError(f"no measurement at {cores} cores")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "machine": self.machine,
            "frequency_ghz": self.frequency_ghz,
            "dataset_size": self.dataset_size,
            "measurements": [m.to_dict() for m in self.measurements],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MeasurementSet":
        return cls(
            measurements=tuple(Measurement.from_dict(m) for m in payload["measurements"]),
            workload=str(payload.get("workload", "")),
            machine=str(payload.get("machine", "")),
            frequency_ghz=float(payload.get("frequency_ghz", 0.0)),
            dataset_size=float(payload.get("dataset_size", 1.0)),
        )

    def save(self, path: str | Path) -> None:
        """Serialise to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "MeasurementSet":
        """Load a measurement set previously written with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_arrays(
        cls,
        cores: Sequence[int],
        times: Sequence[float],
        categories: Mapping[str, Sequence[float]] | None = None,
        *,
        software_categories: Mapping[str, Sequence[float]] | None = None,
        workload: str = "",
        machine: str = "",
    ) -> "MeasurementSet":
        """Build a set from parallel arrays (convenient in tests and examples)."""
        categories = categories or {}
        software_categories = software_categories or {}
        cores = list(cores)
        measurements = []
        for i, c in enumerate(cores):
            hw = {name: float(vals[i]) for name, vals in categories.items()}
            sw = {name: float(vals[i]) for name, vals in software_categories.items()}
            measurements.append(
                Measurement(cores=int(c), time=float(times[i]), hardware_stalls=hw, software_stalls=sw)
            )
        return cls(measurements=tuple(measurements), workload=workload, machine=machine)
