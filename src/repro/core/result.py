"""Prediction result containers.

A :class:`ScalabilityPrediction` bundles everything one ESTIMA run produces:
the per-category extrapolations (Figure 5 a-f), the stalled cycles per core
curve (Figure 5 g), the scaling-factor model (Figure 5 h) and the predicted
execution times (Figure 5 i), plus helpers to evaluate the prediction against
ground-truth measurements (Tables 4 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .measurement import MeasurementSet
from .metrics import max_relative_error, mean_relative_error, pearson_correlation, relative_errors
from .regression import ExtrapolationResult
from .scaling_factor import ScalingFactorModel

__all__ = ["ScalabilityPrediction", "PredictionError"]


@dataclass(frozen=True)
class PredictionError:
    """Error summary of one prediction against measured ground truth."""

    cores: np.ndarray
    predicted: np.ndarray
    actual: np.ndarray
    max_error_pct: float
    mean_error_pct: float

    def error_at(self, cores: int) -> float:
        """Absolute relative error (percent) at one core count."""
        idx = np.where(self.cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction evaluated at {cores} cores")
        i = int(idx[0])
        return float(abs(self.predicted[i] - self.actual[i]) / self.actual[i] * 100.0)


@dataclass(frozen=True)
class ScalabilityPrediction:
    """Full output of :meth:`repro.core.predictor.EstimaPredictor.predict`.

    Attributes
    ----------
    workload / machine:
        Labels copied from the measurement set.
    measured:
        The measurement set the prediction was built from (already restricted
        to the measurement machine's core counts).
    target_cores:
        The highest core count predicted for.
    prediction_cores:
        Every core count from 1 to ``target_cores`` (the prediction grid).
    category_extrapolations:
        Per stall category, the chosen kernel fit and its extrapolation.
    stalls_per_core:
        Extrapolated total stalled cycles per core over ``prediction_cores``.
    scaling_factor:
        The time/stalls-per-core translation model.
    predicted_times:
        Predicted execution time (seconds, target-machine time base) over
        ``prediction_cores``.
    """

    workload: str
    machine: str
    measured: MeasurementSet
    target_cores: int
    prediction_cores: np.ndarray
    category_extrapolations: Mapping[str, ExtrapolationResult]
    stalls_per_core: np.ndarray
    scaling_factor: ScalingFactorModel
    predicted_times: np.ndarray
    dataset_ratio: float = 1.0
    frequency_ratio: float = 1.0

    def predicted_time_at(self, cores: int) -> float:
        """Predicted execution time at one core count."""
        idx = np.where(self.prediction_cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction at {cores} cores (target {self.target_cores})")
        return float(self.predicted_times[int(idx[0])])

    def stalls_per_core_at(self, cores: int) -> float:
        idx = np.where(self.prediction_cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction at {cores} cores")
        return float(self.stalls_per_core[int(idx[0])])

    def predicted_speedup(self) -> np.ndarray:
        """Predicted speedup relative to the predicted single-core time."""
        base = self.predicted_times[0]
        return base / self.predicted_times

    def predicted_peak_cores(self) -> int:
        """Core count at which predicted execution time is lowest.

        This is the paper's "number of cores for which the application stops
        scaling": beyond it, adding cores no longer improves (or degrades)
        performance.
        """
        return int(self.prediction_cores[int(np.argmin(self.predicted_times))])

    def predicts_scaling_beyond(self, cores: int, *, tolerance: float = 0.02) -> bool:
        """Whether the prediction says performance still improves past ``cores``.

        ``tolerance`` ignores improvements smaller than the given fraction, so
        flat tails do not count as "still scaling".
        """
        idx = np.where(self.prediction_cores == cores)[0]
        if idx.size == 0:
            raise KeyError(f"no prediction at {cores} cores")
        i = int(idx[0])
        if i == self.prediction_cores.size - 1:
            return False
        best_later = float(np.min(self.predicted_times[i + 1 :]))
        return best_later < self.predicted_times[i] * (1.0 - tolerance)

    def evaluate(
        self, actual: MeasurementSet, *, core_counts: Sequence[int] | None = None
    ) -> PredictionError:
        """Compare predicted times against ground-truth measurements.

        Only core counts above the measurement machine's maximum are scored by
        default (those are the actual predictions); pass ``core_counts`` to
        override, e.g. to include the measured range too.
        """
        if core_counts is None:
            cutoff = self.measured.max_cores
            core_counts = [int(c) for c in actual.cores if c > cutoff]
        core_counts = [int(c) for c in core_counts]
        if not core_counts:
            raise ValueError("no core counts to evaluate the prediction at")
        predicted = np.asarray([self.predicted_time_at(c) for c in core_counts], dtype=float)
        measured = np.asarray([actual.time_at(c) for c in core_counts], dtype=float)
        return PredictionError(
            cores=np.asarray(core_counts, dtype=int),
            predicted=predicted,
            actual=measured,
            max_error_pct=max_relative_error(predicted, measured),
            mean_error_pct=mean_relative_error(predicted, measured),
        )

    def correlation_with_actual(self, actual: MeasurementSet) -> float:
        """Pearson correlation of predicted vs measured time over shared cores."""
        shared = [int(c) for c in actual.cores if c <= self.target_cores]
        predicted = np.asarray([self.predicted_time_at(c) for c in shared], dtype=float)
        measured = np.asarray([actual.time_at(c) for c in shared], dtype=float)
        return pearson_correlation(predicted, measured)

    def dominant_categories(self, cores: int, *, top: int = 3) -> list[tuple[str, float]]:
        """The stall categories contributing most at ``cores`` (bottleneck hunting).

        Returns (category, fraction-of-total) pairs sorted by contribution,
        the Section-4.6 starting point for identifying future bottlenecks.
        """
        contributions = {
            name: float(max(res.predict(cores), 0.0))
            for name, res in self.category_extrapolations.items()
        }
        total = sum(contributions.values())
        if total <= 0.0:
            return []
        ranked = sorted(contributions.items(), key=lambda kv: kv[1], reverse=True)
        return [(name, value / total) for name, value in ranked[:top]]

    def summary(self) -> str:
        """Human-readable multi-line summary of the prediction."""
        lines = [
            f"ESTIMA prediction for {self.workload or '<workload>'} on "
            f"{self.machine or '<machine>'}",
            f"  measured up to {self.measured.max_cores} cores, "
            f"predicted up to {self.target_cores}",
            f"  scaling-factor kernel: {self.scaling_factor.kernel_name} "
            f"(correlation {self.scaling_factor.correlation:.3f})",
            f"  predicted best core count: {self.predicted_peak_cores()}",
        ]
        for name, res in self.category_extrapolations.items():
            lines.append(f"  category {name}: kernel {res.kernel_name}")
        return "\n".join(lines)
