"""Translating stalled cycles per core into execution time (Section 3.1.3).

Stalled cycles per core and execution time follow the same shape but are
different quantities; the ratio between them — the *scaling factor*
``factor(n) = time(n) / stalls_per_core(n)`` — is itself a function of the
core count.  ESTIMA computes the factor at the measured core counts, fits the
same Table-1 kernels to it, and then, unlike the per-category regression,
chooses the kernel whose *predicted execution times have the highest Pearson
correlation with the extrapolated stalled cycles per core* over the target
range.  The winning factor function turns extrapolated stalls per core into
predicted execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .config import EstimaConfig
from .fitting import FittedFunction, fit_kernel
from .kernels import get_kernel
from .metrics import pearson_correlation

__all__ = ["ScalingFactorModel", "fit_scaling_factor"]

#: Absolute margin treating two candidate correlations (range [-1, 1]) as
#: tied; the earlier kernel of the fixed Table-1 order then wins, so
#: allocation-context noise in the fits (see ``fitting.SCORE_TIE_REL``)
#: cannot flip the selection between runs.
_CORRELATION_TIE_ABS = 1e-7


@dataclass(frozen=True)
class ScalingFactorModel:
    """The chosen time/stalls-per-core scaling function.

    Attributes
    ----------
    fitted:
        The winning kernel fit of the factor series.
    correlation:
        Pearson correlation between the resulting time predictions and the
        extrapolated stalls per core over the evaluation range (the selection
        criterion).
    measured_cores / measured_factor:
        The training series ``time(n) / stalls_per_core(n)``.
    """

    fitted: FittedFunction
    correlation: float
    measured_cores: np.ndarray
    measured_factor: np.ndarray

    @property
    def kernel_name(self) -> str:
        return self.fitted.name

    def factor(self, n: np.ndarray | Sequence[int] | float) -> np.ndarray:
        """Scaling-factor values at core counts ``n`` (clamped positive)."""
        return np.maximum(self.fitted(np.asarray(n, dtype=float)), 0.0)

    def predict_time(
        self, n: np.ndarray | Sequence[int] | float, stalls_per_core: np.ndarray | float
    ) -> np.ndarray:
        """Predicted execution time = factor(n) * stalls_per_core(n)."""
        return self.factor(n) * np.asarray(stalls_per_core, dtype=float)


def fit_scaling_factor(
    cores: Sequence[int] | np.ndarray,
    times: Sequence[float] | np.ndarray,
    stalls_per_core: Sequence[float] | np.ndarray,
    config: EstimaConfig,
    *,
    eval_cores: Sequence[int] | np.ndarray,
    eval_stalls_per_core: Sequence[float] | np.ndarray,
) -> ScalingFactorModel:
    """Fit the scaling factor and select by correlation (Section 3.1.3).

    Parameters
    ----------
    cores, times, stalls_per_core:
        Measured series at the low core counts.
    eval_cores, eval_stalls_per_core:
        The full target range and the already-extrapolated stalls per core on
        it; candidate factors are judged by how well ``factor * stalls``
        correlates with the stalls-per-core curve there.
    """
    x = np.asarray(cores, dtype=float)
    t = np.asarray(times, dtype=float)
    spc = np.asarray(stalls_per_core, dtype=float)
    if not (x.size == t.size == spc.size):
        raise ValueError("cores, times and stalls_per_core must be equally long")
    if np.any(spc <= 0.0):
        raise ValueError("stalls per core must be positive to form the scaling factor")

    factor = t / spc
    ev_x = np.asarray(eval_cores, dtype=float)
    ev_spc = np.asarray(eval_stalls_per_core, dtype=float)
    if ev_x.size != ev_spc.size:
        raise ValueError("eval_cores and eval_stalls_per_core must be equally long")
    scale_bound = config.max_extrapolation_factor * max(float(np.max(np.abs(factor))), 1e-30)

    def _select(allow_negative: bool) -> tuple[float, FittedFunction] | None:
        best: tuple[float, FittedFunction] | None = None
        for kernel in config.kernels:
            fitted = fit_kernel(kernel, x, factor)
            if fitted is None:
                continue
            if not fitted.is_realistic(
                ev_x, allow_negative=allow_negative, max_factor=scale_bound
            ):
                continue
            predicted_time = np.maximum(fitted(ev_x), 0.0) * ev_spc
            if not np.all(np.isfinite(predicted_time)):
                continue
            corr = pearson_correlation(predicted_time, ev_spc) if ev_x.size >= 2 else 1.0
            # Epsilon-max: two good kernels often correlate within last-ULP
            # noise of each other (both ~1.0); the margin keeps the selection
            # stable across runs (see fitting.SCORE_TIE_REL), preferring the
            # earlier kernel of the fixed Table-1 order.
            if best is None or corr > best[0] + _CORRELATION_TIE_ABS:
                best = (corr, fitted)
        return best

    best = _select(allow_negative=False)
    if best is None:
        # Short or steeply decreasing factor series can leave no kernel
        # positive everywhere; fall back to unconstrained fits (predictions
        # are clamped at zero downstream).
        best = _select(allow_negative=True)
    if best is None:
        # Last resort: a constant factor equal to the measured mean.  This
        # keeps the pipeline usable on degenerate inputs instead of failing.
        constant = FittedFunction(
            kernel=get_kernel("Poly25"),
            params=(1.0, 0.0, 0.0, 0.0),
            scale=float(np.mean(factor)),
            train_cores=tuple(int(c) for c in x),
            train_rmse=float(np.std(factor)),
        )
        best = (0.0, constant)

    correlation, fitted = best
    return ScalingFactorModel(
        fitted=fitted,
        correlation=float(correlation),
        measured_cores=np.asarray(cores, dtype=int),
        measured_factor=factor,
    )
