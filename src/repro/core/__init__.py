"""ESTIMA core: stalled-cycle extrapolation of application scalability.

This package is the paper's primary contribution: collect fine-grain backend
stalled-cycle counters (plus optional software stalls) at low core counts,
extrapolate every category with a small set of analytic kernels, translate the
combined stalls per core back into execution time, and report the predicted
scalability of the application on a larger machine.
"""

from .config import EstimaConfig
from .fitting import FittedFunction, fit_kernel
from .kernels import KERNELS, Kernel, get_kernel, kernel_names
from .measurement import Measurement, MeasurementSet
from .metrics import (
    max_relative_error,
    mean_relative_error,
    pearson_correlation,
    relative_errors,
    rmse,
)
from .plugins import PluginSet, StallPlugin
from .predictor import EstimaPredictor
from .regression import ExtrapolationResult, extrapolate_series
from .result import PredictionError, ScalabilityPrediction
from .scaling_factor import ScalingFactorModel, fit_scaling_factor
from .time_extrapolation import TimeExtrapolation, TimeExtrapolationPrediction
from .weak_scaling import (
    dataset_ratio_from_footprints,
    scale_categories,
    scale_extrapolated_stalls,
)

__all__ = [
    "EstimaConfig",
    "EstimaPredictor",
    "ExtrapolationResult",
    "FittedFunction",
    "KERNELS",
    "Kernel",
    "Measurement",
    "MeasurementSet",
    "PluginSet",
    "PredictionError",
    "ScalabilityPrediction",
    "ScalingFactorModel",
    "StallPlugin",
    "TimeExtrapolation",
    "TimeExtrapolationPrediction",
    "dataset_ratio_from_footprints",
    "extrapolate_series",
    "fit_kernel",
    "fit_scaling_factor",
    "get_kernel",
    "kernel_names",
    "max_relative_error",
    "mean_relative_error",
    "pearson_correlation",
    "relative_errors",
    "rmse",
    "scale_categories",
    "scale_extrapolated_stalls",
]
