"""Weak-scaling support (Section 4.5).

When the target machine also runs a larger dataset, ESTIMA keeps its pipeline
unchanged and simply scales the extrapolated stall values by the dataset-size
ratio — "a simple technique" in the paper's words — plus it records the memory
footprint during measurement so the ratio can be derived automatically.

The paper notes (and we expose as an extension) that scaling different stall
categories with different exponents could improve accuracy; see
:func:`scale_categories` and its per-category exponents.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

__all__ = [
    "scale_extrapolated_stalls",
    "scale_categories",
    "dataset_ratio_from_footprints",
]


def scale_extrapolated_stalls(
    stalls_per_core: np.ndarray, *, dataset_ratio: float
) -> np.ndarray:
    """Scale extrapolated stalls-per-core by the dataset-size ratio.

    A ratio of 1.0 (strong scaling) returns the input untouched.
    """
    if dataset_ratio <= 0.0:
        raise ValueError("dataset_ratio must be positive")
    if dataset_ratio == 1.0:
        return np.asarray(stalls_per_core, dtype=float)
    return np.asarray(stalls_per_core, dtype=float) * dataset_ratio


def scale_categories(
    category_values: Mapping[str, np.ndarray],
    *,
    dataset_ratio: float,
    exponents: Mapping[str, float] | None = None,
) -> dict[str, np.ndarray]:
    """Per-category weak scaling (the paper's suggested refinement).

    Each category ``c`` is scaled by ``dataset_ratio ** exponents.get(c, 1.0)``.
    With no exponents this reduces to the simple uniform scaling the paper
    evaluates; sub-linear exponents model categories (e.g. FPU stalls) that do
    not grow with the dataset.
    """
    if dataset_ratio <= 0.0:
        raise ValueError("dataset_ratio must be positive")
    exponents = exponents or {}
    scaled: dict[str, np.ndarray] = {}
    for name, values in category_values.items():
        exp = float(exponents.get(name, 1.0))
        scaled[name] = np.asarray(values, dtype=float) * (dataset_ratio**exp)
    return scaled


def dataset_ratio_from_footprints(
    measured_footprint_mb: float, target_footprint_mb: float
) -> float:
    """Derive the dataset ratio from measured and target memory footprints."""
    if measured_footprint_mb <= 0.0 or target_footprint_mb <= 0.0:
        raise ValueError("memory footprints must be positive")
    return target_footprint_mb / measured_footprint_mb
