"""Vectorized fit-grid engine for the Section-3.1.2 prefix sweep.

The prefix sweep of :mod:`repro.core.regression` fits every (kernel,
training-prefix) pair of Table 1 — `O(prefixes x kernels x starts)` separate
solver calls.  Profiling (see :mod:`repro.engine.profiling`) shows a cold
campaign spends essentially all of its time inside the iterative LM/TRF
solves of the non-linear kernels, most of which lose the multi-start
selection anyway.  This module restructures that work with batched numpy
linear algebra while keeping the *chosen numbers* bit-identical to the
scalar reference path in :mod:`repro.core.fitting`:

1. **prefix-shared linear solves** — for the linear-in-parameters kernels
   (``CubicLn``/``Poly25``) the design matrix of prefix ``p`` is the first
   ``p`` rows of the full-series matrix, so the sweep builds one matrix and
   slices it per prefix (each slice is still solved with the exact
   ``lstsq`` call of the reference path, so parameters are bit-identical);
2. **a lean reference-equal non-linear driver** — profiling shows the tiny
   (3-13 point) per-cell solves spend most of their wall time in
   ``scipy.optimize.least_squares``'s generic wrapper layers, not in the
   actual LM/TRF iteration.  The lean driver invokes the same underlying
   machinery directly (``_minpack._lmder`` for determined cells, the
   trust-region ``trf`` loop for under-determined ones) with the exact
   tolerances, scalings and finite-difference steps the wrapper would have
   produced, and evaluates each finite-difference Jacobian as one stacked
   ``(params, points)`` kernel broadcast instead of a per-column Python
   loop.  Every floating-point operation the solver sees is the same, in
   the same order, so the resulting parameters are bit-identical to the
   scalar path's (asserted by a seeded cross-check in the test suite).
   When the private scipy entry points are unavailable the engine falls
   back to the reference call per cell;
3. **batched candidate screening** — the realism predicate and the
   checkpoint-RMSE scoring evaluate all surviving candidates over the
   evaluation range / checkpoints as one stacked ``(candidates, points)``
   kernel broadcast instead of a per-candidate Python loop (kernel
   evaluation is elementwise, so the stacked values are bit-identical to
   the per-candidate ones).

A fourth transformation — batched damped-Gauss-Newton *screening* of all
(start, prefix) cells at once, handing only the top-ranked starts to the
real solver — is implemented but **opt-in** (``ESTIMA_FIT_SCREEN=prune``):
measurement shows the reference solver regularly escapes to better basins
than the screening iteration reaches from the same start, so screened
ranks cannot guarantee the multi-start winner and pruning trades
bit-identity for speed.  The default mode solves every start exactly.

Strategy selection lives here too: ``EstimaConfig(fit_strategy=...)`` or
``ESTIMA_FIT_STRATEGY`` chooses ``"vectorized"`` (the default) or
``"serial"`` (the reference scalar loop).  The strategy never takes part in
cache keys — both strategies produce identical fits, so they share cache
entries (the grid probes and fills the engine's fit cache with the same
per-cell keys and hit/miss accounting as the scalar path).
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.engine.cache import FIT_CACHE, fit_key
from repro.engine.profiling import PROFILER

from .fitting import (
    SCORE_TIE_REL,
    FittedFunction,
    _LM_LOCK,
    _finish_nonlinear,
    _linear_design,
    _linear_fit,
    _multi_start_fits,
    _norm_scale,
    _residuals,
    _solve_start,
    _validate_series,
)
from .kernels import _DENOM_EPS, Kernel
from .metrics import rmse

try:  # pragma: no cover - exercised indirectly by the solver identity tests
    from scipy.optimize import _minpack as _sp_minpack
    from scipy.optimize._lsq.least_squares import check_x_scale as _sp_check_x_scale
    from scipy.optimize._lsq.trf import trf as _sp_trf
    from scipy.optimize._numdiff import (
        _compute_absolute_step as _sp_compute_absolute_step,
    )

    LEAN_SOLVER_AVAILABLE = True
except ImportError:  # pragma: no cover - older/newer scipy layouts
    LEAN_SOLVER_AVAILABLE = False

__all__ = [
    "FIT_STRATEGIES",
    "DEFAULT_FIT_STRATEGY",
    "ENV_FIT_STRATEGY",
    "ENV_FIT_SCREEN",
    "SCREEN_MODES",
    "LEAN_SOLVER_AVAILABLE",
    "parse_fit_strategy",
    "fit_strategy_from_env",
    "resolve_fit_strategy",
    "screen_mode_from_env",
    "fit_grid",
    "screen_candidates",
]

#: Environment variable selecting the fit-grid strategy.
ENV_FIT_STRATEGY = "ESTIMA_FIT_STRATEGY"

#: Recognised strategies: the scalar reference loop and this engine.
FIT_STRATEGIES = ("serial", "vectorized")

#: Used when neither the config field nor the environment picks one.
DEFAULT_FIT_STRATEGY = "vectorized"

#: Environment variable selecting the multi-start screening mode of the
#: vectorized engine: ``off`` (default — every start is solved exactly) or
#: ``prune`` (batched screening ranks the starts and only likely winners are
#: solved; faster, but the chosen fit may differ from the reference path
#: within multi-start selection noise).
ENV_FIT_SCREEN = "ESTIMA_FIT_SCREEN"

#: Recognised screening modes.
SCREEN_MODES = ("off", "prune")

#: Damped Gauss-Newton iterations of the batched screening pass.  Enough to
#: land in (or very near) the basin the real solver would reach from the
#: same start on these tiny (<= 7 parameter, <= ~20 point) problems.
SCREEN_ITERS = 50

#: A start is handed to the real solver when its screened training RMSE is
#: within this relative margin of the best screened start of its cell.
#: Screened losses slightly overestimate fully-converged losses, so the
#: margin is generous relative to ``SCORE_TIE_REL``.
SCREEN_KEEP_REL = 0.25

#: Two screened parameter vectors closer than this (relative, per
#: component) are treated as one basin; only the earlier start is solved —
#: the scalar path's epsilon tie-break would keep the earlier start anyway.
SCREEN_BASIN_TOL = 1e-2

#: Cells whose best screened RMSE (normalised) is at or below this floor are
#: *perfect-fit* cells: the model can drive the training residual to the
#: solver's stopping tolerance, so the scalar path's multi-start winner is
#: decided by per-start solver stopping noise — rmse differences far larger
#: than ``SCORE_TIE_REL`` that deep screening convergence cannot predict.
#: Such cells run every start through the reference solver; pruning applies
#: only to data-limited cells, where same-basin solver runs stop within
#: ``ftol`` of each other (a tie under the epsilon rule).
SCREEN_NOISE_ABS = 1e-5

#: Screened RMSE at or above this means the screening iteration never found
#: a finite residual for that start (divergence).  The real solver is more
#: robust than the screening pass, so such starts are never pruned and
#: never take part in basin deduplication.
SCREEN_DIVERGED = 1e5


# --------------------------------------------------------------------------- #
# Strategy selection
# --------------------------------------------------------------------------- #


def parse_fit_strategy(value: object, *, source: str = "fit_strategy") -> str:
    """Validate a strategy token; raises ``ValueError`` naming its source."""
    token = str(value).strip().lower()
    if token in FIT_STRATEGIES:
        return token
    raise ValueError(
        f"invalid {source}={value!r}: expected one of {', '.join(FIT_STRATEGIES)}"
    )


def fit_strategy_from_env() -> str | None:
    """The validated ``ESTIMA_FIT_STRATEGY`` value, or None when unset/blank."""
    raw = os.environ.get(ENV_FIT_STRATEGY)
    if raw is None or not raw.strip():
        return None
    return parse_fit_strategy(raw, source=ENV_FIT_STRATEGY)


def resolve_fit_strategy(config: object) -> str:
    """Strategy for a run: explicit config field, else environment, else default."""
    value = getattr(config, "fit_strategy", None)
    if value is not None:
        return parse_fit_strategy(value)
    env = fit_strategy_from_env()
    return env if env is not None else DEFAULT_FIT_STRATEGY


def screen_mode_from_env() -> str:
    """The validated ``ESTIMA_FIT_SCREEN`` mode (``off`` when unset/blank)."""
    raw = os.environ.get(ENV_FIT_SCREEN)
    if raw is None or not raw.strip():
        return "off"
    token = raw.strip().lower()
    if token in SCREEN_MODES:
        return token
    raise ValueError(
        f"invalid {ENV_FIT_SCREEN}={raw!r}: expected one of {', '.join(SCREEN_MODES)}"
    )


# --------------------------------------------------------------------------- #
# Lean reference-equal non-linear driver
# --------------------------------------------------------------------------- #


def _lean_fun_jac(kernel: Kernel, x: np.ndarray, y_norm: np.ndarray):
    """A ``(fun, jac)`` pair producing the reference solver's exact values.

    ``fun`` wraps the scalar path's residual closure
    (:func:`repro.core.fitting._residuals`) with the same single-point
    memoisation ``scipy``'s ``VectorFunction`` applies, so the solver's
    fun-then-jac call pattern costs one evaluation per point.  ``jac``
    rebuilds the wrapper's 2-point finite-difference Jacobian — scipy's own
    ``_compute_absolute_step`` supplies the steps, and the bumped parameter
    vectors are evaluated as one stacked kernel broadcast whose rows are
    elementwise-identical to the per-column evaluations of the wrapper's
    ``approx_derivative`` loop.
    """
    resid = _residuals(kernel, x, y_norm)
    memo: dict[bytes, np.ndarray] = {}

    def fun(params: np.ndarray) -> np.ndarray:
        key = params.tobytes()
        value = memo.get(key)
        if value is None:
            value = np.atleast_1d(resid(params))
            memo.clear()
            memo[key] = value
        return value.copy()

    def jac(params: np.ndarray, f0: np.ndarray | None = None) -> np.ndarray:
        f_at = fun(params)
        h = _sp_compute_absolute_step(None, params, f_at, "2-point")
        n = params.size
        bumped = np.tile(params, (n, 1))
        diag = np.arange(n)
        bumped[diag, diag] = params + h
        res = _eval_rows(kernel, x, bumped) - y_norm
        rows = np.where(np.isfinite(res), res, 1e6)
        dx = (params + h) - params
        return ((rows - f_at) / dx[:, None]).T

    return fun, jac


def _lean_solve_start(
    kernel: Kernel,
    x: np.ndarray,
    y_norm: np.ndarray,
    guess: Sequence[float],
    *,
    underdetermined: bool,
    max_nfev: int,
) -> np.ndarray | None:
    """Bit-identical twin of :func:`repro.core.fitting._solve_start`.

    Drives the same MINPACK ``lmder`` / trust-region ``trf`` iteration the
    reference call reaches through ``scipy.optimize.least_squares``, with
    the wrapper's exact tolerances (``ftol=xtol=gtol=1e-8``), scaling and
    Jacobian values, but without its per-call validation and
    ``VectorFunction`` plumbing — which dominates wall time on these tiny
    problems.  Returns the same parameters (or ``None``) the reference call
    would for every input.
    """
    fun, jac = _lean_fun_jac(kernel, x, y_norm)
    x0 = np.asarray(guess, dtype=float)
    try:
        with PROFILER.stage("nonlinear_solve"):
            f0 = fun(x0)
            if not np.all(np.isfinite(f0)):
                # least_squares rejects non-finite initial residuals.
                return None
            if underdetermined:
                result = _sp_trf(
                    fun,
                    jac,
                    x0,
                    f0,
                    jac(x0),
                    np.full(x0.size, -np.inf),
                    np.full(x0.size, np.inf),
                    1e-8,
                    1e-8,
                    1e-8,
                    max_nfev,
                    _sp_check_x_scale(None, x0, "trf"),
                    None,
                    "exact",
                    {},
                    0,
                )
                solved = result.x
            else:
                with _LM_LOCK:
                    solved, _info, _status = _sp_minpack._lmder(
                        fun,
                        jac,
                        x0.astype(x0.dtype),
                        (),
                        True,
                        False,
                        1e-8,
                        1e-8,
                        1e-8,
                        max_nfev,
                        100.0,
                        None,
                    )
    except (ValueError, FloatingPointError):
        return None
    if not np.all(np.isfinite(solved)):
        return None
    return solved


def _nonlinear_solve(
    kernel: Kernel,
    x: np.ndarray,
    y_norm: np.ndarray,
    guess: Sequence[float],
    *,
    underdetermined: bool,
    max_nfev: int,
) -> np.ndarray | None:
    """One start through the lean driver, or the reference call as fallback."""
    if not LEAN_SOLVER_AVAILABLE:
        return _solve_start(
            kernel, x, y_norm, guess, underdetermined=underdetermined, max_nfev=max_nfev
        )
    return _lean_solve_start(
        kernel, x, y_norm, guess, underdetermined=underdetermined, max_nfev=max_nfev
    )


# --------------------------------------------------------------------------- #
# Batched kernel evaluation
# --------------------------------------------------------------------------- #


def _eval_rows(kernel: Kernel, n: np.ndarray, params: np.ndarray) -> np.ndarray:
    """Evaluate ``kernel`` at ``n`` for a stack of parameter rows.

    ``params`` has shape ``(..., n_params)``; each parameter becomes a
    broadcast column, so the result has shape ``(..., len(n))``.  Kernel
    functions are plain elementwise numpy expressions, so every output
    element is bit-identical to a scalar-parameter evaluation with the same
    parameter values.
    """
    cols = [params[..., j][..., None] for j in range(params.shape[-1])]
    return np.asarray(kernel.func(n, *cols), dtype=float)


def _batched_denominator(kernel_name: str, params: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Row-stacked twin of :func:`repro.core.kernels._rational_denominator`."""
    p = params
    if kernel_name == "Rat22":
        return 1.0 + p[..., [3]] * n + p[..., [4]] * n**2
    if kernel_name == "Rat23":
        return 1.0 + p[..., [3]] * n + p[..., [4]] * n**2 + p[..., [5]] * n**3
    if kernel_name == "Rat33":
        return 1.0 + p[..., [4]] * n + p[..., [5]] * n**2 + p[..., [6]] * n**3
    if kernel_name == "ExpRat":
        return p[..., [2]] + p[..., [3]] * n
    raise ValueError(f"{kernel_name} is not a rational kernel")


# --------------------------------------------------------------------------- #
# Batched multi-start screening
# --------------------------------------------------------------------------- #


def _screen_kernel(
    kernel: Kernel,
    x: np.ndarray,
    y: np.ndarray,
    prefixes: Sequence[int],
    scales: dict[int, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Screen all (start, prefix) cells of one non-linear kernel at once.

    Runs :data:`SCREEN_ITERS` damped Gauss-Newton steps on the normalised
    residuals of every cell simultaneously (finite-difference Jacobians,
    per-cell adaptive damping, step acceptance by loss decrease — a batched
    Levenberg-Marquardt in all but pedigree).  Returns ``(screened_rmse,
    screened_params)`` with shapes ``(starts, len(prefixes))`` and
    ``(starts, len(prefixes), n_params)``.  The output only *ranks* starts;
    every fit that leaves this module is produced by the reference solver.
    """
    guesses = np.asarray(kernel.initial_guesses, dtype=float)  # (S, K)
    n_starts, n_params = guesses.shape
    n_cells = len(prefixes)
    width = max(prefixes)
    xs = x[:width]

    # Per-prefix normalised targets and validity masks over a shared width.
    y_rows = np.empty((n_cells, width))
    mask = np.zeros((n_cells, width), dtype=bool)
    counts = np.asarray(prefixes, dtype=float)
    for i, p in enumerate(prefixes):
        y_rows[i, :p] = y[:p] / scales[p]
        y_rows[i, p:] = 0.0
        mask[i, :p] = True

    params = np.broadcast_to(guesses[:, None, :], (n_starts, n_cells, n_params)).copy()

    def residuals(cells: np.ndarray) -> np.ndarray:
        values = _eval_rows(kernel, xs, cells)
        res = values - y_rows
        res = np.where(np.isfinite(res), res, 1e6)
        return np.where(mask, res, 0.0)

    eye = np.eye(n_params)
    lam = np.full((n_starts, n_cells), 1e-3)
    with np.errstate(all="ignore"):
        res = residuals(params)
        sse = np.sum(res**2, axis=-1)
        stalled = 0
        for _ in range(SCREEN_ITERS):
            jac = np.empty((n_starts, n_cells, width, n_params))
            steps = 1e-6 * np.maximum(np.abs(params), 1.0)
            for j in range(n_params):
                bumped = params.copy()
                bumped[..., j] += steps[..., j]
                jac[..., j] = (residuals(bumped) - res) / steps[..., j][..., None]
            jtj = np.einsum("scnk,scnl->sckl", jac, jac)
            grad = np.einsum("scnk,scn->sck", jac, res)
            damping = np.einsum("sckk->sck", jtj)[..., None] * eye
            system = jtj + lam[..., None, None] * damping + 1e-12 * eye
            delta = _solve_steps(system, grad)
            trial = params + delta
            trial_res = residuals(trial)
            trial_sse = np.sum(trial_res**2, axis=-1)
            improved = (
                np.all(np.isfinite(trial), axis=-1)
                & np.isfinite(trial_sse)
                & (trial_sse < sse)
            )
            params = np.where(improved[..., None], trial, params)
            res = np.where(improved[..., None], trial_res, res)
            sse = np.where(improved, trial_sse, sse)
            lam = np.clip(np.where(improved, lam * 0.3, lam * 5.0), 1e-10, 1e10)
            stalled = 0 if bool(np.any(improved)) else stalled + 1
            if stalled >= 3:
                break
    screened_rmse = np.sqrt(sse / counts)
    return screened_rmse, params


def _solve_steps(system: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Batched solve of the damped normal equations, robust to singular cells."""
    try:
        return np.linalg.solve(system, -grad[..., None])[..., 0]
    except np.linalg.LinAlgError:
        pass
    try:
        return -(np.linalg.pinv(system) @ grad[..., None])[..., 0]
    except np.linalg.LinAlgError:
        return np.zeros_like(grad)


def _same_basin(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether two screened parameter vectors describe the same optimum."""
    tol = SCREEN_BASIN_TOL * np.maximum(1.0, np.maximum(np.abs(a), np.abs(b)))
    return bool(np.all(np.abs(a - b) <= tol))


def _fit_cell(
    kernel: Kernel,
    xp: np.ndarray,
    yp: np.ndarray,
    scale: float,
    screened_rmse: np.ndarray,
    screened_params: np.ndarray,
    max_nfev: int,
) -> FittedFunction | None:
    """Solve one (kernel, prefix) cell using the screening verdicts.

    In *data-limited* cells (best screened loss above
    :data:`SCREEN_NOISE_ABS`) only the starts whose screened loss is within
    :data:`SCREEN_KEEP_REL` of the cell's best — deduplicated by basin,
    keeping the earliest start — are run through the reference solver.  In
    *perfect-fit* cells the winner is solver stopping noise, which screening
    cannot rank, so every start runs.  The multi-start selection then
    replays the scalar path's epsilon loop over the solved fits in start
    order.  If every surviving start fails to solve, the cell falls back to
    the full scalar multi-start, so a pruned cell can never lose a fit the
    reference path would have found.
    """
    y_norm = yp / scale
    underdetermined = xp.size < kernel.n_params
    n_starts = len(kernel.initial_guesses)

    best_screen = float(np.min(screened_rmse))
    if best_screen <= SCREEN_NOISE_ABS:
        # Perfect-fit cell: solve everything, exactly like the scalar path.
        survivors = list(range(n_starts))
    else:
        survivors = []
        for s in range(n_starts):
            if screened_rmse[s] >= SCREEN_DIVERGED:
                # Screening diverged; its params are meaningless, so the
                # start can neither be ranked nor basin-compared.  Solve it.
                survivors.append(s)
                continue
            if screened_rmse[s] > best_screen * (1.0 + SCREEN_KEEP_REL):
                continue
            if any(
                screened_rmse[r] < SCREEN_DIVERGED
                and _same_basin(screened_params[s], screened_params[r])
                for r in survivors
            ):
                continue
            survivors.append(s)
    PROFILER.count("nonlinear_starts_pruned", n_starts - len(survivors))

    fits: list[FittedFunction] = []
    for s in survivors:
        solved = _nonlinear_solve(
            kernel,
            xp,
            y_norm,
            kernel.initial_guesses[s],
            underdetermined=underdetermined,
            max_nfev=max_nfev,
        )
        if solved is None:
            continue
        fit = _finish_nonlinear(kernel, xp, y_norm, scale, solved)
        if fit is not None:
            fits.append(fit)

    if not fits:
        # Every screened survivor failed; replay the reference multi-start in
        # full so the cell's outcome matches the scalar path exactly.
        PROFILER.count("screen_fallbacks", 1)
        fits = _multi_start_fits(kernel, xp, yp, max_nfev=max_nfev)

    best: FittedFunction | None = None
    for fit in fits:
        if best is None or fit.train_rmse < best.train_rmse * (1.0 - SCORE_TIE_REL):
            best = fit
    return best


def _exact_cell(
    kernel: Kernel,
    xp: np.ndarray,
    yp: np.ndarray,
    scale: float,
    max_nfev: int,
) -> FittedFunction | None:
    """Solve one (kernel, prefix) cell exactly — every start, lean driver.

    Mirrors the scalar path's multi-start loop and epsilon selection
    (:func:`repro.core.fitting._multi_start_fits` followed by the
    best-of-starts rule of ``fit_kernel``); the only difference is the
    solver invocation, which is bit-identical by construction.
    """
    y_norm = yp / scale
    underdetermined = xp.size < kernel.n_params
    best: FittedFunction | None = None
    for guess in kernel.initial_guesses:
        solved = _nonlinear_solve(
            kernel, xp, y_norm, guess, underdetermined=underdetermined, max_nfev=max_nfev
        )
        if solved is None:
            continue
        fit = _finish_nonlinear(kernel, xp, y_norm, scale, solved)
        if fit is None:
            continue
        if best is None or fit.train_rmse < best.train_rmse * (1.0 - SCORE_TIE_REL):
            best = fit
    return best


# --------------------------------------------------------------------------- #
# The grid
# --------------------------------------------------------------------------- #


def fit_grid(
    kernels: Sequence[Kernel],
    cores: np.ndarray,
    values: np.ndarray,
    prefixes: Sequence[int],
    *,
    max_nfev: int = 600,
) -> list[FittedFunction | None]:
    """Fit every (prefix, kernel) cell; returns fits in the sweep's grid order.

    The result list matches ``[(p, k) for p in prefixes for k in kernels]``
    positionally — exactly what the scalar sweep produces cell by cell.
    When the engine's fit cache is enabled, every cell is probed and filled
    under the same content key (and with the same per-cell hit/miss
    accounting) as the scalar path's ``fit_kernel`` calls, so warm entries
    are shared across strategies in both directions.
    """
    validated = _validate_series(cores, values)
    if validated is None:
        return [None] * (len(prefixes) * len(kernels))
    x, y = validated
    prefixes = [int(p) for p in prefixes]
    scales = {p: _norm_scale(y[:p]) for p in prefixes}

    fits: dict[tuple[int, str], FittedFunction | None] = {}
    cached: set[tuple[int, str]] = set()
    if FIT_CACHE.enabled:
        for p in prefixes:
            for kernel in kernels:
                hit, value = FIT_CACHE.get(fit_key(kernel.name, x[:p], y[:p], max_nfev))
                if hit:
                    fits[(p, kernel.name)] = value
                    cached.add((p, kernel.name))

    prune = screen_mode_from_env() == "prune"
    for kernel in kernels:
        todo = [p for p in prefixes if (p, kernel.name) not in fits]
        if not todo:
            continue
        design_full = _linear_design(kernel.name, x)
        if design_full is not None:
            for p in todo:
                fits[(p, kernel.name)] = _linear_fit(
                    kernel, design_full[:p], x[:p], y[:p] / scales[p], scales[p]
                )
            continue
        if not prune:
            for p in todo:
                fits[(p, kernel.name)] = _exact_cell(
                    kernel, x[:p], y[:p], scales[p], max_nfev
                )
            continue
        with PROFILER.stage("start_screen"):
            screened_rmse, screened_params = _screen_kernel(kernel, x, y, todo, scales)
        for i, p in enumerate(todo):
            fits[(p, kernel.name)] = _fit_cell(
                kernel,
                x[:p],
                y[:p],
                scales[p],
                screened_rmse[:, i],
                screened_params[:, i],
                max_nfev,
            )

    if FIT_CACHE.enabled:
        for (p, name), fit in fits.items():
            if (p, name) not in cached:
                FIT_CACHE.put(fit_key(name, x[:p], y[:p], max_nfev), fit)

    return [fits[(p, kernel.name)] for p in prefixes for kernel in kernels]


# --------------------------------------------------------------------------- #
# Batched realism screening + checkpoint scoring
# --------------------------------------------------------------------------- #


def screen_candidates(
    fitted_grid: Sequence[FittedFunction | None],
    eval_range: np.ndarray,
    check_x: np.ndarray,
    check_y: np.ndarray,
    *,
    allow_negative: bool,
    max_factor: float,
) -> list[tuple[int, float]]:
    """Batched Section-3.1.2 screening of a fitted grid.

    Returns ``(grid_index, checkpoint_rmse)`` for every candidate that
    passes the realism predicate and scores finitely at the checkpoints, in
    grid order — the same pairs the scalar screening loop produces, because
    the stacked kernel evaluation is elementwise-identical to the
    per-candidate one and the per-row RMSE reduces each row exactly like
    the scalar :func:`repro.core.metrics.rmse`.
    """
    present: dict[str, list[tuple[int, FittedFunction]]] = {}
    for index, fitted in enumerate(fitted_grid):
        if fitted is not None:
            present.setdefault(fitted.name, []).append((index, fitted))

    scores: dict[int, float] = {}
    for name, members in present.items():
        kernel = members[0][1].kernel
        params = np.asarray([fit.params for _, fit in members], dtype=float)
        scale_col = np.asarray([fit.scale for _, fit in members], dtype=float)[:, None]

        with PROFILER.stage("realism_screen"), np.errstate(all="ignore"):
            if kernel.rational:
                den = _batched_denominator(name, params, eval_range)
                pole = np.any(np.abs(den) < _DENOM_EPS, axis=-1) | np.any(
                    den[..., :-1] * den[..., 1:] < 0.0, axis=-1
                )
            else:
                pole = np.zeros(len(members), dtype=bool)
            values = _eval_rows(kernel, eval_range, params) * scale_col
            finite = np.all(np.isfinite(values), axis=-1)
            realistic = ~pole & finite & ~np.any(np.abs(values) > max_factor, axis=-1)
            if not allow_negative:
                realistic &= ~np.any(values < 0.0, axis=-1)

        kept = [member for member, ok in zip(members, realistic) if ok]
        if not kept:
            continue
        with PROFILER.stage("checkpoint_score"):
            kept_params = np.asarray([fit.params for _, fit in kept], dtype=float)
            kept_scales = np.asarray([fit.scale for _, fit in kept], dtype=float)[:, None]
            predicted = _eval_rows(kernel, check_x, kept_params) * kept_scales
            for (index, _fit), row in zip(kept, predicted):
                if not np.all(np.isfinite(row)):
                    continue
                score = rmse(row, check_y)
                if np.isfinite(score):
                    scores[index] = score

    return [(index, scores[index]) for index in sorted(scores)]
