"""Checkpoint-based regression of stalled-cycle series (Section 3.1.2, Fig. 4).

Given measurements of one stall category at core counts ``1..m``, ESTIMA:

1. designates the ``c`` highest-core-count points as *checkpoints*;
2. for every kernel of Table 1 and every training prefix of length
   ``i = min_prefix..n`` (``n = m - c``), fits the kernel to the prefix;
3. discards fits that are "not realistic" (poles, NaN, explosion, negative
   stall counts);
4. scores each surviving fit by its RMSE at the checkpoints only;
5. keeps the fit with the lowest checkpoint RMSE and uses it to extrapolate
   the category to the target core count.

The prefix sweep is the paper's guard against over-fitting: a small deviation
at high measured counts sometimes steers the full-data fit the wrong way, and
a shorter prefix wins at the checkpoints instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.cache import EXTRAPOLATION_CACHE, extrapolation_key
from repro.engine.executor import fit_pool_for_config
from repro.engine.profiling import PROFILER

from . import fastfit
from .config import EstimaConfig
from .fitting import SCORE_TIE_REL, FittedFunction, _linear_design, fit_kernel
from .kernels import Kernel
from .metrics import rmse

__all__ = ["CandidateFit", "ExtrapolationResult", "extrapolate_series", "candidate_fits"]


@dataclass(frozen=True)
class CandidateFit:
    """One (kernel, training prefix) fit scored at the checkpoints."""

    fitted: FittedFunction
    prefix_length: int
    checkpoint_rmse: float

    @property
    def kernel_name(self) -> str:
        return self.fitted.name


@dataclass(frozen=True)
class ExtrapolationResult:
    """The chosen extrapolation of one stall category (or of any series).

    ``predict`` evaluates the winning function at arbitrary core counts;
    ``candidates`` records every scored alternative for diagnostics.
    """

    category: str
    cores: np.ndarray
    values: np.ndarray
    chosen: CandidateFit
    candidates: tuple[CandidateFit, ...]
    checkpoint_cores: tuple[int, ...]

    def predict(self, n: np.ndarray | Sequence[int] | int | float) -> np.ndarray:
        """Extrapolated values at core counts ``n`` (clamped to be non-negative)."""
        predicted = self.chosen.fitted(np.asarray(n, dtype=float))
        return np.maximum(predicted, 0.0)

    @property
    def kernel_name(self) -> str:
        return self.chosen.kernel_name


def _split_checkpoints(
    cores: np.ndarray, values: np.ndarray, checkpoints: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a series into (training, checkpoint) parts.

    When there are too few points to hold out the requested number of
    checkpoints while keeping at least two training points, the number of
    checkpoints shrinks accordingly (down to one).
    """
    m = cores.size
    c = min(checkpoints, max(1, m - 2))
    n = m - c
    return cores[:n], values[:n], cores[n:], values[n:]


@dataclass(frozen=True)
class _Sweep:
    """Precomputed inputs of one prefix sweep, shared by both strategies."""

    train_x: np.ndarray
    train_y: np.ndarray
    check_x: np.ndarray
    check_y: np.ndarray
    eval_range: np.ndarray
    scale_bound: float
    prefixes: list[int]
    grid: list[tuple[int, Kernel]]

    @property
    def checkpoint_cores(self) -> tuple[int, ...]:
        return tuple(int(c) for c in self.check_x)


def _prepare_sweep(
    x: np.ndarray, y: np.ndarray, config: EstimaConfig, target_cores: int
) -> _Sweep:
    """Validate a series and lay out the (prefix, kernel) grid to fit."""
    if x.size != y.size:
        raise ValueError("cores and values must have the same length")
    if x.size < 3:
        raise ValueError("need at least 3 measurements to extrapolate")

    train_x, train_y, check_x, check_y = _split_checkpoints(x, y, config.checkpoints)
    n = train_x.size
    eval_range = np.arange(1.0, float(max(target_cores, int(x.max()))) + 1.0)
    scale_bound = config.max_extrapolation_factor * max(float(np.max(np.abs(y))), 1e-30)

    min_prefix = max(config.min_prefix, 2)
    if n < min_prefix:
        # Very short series (e.g. three-point desktop measurements): no prefix
        # sweep is possible, train on everything that is not a checkpoint.
        prefixes = [n]
    else:
        prefixes = list(range(min_prefix, n + 1))
    grid = [(prefix, kernel) for prefix in prefixes for kernel in config.kernels]
    return _Sweep(
        train_x=train_x,
        train_y=train_y,
        check_x=check_x,
        check_y=check_y,
        eval_range=eval_range,
        scale_bound=scale_bound,
        prefixes=prefixes,
        grid=grid,
    )


def _grid_fits(sweep: _Sweep, config: EstimaConfig) -> list[FittedFunction | None]:
    """Fit the whole grid with the configured strategy, in grid order.

    The vectorized engine batches the sweep (:mod:`repro.core.fastfit`).
    When a ``threads`` fit pool is active it still fans out — one task per
    kernel column (each a batched all-prefix fit), recomposed into grid
    order — so fit-level parallelism composes with vectorization instead of
    being silently dropped.  The serial reference path fits cell by cell —
    the (prefix, kernel) grid is embarrassingly parallel and numpy/scipy-bound
    (the solvers release the GIL), so a threads backend fans it out over the
    fit pool; fits come back in grid order either way, so the surviving
    candidate list — and therefore the chosen fit — is identical everywhere.
    """
    train_x, train_y = sweep.train_x, sweep.train_y
    if fastfit.resolve_fit_strategy(config) == "vectorized":
        pool = fit_pool_for_config(config)
        kernels = list(config.kernels)
        if pool is None or len(kernels) <= 1:
            return fastfit.fit_grid(kernels, train_x, train_y, sweep.prefixes)
        columns = pool.map(
            lambda kernel: fastfit.fit_grid([kernel], train_x, train_y, sweep.prefixes),
            kernels,
        )
        return [
            columns[k][p]
            for p in range(len(sweep.prefixes))
            for k in range(len(kernels))
        ]

    # Satellite of the vectorized engine, applied to the reference path too:
    # the design matrix of prefix p is the first p rows of the full-series
    # matrix, so build it once per linear kernel and slice per prefix.
    designs = {kernel.name: _linear_design(kernel.name, train_x) for kernel in config.kernels}

    def fit_one(task: tuple[int, Kernel]) -> FittedFunction | None:
        prefix, kernel = task
        design = designs[kernel.name]
        return fit_kernel(
            kernel,
            train_x[:prefix],
            train_y[:prefix],
            design=None if design is None else design[:prefix],
        )

    pool = fit_pool_for_config(config)
    if pool is None:
        return [fit_one(task) for task in sweep.grid]
    return pool.map(fit_one, sweep.grid)


def _screen_fits(
    sweep: _Sweep,
    fitted_grid: list[FittedFunction | None],
    config: EstimaConfig,
    *,
    allow_negative: bool,
) -> list[CandidateFit]:
    """Realism-screen and checkpoint-score a fitted grid (Section 3.1.2)."""
    if fastfit.resolve_fit_strategy(config) == "vectorized":
        survivors = fastfit.screen_candidates(
            fitted_grid,
            sweep.eval_range,
            sweep.check_x,
            sweep.check_y,
            allow_negative=allow_negative,
            max_factor=sweep.scale_bound,
        )
        return [
            CandidateFit(
                fitted=fitted_grid[index],
                prefix_length=sweep.grid[index][0],
                checkpoint_rmse=score,
            )
            for index, score in survivors
        ]

    results: list[CandidateFit] = []
    for (prefix, _kernel), fitted in zip(sweep.grid, fitted_grid):
        if fitted is None:
            continue
        with PROFILER.stage("realism_screen"):
            realistic = fitted.is_realistic(
                sweep.eval_range, allow_negative=allow_negative, max_factor=sweep.scale_bound
            )
        if not realistic:
            continue
        with PROFILER.stage("checkpoint_score"):
            predicted = fitted(sweep.check_x)
            score = rmse(predicted, sweep.check_y) if np.all(np.isfinite(predicted)) else np.nan
        if not np.isfinite(score):
            continue
        results.append(
            CandidateFit(fitted=fitted, prefix_length=prefix, checkpoint_rmse=score)
        )
    return results


def candidate_fits(
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    allow_negative: bool = False,
) -> tuple[list[CandidateFit], tuple[int, ...]]:
    """Fit every (kernel, prefix) combination and score it at the checkpoints.

    Returns the surviving candidates (realistic, finite checkpoint RMSE) and
    the checkpoint core counts used for scoring.
    """
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    sweep = _prepare_sweep(x, y, config, target_cores)
    fitted_grid = _grid_fits(sweep, config)
    results = _screen_fits(sweep, fitted_grid, config, allow_negative=allow_negative)
    return results, sweep.checkpoint_cores


def extrapolate_series(
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    category: str = "",
    allow_negative: bool = False,
) -> ExtrapolationResult:
    """Run the full Section-3.1.2 procedure on one series.

    Raises ``RuntimeError`` when no kernel produces a realistic fit, which in
    practice only happens on degenerate inputs (constant zero series are
    handled by the caller).

    When the engine's extrapolation cache is enabled the chosen fit is
    memoized on the series content, ``target_cores`` and the config fields
    that influence it — every input the selection depends on, so a cached
    result is always bit-identical to a recomputed one.
    """
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    if not EXTRAPOLATION_CACHE.enabled:
        return _extrapolate_series_impl(
            x, y, config, target_cores=target_cores, category=category,
            allow_negative=allow_negative,
        )
    key = extrapolation_key(
        x, y, config, target_cores=target_cores, category=category,
        allow_negative=allow_negative,
    )
    return EXTRAPOLATION_CACHE.get_or_compute(
        key,
        lambda: _extrapolate_series_impl(
            x, y, config, target_cores=target_cores, category=category,
            allow_negative=allow_negative,
        ),
    )


def _extrapolate_series_impl(
    x: np.ndarray,
    y: np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    category: str,
    allow_negative: bool,
) -> ExtrapolationResult:
    if fastfit.resolve_fit_strategy(config) == "vectorized":
        # The vectorized engine fits the grid once and screens it twice when
        # the allow_negative fallback triggers: fits are deterministic, so
        # re-screening the same grid yields exactly what refitting would.
        sweep = _prepare_sweep(x, y, config, target_cores)
        fitted_grid = _grid_fits(sweep, config)
        checkpoint_cores = sweep.checkpoint_cores
        candidates = _screen_fits(sweep, fitted_grid, config, allow_negative=allow_negative)
        if not candidates and not allow_negative:
            candidates = _screen_fits(sweep, fitted_grid, config, allow_negative=True)
    else:
        candidates, checkpoint_cores = candidate_fits(
            x, y, config, target_cores=target_cores, allow_negative=allow_negative
        )
        if not candidates and not allow_negative:
            # Steeply decreasing series can drive every kernel negative
            # somewhere on the extrapolation range.  Rather than fail the
            # whole prediction, fall back to the unconstrained fits —
            # ``predict`` clamps the final values at zero anyway.
            candidates, checkpoint_cores = candidate_fits(
                x, y, config, target_cores=target_cores, allow_negative=True
            )
    if not candidates:
        raise RuntimeError(
            f"no realistic kernel fit found for category {category!r} "
            f"({x.size} measurements, kernels={config.kernel_names})"
        )
    # Epsilon-min over checkpoint RMSE: near-ties (within SCORE_TIE_REL)
    # resolve to the earlier candidate of the deterministic (prefix, kernel)
    # grid order, so last-ULP score noise cannot flip the selection.
    chosen = candidates[0]
    for candidate in candidates[1:]:
        if candidate.checkpoint_rmse < chosen.checkpoint_rmse * (1.0 - SCORE_TIE_REL):
            chosen = candidate
    return ExtrapolationResult(
        category=category,
        cores=np.asarray(x, dtype=int),
        values=y.copy(),
        chosen=chosen,
        candidates=tuple(sorted(candidates, key=lambda c: c.checkpoint_rmse)),
        checkpoint_cores=checkpoint_cores,
    )
