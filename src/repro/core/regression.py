"""Checkpoint-based regression of stalled-cycle series (Section 3.1.2, Fig. 4).

Given measurements of one stall category at core counts ``1..m``, ESTIMA:

1. designates the ``c`` highest-core-count points as *checkpoints*;
2. for every kernel of Table 1 and every training prefix of length
   ``i = min_prefix..n`` (``n = m - c``), fits the kernel to the prefix;
3. discards fits that are "not realistic" (poles, NaN, explosion, negative
   stall counts);
4. scores each surviving fit by its RMSE at the checkpoints only;
5. keeps the fit with the lowest checkpoint RMSE and uses it to extrapolate
   the category to the target core count.

The prefix sweep is the paper's guard against over-fitting: a small deviation
at high measured counts sometimes steers the full-data fit the wrong way, and
a shorter prefix wins at the checkpoints instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.cache import EXTRAPOLATION_CACHE, extrapolation_key
from repro.engine.executor import fit_pool_for_config

from .config import EstimaConfig
from .fitting import SCORE_TIE_REL, FittedFunction, fit_kernel
from .metrics import rmse

__all__ = ["CandidateFit", "ExtrapolationResult", "extrapolate_series", "candidate_fits"]


@dataclass(frozen=True)
class CandidateFit:
    """One (kernel, training prefix) fit scored at the checkpoints."""

    fitted: FittedFunction
    prefix_length: int
    checkpoint_rmse: float

    @property
    def kernel_name(self) -> str:
        return self.fitted.name


@dataclass(frozen=True)
class ExtrapolationResult:
    """The chosen extrapolation of one stall category (or of any series).

    ``predict`` evaluates the winning function at arbitrary core counts;
    ``candidates`` records every scored alternative for diagnostics.
    """

    category: str
    cores: np.ndarray
    values: np.ndarray
    chosen: CandidateFit
    candidates: tuple[CandidateFit, ...]
    checkpoint_cores: tuple[int, ...]

    def predict(self, n: np.ndarray | Sequence[int] | int | float) -> np.ndarray:
        """Extrapolated values at core counts ``n`` (clamped to be non-negative)."""
        predicted = self.chosen.fitted(np.asarray(n, dtype=float))
        return np.maximum(predicted, 0.0)

    @property
    def kernel_name(self) -> str:
        return self.chosen.kernel_name


def _split_checkpoints(
    cores: np.ndarray, values: np.ndarray, checkpoints: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a series into (training, checkpoint) parts.

    When there are too few points to hold out the requested number of
    checkpoints while keeping at least two training points, the number of
    checkpoints shrinks accordingly (down to one).
    """
    m = cores.size
    c = min(checkpoints, max(1, m - 2))
    n = m - c
    return cores[:n], values[:n], cores[n:], values[n:]


def candidate_fits(
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    allow_negative: bool = False,
) -> tuple[list[CandidateFit], tuple[int, ...]]:
    """Fit every (kernel, prefix) combination and score it at the checkpoints.

    Returns the surviving candidates (realistic, finite checkpoint RMSE) and
    the checkpoint core counts used for scoring.
    """
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    if x.size != y.size:
        raise ValueError("cores and values must have the same length")
    if x.size < 3:
        raise ValueError("need at least 3 measurements to extrapolate")

    train_x, train_y, check_x, check_y = _split_checkpoints(x, y, config.checkpoints)
    n = train_x.size
    eval_range = np.arange(1.0, float(max(target_cores, int(x.max()))) + 1.0)
    scale_bound = config.max_extrapolation_factor * max(float(np.max(np.abs(y))), 1e-30)

    results: list[CandidateFit] = []
    min_prefix = max(config.min_prefix, 2)
    if n < min_prefix:
        # Very short series (e.g. three-point desktop measurements): no prefix
        # sweep is possible, train on everything that is not a checkpoint.
        prefixes: range | list[int] = [n]
    else:
        prefixes = range(min_prefix, n + 1)

    # The (prefix, kernel) fit grid is embarrassingly parallel and numpy/
    # scipy-bound (the solvers release the GIL), so a threads backend fans it
    # out over the engine's fit pool.  Fits come back in grid order and the
    # realism/RMSE screening below stays serial, so the surviving candidate
    # list — and therefore the chosen fit — is identical to the serial loop's.
    grid = [(prefix, kernel) for prefix in prefixes for kernel in config.kernels]
    pool = fit_pool_for_config(config)
    if pool is None:
        fitted_grid = [fit_kernel(k, train_x[:p], train_y[:p]) for p, k in grid]
    else:
        fitted_grid = pool.map(
            lambda task: fit_kernel(task[1], train_x[: task[0]], train_y[: task[0]]), grid
        )

    for (prefix, _kernel), fitted in zip(grid, fitted_grid):
        if fitted is None:
            continue
        if not fitted.is_realistic(
            eval_range, allow_negative=allow_negative, max_factor=scale_bound
        ):
            continue
        predicted = fitted(check_x)
        if not np.all(np.isfinite(predicted)):
            continue
        score = rmse(predicted, check_y)
        if not np.isfinite(score):
            continue
        results.append(
            CandidateFit(fitted=fitted, prefix_length=prefix, checkpoint_rmse=score)
        )
    return results, tuple(int(c) for c in check_x)


def extrapolate_series(
    cores: Sequence[int] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    category: str = "",
    allow_negative: bool = False,
) -> ExtrapolationResult:
    """Run the full Section-3.1.2 procedure on one series.

    Raises ``RuntimeError`` when no kernel produces a realistic fit, which in
    practice only happens on degenerate inputs (constant zero series are
    handled by the caller).

    When the engine's extrapolation cache is enabled the chosen fit is
    memoized on the series content, ``target_cores`` and the config fields
    that influence it — every input the selection depends on, so a cached
    result is always bit-identical to a recomputed one.
    """
    x = np.asarray(cores, dtype=float)
    y = np.asarray(values, dtype=float)
    if not EXTRAPOLATION_CACHE.enabled:
        return _extrapolate_series_impl(
            x, y, config, target_cores=target_cores, category=category,
            allow_negative=allow_negative,
        )
    key = extrapolation_key(
        x, y, config, target_cores=target_cores, category=category,
        allow_negative=allow_negative,
    )
    return EXTRAPOLATION_CACHE.get_or_compute(
        key,
        lambda: _extrapolate_series_impl(
            x, y, config, target_cores=target_cores, category=category,
            allow_negative=allow_negative,
        ),
    )


def _extrapolate_series_impl(
    x: np.ndarray,
    y: np.ndarray,
    config: EstimaConfig,
    *,
    target_cores: int,
    category: str,
    allow_negative: bool,
) -> ExtrapolationResult:
    candidates, checkpoint_cores = candidate_fits(
        x, y, config, target_cores=target_cores, allow_negative=allow_negative
    )
    if not candidates and not allow_negative:
        # Steeply decreasing series can drive every kernel negative somewhere
        # on the extrapolation range.  Rather than fail the whole prediction,
        # fall back to the unconstrained fits — ``predict`` clamps the final
        # values at zero anyway.
        candidates, checkpoint_cores = candidate_fits(
            x, y, config, target_cores=target_cores, allow_negative=True
        )
    if not candidates:
        raise RuntimeError(
            f"no realistic kernel fit found for category {category!r} "
            f"({x.size} measurements, kernels={config.kernel_names})"
        )
    # Epsilon-min over checkpoint RMSE: near-ties (within SCORE_TIE_REL)
    # resolve to the earlier candidate of the deterministic (prefix, kernel)
    # grid order, so last-ULP score noise cannot flip the selection.
    chosen = candidates[0]
    for candidate in candidates[1:]:
        if candidate.checkpoint_rmse < chosen.checkpoint_rmse * (1.0 - SCORE_TIE_REL):
            chosen = candidate
    return ExtrapolationResult(
        category=category,
        cores=np.asarray(x, dtype=int),
        values=y.copy(),
        chosen=chosen,
        candidates=tuple(sorted(candidates, key=lambda c: c.checkpoint_rmse)),
        checkpoint_cores=checkpoint_cores,
    )
