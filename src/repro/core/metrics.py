"""Error and correlation metrics used throughout ESTIMA.

The paper reports three kinds of numbers that these helpers compute:

* prediction error (absolute relative error, in percent) — Tables 4 and 7,
* Pearson correlation between stalled cycles per core and execution time —
  Tables 5 and 6, Figure 2,
* RMSE at the checkpoints — the model-selection criterion of Section 3.1.2.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "rmse",
    "relative_errors",
    "max_relative_error",
    "mean_relative_error",
    "pearson_correlation",
    "error_table_row",
]


def rmse(predicted: Sequence[float] | np.ndarray, actual: Sequence[float] | np.ndarray) -> float:
    """Root mean square error between two equally long series."""
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    if p.shape != a.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {a.shape}")
    if p.size == 0:
        raise ValueError("cannot compute RMSE of empty series")
    return float(np.sqrt(np.mean((p - a) ** 2)))


def relative_errors(
    predicted: Sequence[float] | np.ndarray, actual: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Per-point absolute relative error ``|pred - actual| / actual`` (fraction)."""
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    if p.shape != a.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {a.shape}")
    if np.any(a == 0.0):
        raise ValueError("actual values must be non-zero for relative error")
    return np.abs(p - a) / np.abs(a)


def max_relative_error(
    predicted: Sequence[float] | np.ndarray, actual: Sequence[float] | np.ndarray
) -> float:
    """Maximum absolute relative error in percent (the paper's headline metric)."""
    return float(np.max(relative_errors(predicted, actual)) * 100.0)


def mean_relative_error(
    predicted: Sequence[float] | np.ndarray, actual: Sequence[float] | np.ndarray
) -> float:
    """Mean absolute relative error in percent."""
    return float(np.mean(relative_errors(predicted, actual)) * 100.0)


def pearson_correlation(
    x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray
) -> float:
    """Pearson correlation coefficient, with degenerate series handled.

    Constant series have zero variance; the paper's correlation tables never
    hit this case but the simulator can produce it for trivially small runs,
    so it is defined as 0.0 rather than raising.
    """
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("correlation requires at least two points")
    sa = np.std(a)
    sb = np.std(b)
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def error_table_row(
    name: str, errors_by_target: Mapping[str, float], *, decimals: int = 1
) -> str:
    """Format one row of a Table-4 style error summary."""
    cells = "  ".join(f"{errors_by_target[key]:.{decimals}f}" for key in errors_by_target)
    return f"{name:<18s} {cells}"
