"""Configuration of an ESTIMA prediction run.

The paper exposes a handful of knobs; all of them live here:

* which kernels to fit (Table 1; all six by default),
* how many of the highest-core-count measurements become *checkpoints*
  (``c`` in Section 3.1.2; the paper uses 2 and 4),
* the smallest measurement prefix considered during the over-fitting sweep
  (``i`` runs from 3 to ``n`` in the paper),
* whether software-stall categories are included,
* cross-machine corrections: frequency ratio (Section 4.3) and dataset-size
  ratio for weak scaling (Section 4.5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

from .kernels import DEFAULT_KERNEL_NAMES, get_kernel

__all__ = ["EstimaConfig"]


def _default_cache_dir() -> str | None:
    """Disk-tier directory default: ``ESTIMA_CACHE_DIR`` or disabled."""
    env = os.environ.get("ESTIMA_CACHE_DIR", "").strip()
    return env or None


@dataclass(frozen=True)
class EstimaConfig:
    """Knobs controlling the ESTIMA pipeline.

    Attributes
    ----------
    kernel_names:
        Table-1 kernels tried for every approximation.
    checkpoints:
        Number ``c`` of highest-core-count measurements held out and used to
        score candidate fits (RMSE at checkpoints).
    min_prefix:
        Shortest measurement prefix used in the over-fitting sweep
        (the paper iterates ``i`` in ``3..n``).
    use_software_stalls:
        Include software-reported stall categories when present in the
        measurements (STM aborted-transaction cycles, lock spin cycles, ...).
    use_frontend_stalls:
        Include frontend stall categories.  Off by default — the paper shows
        they add no information (Section 5.2 / Table 6); the switch exists to
        reproduce exactly that experiment.
    frequency_ratio:
        ``f_measurement / f_target``; measured execution times are multiplied
        by this before the scaling factor is computed, so predictions land in
        target-machine time units (used for the desktop-to-server memcached
        and SQLite experiments).
    dataset_ratio:
        Target dataset size divided by measurement dataset size; extrapolated
        stall values are scaled by it (weak scaling, Section 4.5).
    max_extrapolation_factor:
        Realism bound: a fit whose extrapolated values exceed this multiple of
        the largest training value is discarded as "not realistic".
    executor:
        Execution backend for campaign/experiment fan-out: ``"serial"`` (the
        default, bit-identical reference path), ``"threads[:N]"`` (a thread
        pool parallelising at the fit/kernel level) or ``"parallel[:N]"`` (a
        process pool at the workload level; see
        :mod:`repro.engine.executor`).  ``ESTIMA_EXECUTOR`` in the
        environment overrides the ``"serial"`` default.
    max_workers:
        Worker count for the pool backends; ``0`` sizes the pool to the
        machine's CPU count.
    use_fit_cache:
        Enable the engine's content-addressed memoization of ``fit_kernel``
        and ``extrapolate_series`` results (see :mod:`repro.engine.cache`).
        Off by default; the cached path is verified to produce identical
        numbers but keeps state across runs.
    cache_dir:
        Directory of the persistent disk cache tier
        (:mod:`repro.engine.store`): fits, extrapolations and service
        predictions computed by one process warm-start every later one.
        ``None`` (the default, unless ``ESTIMA_CACHE_DIR`` is set) leaves
        the disk tier off.  Only consulted when ``use_fit_cache`` is on.
    cache_max_bytes:
        Size bound of the disk tier; least-recently-used entries are evicted
        beyond it.  Defaults to ``ESTIMA_CACHE_MAX_BYTES`` or 256 MiB.
    serve_max_batch:
        ``estima serve`` micro-batching: most requests coalesced into one
        :meth:`~repro.engine.service.PredictionService.predict_batch` call.
    serve_batch_window_ms:
        How long the server waits for more requests after the first of a
        batch arrives (the latency it will pay to improve coalescing).
    serve_queue_limit:
        Bound of the server's request queue; submissions beyond it block
        (backpressure) until the batcher drains.
    serve_workers:
        ``estima serve`` worker-pool size: ``0`` (the default) serves
        in-process; ``N >= 1`` forks N worker processes behind one listening
        socket (see :mod:`repro.engine.pool`).  ``ESTIMA_SERVE_WORKERS``
        provides the CLI default; like ``ESTIMA_EXECUTOR``, a malformed
        value is rejected here at construction.
    serve_tcp:
        ``HOST:PORT`` TCP listening address for ``estima serve --tcp``
        (``None`` keeps stdio/unix-socket serving).  Validated strictly at
        construction; port 0 asks the listener for a free port.
    serve_http:
        ``HOST:PORT`` listening address for the HTTP/JSON gateway
        (``estima serve --http``, :mod:`repro.engine.gateway`); ``None``
        (the default) keeps HTTP off.  ``ESTIMA_SERVE_HTTP`` provides the
        CLI default; both the field and the environment variable are
        validated strictly here at construction, like ``serve_tcp``.
    serve_idle_timeout:
        Idle/read timeout in seconds for served connections (the NDJSON
        server and the HTTP gateway): a peer that sends nothing for this
        long — with no requests of its own in flight — is disconnected, so
        a hung client cannot pin a connection slot.  ``None`` (the default)
        defers to ``ESTIMA_SERVE_IDLE_TIMEOUT``; 0 disables the timeout.
    route_backends:
        Comma-separated ``host:port`` list of downstream ``estima serve``
        hosts for the cluster router (``estima route``) and the ``remote``
        executor.  ``None`` (the default) defers to
        ``ESTIMA_ROUTE_BACKENDS``.  Validated strictly at construction
        (well-formed addresses, no duplicates, no port 0).
    remote_timeout:
        Per-request socket timeout in seconds for remote backend calls
        (router and ``remote`` executor).  ``ESTIMA_REMOTE_TIMEOUT``
        overrides the CLI default.
    remote_retries:
        Retries per backend host (beyond the first attempt, exponential
        backoff) before failing over to the next ring node.
        ``ESTIMA_REMOTE_RETRIES`` overrides the CLI default.
    fit_strategy:
        How the Section-3.1.2 (prefix, kernel) fit grid is computed:
        ``"vectorized"`` (the batched engine of :mod:`repro.core.fastfit` —
        prefix-shared linear solves, a lean reference-equal LM/TRF driver
        with batched Jacobians, batched candidate screening) or
        ``"serial"`` (the scalar reference loop).  ``None`` (the default)
        defers to ``ESTIMA_FIT_STRATEGY``, falling back to ``"vectorized"``.
        Both strategies produce bit-identical chosen fits and predicted
        rows; the strategy therefore never takes part in cache keys.
        (``ESTIMA_FIT_SCREEN=prune`` opts into multi-start pruning, the one
        mode that may differ within multi-start selection noise.)

    None of the engine knobs (``executor``, ``max_workers``,
    ``use_fit_cache``, ``cache_*``, ``serve_*``, ``route_backends``,
    ``remote_*``, ``fit_strategy``) affect predicted numbers — only how
    fast (and where) they are produced.
    """

    kernel_names: tuple[str, ...] = DEFAULT_KERNEL_NAMES
    checkpoints: int = 2
    min_prefix: int = 3
    use_software_stalls: bool = True
    use_frontend_stalls: bool = False
    frequency_ratio: float = 1.0
    dataset_ratio: float = 1.0
    max_extrapolation_factor: float = 1e4
    random_seed: int = 0
    executor: str = "serial"
    max_workers: int = 0
    use_fit_cache: bool = False
    cache_dir: str | None = field(default_factory=_default_cache_dir)
    cache_max_bytes: int | None = None
    serve_max_batch: int = 32
    serve_batch_window_ms: float = 2.0
    serve_queue_limit: int = 256
    serve_workers: int = 0
    serve_tcp: str | None = None
    serve_http: str | None = None
    serve_idle_timeout: float | None = None
    route_backends: str | None = None
    remote_timeout: float = 30.0
    remote_retries: int = 2
    fit_strategy: str | None = None

    def __post_init__(self) -> None:
        # Engine imports are deferred to the call: repro.engine.cache is a
        # leaf module, but keeping config importable without it at module
        # scope preserves the core -> engine one-way dependency direction.
        from repro.engine.cache import ENV_FIT_CACHE, parse_bool_env
        from repro.engine.executor import ENV_EXECUTOR, parse_executor_spec
        from repro.engine.cluster.remote import (
            parse_backends,
            parse_remote_retries,
            parse_remote_timeout,
            remote_retries_from_env,
            remote_timeout_from_env,
            route_backends_from_env,
        )
        from repro.engine.pool import (
            ENV_SERVE_WORKERS,
            parse_idle_timeout,
            parse_serve_workers,
            parse_tcp_address,
            serve_http_from_env,
            serve_idle_timeout_from_env,
        )
        from repro.engine.store import max_bytes_from_env

        if self.checkpoints < 1:
            raise ValueError("checkpoints must be >= 1")
        if self.min_prefix < 2:
            raise ValueError("min_prefix must be >= 2")
        try:
            parse_executor_spec(self.executor)
        except ValueError as exc:
            raise ValueError(f"invalid executor: {exc}") from None
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        # Environment knobs the engine reads lazily are validated here, at
        # config construction, so a malformed value (ESTIMA_EXECUTOR=
        # parallel:abc, ESTIMA_FIT_CACHE=maybe, ...) raises a clear error up
        # front instead of failing deep inside the engine mid-run.
        env_executor = os.environ.get(ENV_EXECUTOR)
        if env_executor is not None and env_executor.strip():
            try:
                parse_executor_spec(env_executor)
            except ValueError as exc:
                raise ValueError(f"invalid {ENV_EXECUTOR} environment variable: {exc}") from None
        env_fit_cache = os.environ.get(ENV_FIT_CACHE)
        if env_fit_cache is not None:
            parse_bool_env(ENV_FIT_CACHE, env_fit_cache)  # raises ValueError when malformed
        max_bytes_from_env()  # raises ValueError when ESTIMA_CACHE_MAX_BYTES is malformed
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be >= 1")
        if self.serve_max_batch < 1:
            raise ValueError("serve_max_batch must be >= 1")
        if self.serve_batch_window_ms < 0.0:
            raise ValueError("serve_batch_window_ms must be >= 0")
        if self.serve_queue_limit < 1:
            raise ValueError("serve_queue_limit must be >= 1")
        parse_serve_workers(self.serve_workers)  # raises ValueError when malformed
        env_serve_workers = os.environ.get(ENV_SERVE_WORKERS)
        if env_serve_workers is not None and env_serve_workers.strip():
            parse_serve_workers(env_serve_workers, source=ENV_SERVE_WORKERS)
        if self.serve_tcp is not None:
            parse_tcp_address(self.serve_tcp)  # raises ValueError when malformed
        if self.serve_http is not None:
            try:
                parse_tcp_address(self.serve_http)
            except ValueError as exc:
                raise ValueError(f"invalid serve_http: {exc}") from None
        serve_http_from_env()  # raises ValueError when ESTIMA_SERVE_HTTP is malformed
        if self.serve_idle_timeout is not None:
            parse_idle_timeout(self.serve_idle_timeout)  # raises when malformed
        serve_idle_timeout_from_env()  # validates ESTIMA_SERVE_IDLE_TIMEOUT
        if self.route_backends is not None:
            try:
                parse_backends(self.route_backends)
            except ValueError as exc:
                raise ValueError(f"invalid route_backends: {exc}") from None
        route_backends_from_env()  # validates ESTIMA_ROUTE_BACKENDS
        parse_remote_timeout(self.remote_timeout)  # raises when malformed
        parse_remote_retries(self.remote_retries)  # raises when malformed
        remote_timeout_from_env()  # validates ESTIMA_REMOTE_TIMEOUT
        remote_retries_from_env()  # validates ESTIMA_REMOTE_RETRIES
        # Core sibling import, also deferred: fastfit pulls in scipy via
        # repro.core.fitting, which config must not require at module scope.
        from repro.core.fastfit import fit_strategy_from_env, parse_fit_strategy

        if self.fit_strategy is not None:
            parse_fit_strategy(self.fit_strategy)
        fit_strategy_from_env()  # validates ESTIMA_FIT_STRATEGY
        if self.frequency_ratio <= 0.0:
            raise ValueError("frequency_ratio must be positive")
        if self.dataset_ratio <= 0.0:
            raise ValueError("dataset_ratio must be positive")
        if not self.kernel_names:
            raise ValueError("at least one kernel is required")
        for name in self.kernel_names:
            get_kernel(name)  # raises KeyError for unknown kernels

    @property
    def kernels(self):
        """The resolved :class:`~repro.core.kernels.Kernel` objects."""
        return tuple(get_kernel(name) for name in self.kernel_names)

    def with_(self, **changes) -> "EstimaConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def for_cross_machine(
        cls,
        measurement_frequency_ghz: float,
        target_frequency_ghz: float,
        **kwargs,
    ) -> "EstimaConfig":
        """Config for desktop-to-server prediction with frequency scaling."""
        if measurement_frequency_ghz <= 0 or target_frequency_ghz <= 0:
            raise ValueError("frequencies must be positive")
        ratio = measurement_frequency_ghz / target_frequency_ghz
        return cls(frequency_ratio=ratio, **kwargs)

    @classmethod
    def for_weak_scaling(cls, dataset_ratio: float, **kwargs) -> "EstimaConfig":
        """Config for weak-scaling predictions (bigger target dataset)."""
        return cls(dataset_ratio=dataset_ratio, **kwargs)
