"""Configuration of an ESTIMA prediction run.

The paper exposes a handful of knobs; all of them live here:

* which kernels to fit (Table 1; all six by default),
* how many of the highest-core-count measurements become *checkpoints*
  (``c`` in Section 3.1.2; the paper uses 2 and 4),
* the smallest measurement prefix considered during the over-fitting sweep
  (``i`` runs from 3 to ``n`` in the paper),
* whether software-stall categories are included,
* cross-machine corrections: frequency ratio (Section 4.3) and dataset-size
  ratio for weak scaling (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .kernels import DEFAULT_KERNEL_NAMES, get_kernel

__all__ = ["EstimaConfig"]


@dataclass(frozen=True)
class EstimaConfig:
    """Knobs controlling the ESTIMA pipeline.

    Attributes
    ----------
    kernel_names:
        Table-1 kernels tried for every approximation.
    checkpoints:
        Number ``c`` of highest-core-count measurements held out and used to
        score candidate fits (RMSE at checkpoints).
    min_prefix:
        Shortest measurement prefix used in the over-fitting sweep
        (the paper iterates ``i`` in ``3..n``).
    use_software_stalls:
        Include software-reported stall categories when present in the
        measurements (STM aborted-transaction cycles, lock spin cycles, ...).
    use_frontend_stalls:
        Include frontend stall categories.  Off by default — the paper shows
        they add no information (Section 5.2 / Table 6); the switch exists to
        reproduce exactly that experiment.
    frequency_ratio:
        ``f_measurement / f_target``; measured execution times are multiplied
        by this before the scaling factor is computed, so predictions land in
        target-machine time units (used for the desktop-to-server memcached
        and SQLite experiments).
    dataset_ratio:
        Target dataset size divided by measurement dataset size; extrapolated
        stall values are scaled by it (weak scaling, Section 4.5).
    max_extrapolation_factor:
        Realism bound: a fit whose extrapolated values exceed this multiple of
        the largest training value is discarded as "not realistic".
    executor:
        Execution backend for campaign/experiment fan-out: ``"serial"`` (the
        default, bit-identical reference path) or ``"parallel"`` (a process
        pool; see :mod:`repro.engine.executor`).  ``ESTIMA_EXECUTOR`` in the
        environment overrides the ``"serial"`` default.
    max_workers:
        Worker-process count for the parallel backend; ``0`` sizes the pool
        to the machine's CPU count.
    use_fit_cache:
        Enable the engine's content-addressed memoization of ``fit_kernel``
        and ``extrapolate_series`` results (see :mod:`repro.engine.cache`).
        Off by default; the cached path is verified to produce identical
        numbers but keeps state across runs.

    None of the engine knobs (``executor``, ``max_workers``,
    ``use_fit_cache``) affect predicted numbers — only how fast they are
    produced.
    """

    kernel_names: tuple[str, ...] = DEFAULT_KERNEL_NAMES
    checkpoints: int = 2
    min_prefix: int = 3
    use_software_stalls: bool = True
    use_frontend_stalls: bool = False
    frequency_ratio: float = 1.0
    dataset_ratio: float = 1.0
    max_extrapolation_factor: float = 1e4
    random_seed: int = 0
    executor: str = "serial"
    max_workers: int = 0
    use_fit_cache: bool = False

    def __post_init__(self) -> None:
        if self.checkpoints < 1:
            raise ValueError("checkpoints must be >= 1")
        if self.min_prefix < 2:
            raise ValueError("min_prefix must be >= 2")
        base_executor = self.executor.partition(":")[0]
        if base_executor not in ("serial", "parallel"):
            raise ValueError(
                f"executor must be 'serial', 'parallel' or 'parallel:<n>', got {self.executor!r}"
            )
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        if self.frequency_ratio <= 0.0:
            raise ValueError("frequency_ratio must be positive")
        if self.dataset_ratio <= 0.0:
            raise ValueError("dataset_ratio must be positive")
        if not self.kernel_names:
            raise ValueError("at least one kernel is required")
        for name in self.kernel_names:
            get_kernel(name)  # raises KeyError for unknown kernels

    @property
    def kernels(self):
        """The resolved :class:`~repro.core.kernels.Kernel` objects."""
        return tuple(get_kernel(name) for name in self.kernel_names)

    def with_(self, **changes) -> "EstimaConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def for_cross_machine(
        cls,
        measurement_frequency_ghz: float,
        target_frequency_ghz: float,
        **kwargs,
    ) -> "EstimaConfig":
        """Config for desktop-to-server prediction with frequency scaling."""
        if measurement_frequency_ghz <= 0 or target_frequency_ghz <= 0:
            raise ValueError("frequencies must be positive")
        ratio = measurement_frequency_ghz / target_frequency_ghz
        return cls(frequency_ratio=ratio, **kwargs)

    @classmethod
    def for_weak_scaling(cls, dataset_ratio: float, **kwargs) -> "EstimaConfig":
        """Config for weak-scaling predictions (bigger target dataset)."""
        return cls(dataset_ratio=dataset_ratio, **kwargs)
