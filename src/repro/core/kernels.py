"""Extrapolation function kernels (paper Table 1).

ESTIMA approximates every stalled-cycle category, the time-extrapolation
baseline and the stalls-to-time scaling factor with a small, fixed set of
analytic function families ("kernels").  The original implementation used the
``pythonequation`` / zunzun.com fitting library; here each kernel is expressed
as a plain numpy-vectorised callable plus the metadata the regression layer
needs (parameter count, initial guesses, and a realism predicate used to
discard degenerate fits, as described in Section 3.1.2 of the paper).

The six families of Table 1:

========  =====================================================
Name      Function
========  =====================================================
Rat22     (a0 + a1 n + a2 n^2) / (1 + b1 n + b2 n^2)
Rat23     (a0 + a1 n + a2 n^2) / (1 + b1 n + b2 n^2 + b3 n^3)
Rat33     (a0 + a1 n + a2 n^2 + a3 n^3) / (1 + b1 n + b2 n^2 + b3 n^3)
CubicLn   a + b ln(n) + c ln(n)^2 + d ln(n)^3
ExpRat    exp((a + b n) / (c + d n))
Poly25    a + b n + c n^2 + d n^2.5
========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Kernel",
    "KERNELS",
    "DEFAULT_KERNEL_NAMES",
    "get_kernel",
    "kernel_names",
]

# Guard for rational kernels: denominators closer to zero than this are treated
# as poles and the fit is rejected by the realism check.
_DENOM_EPS = 1e-9

# Values larger than this (relative to the data scale handled in regression)
# are considered numerically exploded.
_HUGE = 1e30


def _rat22(n: np.ndarray, a0: float, a1: float, a2: float, b1: float, b2: float) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    num = a0 + a1 * n + a2 * n**2
    den = 1.0 + b1 * n + b2 * n**2
    return num / den


def _rat23(
    n: np.ndarray, a0: float, a1: float, a2: float, b1: float, b2: float, b3: float
) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    num = a0 + a1 * n + a2 * n**2
    den = 1.0 + b1 * n + b2 * n**2 + b3 * n**3
    return num / den


def _rat33(
    n: np.ndarray,
    a0: float,
    a1: float,
    a2: float,
    a3: float,
    b1: float,
    b2: float,
    b3: float,
) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    num = a0 + a1 * n + a2 * n**2 + a3 * n**3
    den = 1.0 + b1 * n + b2 * n**2 + b3 * n**3
    return num / den


def _cubic_ln(n: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    ln = np.log(np.maximum(n, _DENOM_EPS))
    return a + b * ln + c * ln**2 + d * ln**3


def _exp_rat(n: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    den = c + d * n
    # Clip the exponent to keep overflow warnings out of the optimizer; the
    # realism predicate rejects exploded fits afterwards.
    expo = np.clip((a + b * n) / np.where(np.abs(den) < _DENOM_EPS, _DENOM_EPS, den), -60.0, 60.0)
    return np.exp(expo)


def _poly25(n: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    n = np.asarray(n, dtype=float)
    return a + b * n + c * n**2 + d * n**2.5


def _rational_denominator(kernel_name: str, params: Sequence[float], n: np.ndarray) -> np.ndarray:
    """Return the denominator values for rational kernels (used for pole checks)."""
    n = np.asarray(n, dtype=float)
    p = list(params)
    if kernel_name == "Rat22":
        return 1.0 + p[3] * n + p[4] * n**2
    if kernel_name == "Rat23":
        return 1.0 + p[3] * n + p[4] * n**2 + p[5] * n**3
    if kernel_name == "Rat33":
        return 1.0 + p[4] * n + p[5] * n**2 + p[6] * n**3
    if kernel_name == "ExpRat":
        return p[2] + p[3] * n
    raise ValueError(f"{kernel_name} is not a rational kernel")


@dataclass(frozen=True)
class Kernel:
    """One extrapolation function family from Table 1.

    Attributes
    ----------
    name:
        Short identifier used in configuration and reports (e.g. ``"Rat22"``).
    func:
        Vectorised callable ``func(n, *params) -> values``.
    n_params:
        Number of free parameters.
    initial_guesses:
        A list of starting points for the non-linear least-squares solver.
        Several are tried; the best converged fit wins.
    rational:
        Whether the kernel has a data-dependent denominator (pole hazard).
    """

    name: str
    func: Callable[..., np.ndarray]
    n_params: int
    initial_guesses: tuple[tuple[float, ...], ...]
    rational: bool = False
    description: str = ""

    def __call__(self, n: np.ndarray | float, params: Sequence[float]) -> np.ndarray:
        """Evaluate the kernel at core counts ``n`` with fitted ``params``."""
        return self.func(np.asarray(n, dtype=float), *params)

    def has_pole(self, params: Sequence[float], n: np.ndarray) -> bool:
        """True if a rational kernel's denominator vanishes anywhere on ``n``.

        A sign change or a near-zero denominator inside the evaluation range
        means the fitted function has a pole there, which can never be a
        realistic stalled-cycle curve.
        """
        if not self.rational:
            return False
        den = _rational_denominator(self.name, params, np.asarray(n, dtype=float))
        if np.any(np.abs(den) < _DENOM_EPS):
            return True
        return bool(np.any(den[:-1] * den[1:] < 0.0))

    def is_realistic(
        self,
        params: Sequence[float],
        n_eval: np.ndarray,
        *,
        allow_negative: bool = False,
        max_magnitude: float = _HUGE,
    ) -> bool:
        """Realism predicate from Section 3.1.2.

        A fit is kept only if, over the whole evaluation range (measured cores
        through the extrapolation target), it is finite, has no pole, does not
        explode, and — for stalled-cycle series — stays non-negative.
        """
        n_eval = np.asarray(n_eval, dtype=float)
        if self.has_pole(params, n_eval):
            return False
        values = self(n_eval, params)
        if not np.all(np.isfinite(values)):
            return False
        if np.any(np.abs(values) > max_magnitude):
            return False
        if not allow_negative and np.any(values < 0.0):
            return False
        return True


def _guesses(n_params: int) -> tuple[tuple[float, ...], ...]:
    """Generic multi-start guesses for an ``n_params``-parameter kernel."""
    base = [
        tuple(0.1 for _ in range(n_params)),
        tuple(1.0 for _ in range(n_params)),
        tuple((-1.0) ** i for i in range(n_params)),
        tuple(0.01 * (i + 1) for i in range(n_params)),
    ]
    return tuple(base)


KERNELS: dict[str, Kernel] = {
    "Rat22": Kernel(
        name="Rat22",
        func=_rat22,
        n_params=5,
        initial_guesses=_guesses(5),
        rational=True,
        description="(a0 + a1 n + a2 n^2) / (1 + b1 n + b2 n^2)",
    ),
    "Rat23": Kernel(
        name="Rat23",
        func=_rat23,
        n_params=6,
        initial_guesses=_guesses(6),
        rational=True,
        description="(a0 + a1 n + a2 n^2) / (1 + b1 n + b2 n^2 + b3 n^3)",
    ),
    "Rat33": Kernel(
        name="Rat33",
        func=_rat33,
        n_params=7,
        initial_guesses=_guesses(7),
        rational=True,
        description="(a0 + a1 n + a2 n^2 + a3 n^3) / (1 + b1 n + b2 n^2 + b3 n^3)",
    ),
    "CubicLn": Kernel(
        name="CubicLn",
        func=_cubic_ln,
        n_params=4,
        initial_guesses=_guesses(4),
        rational=False,
        description="a + b ln(n) + c ln(n)^2 + d ln(n)^3",
    ),
    "ExpRat": Kernel(
        name="ExpRat",
        func=_exp_rat,
        n_params=4,
        initial_guesses=(
            (0.0, 0.1, 1.0, 0.1),
            (1.0, 0.5, 1.0, 0.01),
            (0.5, -0.1, 1.0, 0.5),
            (0.0, 1.0, 10.0, 1.0),
        ),
        rational=True,
        description="exp((a + b n) / (c + d n))",
    ),
    "Poly25": Kernel(
        name="Poly25",
        func=_poly25,
        n_params=4,
        initial_guesses=_guesses(4),
        rational=False,
        description="a + b n + c n^2 + d n^2.5",
    ),
}

#: Kernel names in the order the paper lists them (Table 1).
DEFAULT_KERNEL_NAMES: tuple[str, ...] = tuple(KERNELS)


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by its Table-1 name (case-sensitive)."""
    try:
        return KERNELS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNELS)}"
        ) from exc


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names."""
    return tuple(KERNELS)
