"""Plugin components for additional stall categories (Section 4.1).

ESTIMA's accuracy can be improved by feeding it extra stall categories — at
the software level (STM aborted-transaction cycles, lock spin cycles) or extra
hardware events.  The original tool takes a configuration file naming, per
plugin, the file the stalls are reported in (possibly stdout/stderr captured
to a file), a regular expression that extracts the per-report value, and an
aggregation function (min / max / sum / average) applied over all matches of
one run.

This module reproduces that mechanism: a :class:`StallPlugin` parses a text
report into one value, and :class:`PluginSet` applies a collection of plugins
to per-core-count report files and merges the results into an existing
:class:`~repro.core.measurement.MeasurementSet`.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from .measurement import Measurement, MeasurementSet

__all__ = ["StallPlugin", "PluginSet", "AGGREGATIONS"]


def _aggregate_average(values: Sequence[float]) -> float:
    return float(np.mean(values))


#: Aggregation functions a plugin may apply to all matches within one report.
AGGREGATIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "sum": lambda values: float(np.sum(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
    "average": _aggregate_average,
    "mean": _aggregate_average,
}


@dataclass(frozen=True)
class StallPlugin:
    """One user-specified stall category.

    Attributes
    ----------
    name:
        Category name under which the value is recorded (e.g.
        ``"stm_aborted_tx_cycles"``).
    pattern:
        Regular expression with exactly one capturing group that extracts a
        numeric value from a report line.
    aggregation:
        How to combine multiple matches in one report (``sum`` by default —
        e.g. one line per thread).
    level:
        ``"software"`` or ``"hardware"``; decides which measurement field the
        value lands in.
    scale:
        Optional multiplier applied to the aggregated value (e.g. to convert
        microseconds reported by a runtime into cycles).
    """

    name: str
    pattern: str
    aggregation: str = "sum"
    level: str = "software"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.aggregation not in AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; "
                f"choose one of {sorted(AGGREGATIONS)}"
            )
        if self.level not in ("software", "hardware"):
            raise ValueError("level must be 'software' or 'hardware'")
        compiled = re.compile(self.pattern)
        if compiled.groups != 1:
            raise ValueError("pattern must contain exactly one capturing group")
        if self.scale <= 0.0:
            raise ValueError("scale must be positive")

    def extract(self, report_text: str) -> float:
        """Parse one report and return the aggregated stall value.

        Reports with no matching line contribute 0.0 — an application that
        never aborted a transaction simply does not print abort statistics.
        """
        matches = re.findall(self.pattern, report_text)
        if not matches:
            return 0.0
        values = [float(m) for m in matches]
        return AGGREGATIONS[self.aggregation](values) * self.scale

    def extract_from_file(self, path: str | Path) -> float:
        """Parse a report file on disk."""
        return self.extract(Path(path).read_text())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pattern": self.pattern,
            "aggregation": self.aggregation,
            "level": self.level,
            "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StallPlugin":
        return cls(
            name=str(payload["name"]),
            pattern=str(payload["pattern"]),
            aggregation=str(payload.get("aggregation", "sum")),
            level=str(payload.get("level", "software")),
            scale=float(payload.get("scale", 1.0)),
        )


@dataclass(frozen=True)
class PluginSet:
    """A collection of stall plugins loaded from a configuration file."""

    plugins: tuple[StallPlugin, ...] = ()

    def __iter__(self):
        return iter(self.plugins)

    def __len__(self) -> int:
        return len(self.plugins)

    @classmethod
    def from_config(cls, path: str | Path) -> "PluginSet":
        """Load a JSON configuration file: ``{"plugins": [{...}, ...]}``."""
        payload = json.loads(Path(path).read_text())
        if isinstance(payload, list):
            entries = payload
        else:
            entries = payload.get("plugins", [])
        return cls(plugins=tuple(StallPlugin.from_dict(entry) for entry in entries))

    def save_config(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps({"plugins": [p.to_dict() for p in self.plugins]}, indent=2)
        )

    def extract_all(self, report_text: str) -> dict[str, tuple[str, float]]:
        """Apply every plugin to one report; returns name -> (level, value)."""
        return {p.name: (p.level, p.extract(report_text)) for p in self.plugins}

    def augment(
        self,
        measurements: MeasurementSet,
        reports: Mapping[int, str],
    ) -> MeasurementSet:
        """Merge plugin-extracted stalls into a measurement set.

        ``reports`` maps core count to the captured report text of that run.
        Core counts without a report keep their existing stall categories.
        """
        augmented: list[Measurement] = []
        for m in measurements:
            report = reports.get(m.cores)
            if report is None:
                augmented.append(m)
                continue
            extracted = self.extract_all(report)
            hw = dict(m.hardware_stalls)
            sw = dict(m.software_stalls)
            for name, (level, value) in extracted.items():
                target = hw if level == "hardware" else sw
                target[name] = target.get(name, 0.0) + value
            augmented.append(
                Measurement(
                    cores=m.cores,
                    time=m.time,
                    hardware_stalls=hw,
                    software_stalls=sw,
                    frontend_stalls=dict(m.frontend_stalls),
                    memory_footprint_mb=m.memory_footprint_mb,
                )
            )
        return MeasurementSet(
            measurements=tuple(augmented),
            workload=measurements.workload,
            machine=measurements.machine,
            frequency_ghz=measurements.frequency_ghz,
            dataset_size=measurements.dataset_size,
        )

    def augment_from_files(
        self, measurements: MeasurementSet, report_paths: Mapping[int, str | Path]
    ) -> MeasurementSet:
        """Like :meth:`augment` but reading reports from files."""
        reports = {cores: Path(path).read_text() for cores, path in report_paths.items()}
        return self.augment(measurements, reports)
