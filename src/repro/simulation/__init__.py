"""Composition layer: run workloads on simulated machines.

The simulator stands in for the paper's real testbeds: it produces, for each
(workload, machine, thread count) triple, the execution time and the stalled
cycle counters that ESTIMA would otherwise obtain from hardware performance
counters and instrumented runtimes.
"""

from .result import SimulationDetails, SimulationResult
from .simulator import MachineSimulator

__all__ = ["MachineSimulator", "SimulationDetails", "SimulationResult"]
