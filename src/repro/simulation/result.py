"""Simulation outputs.

A :class:`SimulationResult` is the simulator's equivalent of one profiled run:
execution time plus hardware/software/frontend stall counters, in exactly the
shape :class:`repro.core.measurement.Measurement` expects.  The ``details``
block keeps intermediate model quantities (abort probability, bandwidth
utilisation, ...) for tests and bottleneck analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.measurement import Measurement

__all__ = ["SimulationDetails", "SimulationResult"]


@dataclass(frozen=True)
class SimulationDetails:
    """Intermediate quantities of one simulated run (diagnostics only)."""

    useful_cycles_per_op: float
    backend_stall_cycles_per_op: float
    software_stall_cycles_per_op: float
    cycles_per_op: float
    cache_miss_fraction: float
    coherence_fraction: float
    memory_latency_cycles: float
    bandwidth_utilisation: float
    remote_access_fraction: float
    stm_abort_probability: float
    lock_utilisation: float
    sockets_used: int
    chips_used: int


@dataclass(frozen=True)
class SimulationResult:
    """One simulated profiled run of a workload at a fixed thread count."""

    workload: str
    machine: str
    threads: int
    dataset_scale: float
    time: float
    hardware_stalls: Mapping[str, float]
    software_stalls: Mapping[str, float]
    frontend_stalls: Mapping[str, float]
    memory_footprint_mb: float
    details: SimulationDetails

    def total_hardware_stalls(self) -> float:
        return float(sum(self.hardware_stalls.values()))

    def total_software_stalls(self) -> float:
        return float(sum(self.software_stalls.values()))

    def stalls_per_core(self, *, software: bool = True) -> float:
        total = self.total_hardware_stalls()
        if software:
            total += self.total_software_stalls()
        return total / self.threads

    def to_measurement(self, *, include_software: bool = True) -> Measurement:
        """Convert to the ESTIMA input format.

        ``include_software=False`` models a run where no runtime reported
        software stalls (the paper's default hardware-only mode).
        """
        return Measurement(
            cores=self.threads,
            time=self.time,
            hardware_stalls=dict(self.hardware_stalls),
            software_stalls=dict(self.software_stalls) if include_software else {},
            frontend_stalls=dict(self.frontend_stalls),
            memory_footprint_mb=self.memory_footprint_mb,
        )
