"""The machine simulator: workload x machine x thread count -> counters + time.

This is the substrate that replaces the paper's real hardware and ``perf``
runs.  For one run it composes the component models:

1. **Placement** — threads fill cores socket-first
   (:class:`repro.machine.topology.Topology`).
2. **Caches** — per-thread working set vs (shared) cache capacities gives the
   miss structure, plus coherence misses from shared writes
   (:class:`repro.machine.caches.CacheHierarchy`).
3. **Memory** — miss traffic vs per-socket bandwidth gives queueing-inflated
   DRAM latency; cross-die/cross-socket accesses pay the NUMA factor
   (:class:`repro.machine.memory.MemorySystem`).
4. **Synchronization** — lock, barrier, STM and CAS models yield software
   stall cycles, extra coherence traffic, and serialized cycles
   (:mod:`repro.sync`).
5. **Pipeline** — exposed latencies are decomposed into the vendor-neutral
   backend stall sources and mapped onto the machine's counter events
   (:mod:`repro.machine.pipeline`, :mod:`repro.machine.counters`).

Steps 2-4 are mutually dependent (lock arrival rates and bandwidth demand
depend on how long an operation takes, which depends on the stalls), so the
simulator iterates the composition to a fixed point — a few iterations settle
it well within the noise level.

All randomness is deterministic: the jitter applied to times and counters is
seeded from (machine, workload, threads, dataset), so repeated runs — and the
test suite — see identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.measurement import MeasurementSet
from repro.machine.caches import CacheBehaviour
from repro.machine.counters import FALLBACK_SOURCE, StallSource
from repro.machine.machines import MachineSpec
from repro.machine.memory import MemoryBehaviour
from repro.machine.pipeline import decompose_stalls
from repro.sync import SyncCost, combine_costs
from repro.workloads.base import Workload, WorkloadProfile

from .result import SimulationDetails, SimulationResult

__all__ = ["MachineSimulator"]

_FIXED_POINT_ITERATIONS = 4
# Cache-to-cache transfer cost for a coherence access injected by sync (cycles).
_COHERENCE_TRANSFER_CYCLES = 80.0


def _stable_seed(*parts) -> int:
    """Deterministic 32-bit seed from arbitrary hashable parts."""
    text = "|".join(str(p) for p in parts)
    h = 2166136261
    for ch in text.encode():
        h = (h ^ ch) * 16777619 & 0xFFFFFFFF
    return h


@dataclass
class MachineSimulator:
    """Simulate profiled runs of workloads on one machine.

    Parameters
    ----------
    machine:
        The machine specification.
    noise:
        Base relative jitter applied to times and counters (scaled further by
        each workload's ``noise_level``).  Set to 0.0 for exact model output.
    """

    machine: MachineSpec
    noise: float = 1.0

    # ------------------------------------------------------------------ #
    # Single run
    # ------------------------------------------------------------------ #
    def run(
        self,
        workload: Workload | WorkloadProfile,
        threads: int,
        *,
        dataset_scale: float = 1.0,
    ) -> SimulationResult:
        """Simulate one run at ``threads`` threads.

        ``dataset_scale`` multiplies the workload's default dataset; the total
        work and working sets grow proportionally (weak-scaling runs pass 2.0).
        """
        profile = (
            workload.profile(dataset_scale) if isinstance(workload, Workload) else workload
        )
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads > self.machine.total_threads:
            raise ValueError(
                f"{self.machine.name} has {self.machine.total_threads} hardware threads, "
                f"requested {threads}"
            )

        placement = self.machine.topology.place(threads)
        mix = profile.mix
        freq_hz = self.machine.frequency_ghz * 1e9

        total_ops = profile.total_ops
        ops_per_thread = total_ops / threads

        private_ws_kb = profile.private_working_set_mb * 1024.0
        if profile.partitioned_private:
            private_ws_kb /= threads
        shared_ws_kb = profile.shared_working_set_mb * 1024.0

        # Fixed point over (cycles per op) <-> (contention, bandwidth demand).
        cycles_per_op = mix.useful_cycles_per_op * 2.0
        cache: CacheBehaviour | None = None
        memory: MemoryBehaviour | None = None
        sync_cost: SyncCost = SyncCost()
        backend = {}
        for _ in range(_FIXED_POINT_ITERATIONS):
            sync_cost = combine_costs(
                *(model.cost(threads, cycles_per_op) for model in profile.sync_models())
            )
            cache = self.machine.caches.behaviour(
                private_working_set_kb=private_ws_kb,
                shared_working_set_kb=shared_ws_kb,
                threads_on_chip=placement.max_threads_per_chip,
                shared_access_fraction=profile.shared_access_fraction,
                shared_write_fraction=profile.shared_write_fraction,
                total_threads=threads,
                locality=profile.locality,
            )
            mem_refs = mix.mem_refs_per_op + sync_cost.extra_coherence_accesses
            misses_per_op = mem_refs * cache.miss_rate()
            ops_per_second = freq_hz / max(cycles_per_op, 1.0)
            memory = self.machine.memory.behaviour(
                placement=placement,
                frequency_ghz=self.machine.frequency_ghz,
                misses_per_second_per_thread=misses_per_op * ops_per_second,
                shared_access_fraction=profile.shared_access_fraction,
            )
            breakdown = decompose_stalls(
                mix, cache, memory, icache_miss_rate=profile.icache_miss_rate
            )
            backend = dict(breakdown.backend)
            # Coherence traffic injected by the synchronization protocol shows
            # up as additional memory-latency stalls at the hardware level.
            backend[StallSource.MEMORY_LATENCY] += (
                sync_cost.extra_coherence_accesses * _COHERENCE_TRANSFER_CYCLES / mix.mlp
            )
            backend_total = sum(backend.values())
            cycles_per_op = (
                mix.useful_cycles_per_op + backend_total + sync_cost.total_software_cycles
            )

        assert cache is not None and memory is not None
        frontend = decompose_stalls(
            mix, cache, memory, icache_miss_rate=profile.icache_miss_rate
        ).frontend
        backend_total = sum(backend.values())
        software_total = sync_cost.total_software_cycles

        # --- Execution time ------------------------------------------------
        parallel_cycles = ops_per_thread * cycles_per_op
        # Serial section: executed by one thread while the others idle.
        serial_cycles = profile.serial_fraction * total_ops * mix.useful_cycles_per_op
        # Serialized synchronization (critical sections, commits) bounds the
        # run regardless of thread count.
        serialized_floor = total_ops * sync_cost.serialized_cycles
        time_cycles = serial_cycles + max(parallel_cycles, serialized_floor)
        time_seconds = time_cycles / freq_hz

        # --- Counters (totals over all cores, like a perf aggregate) -------
        hardware = self._map_backend_counters(backend, total_ops)
        software = {
            name: value * total_ops for name, value in sync_cost.software_stall_cycles.items()
        }
        if not profile.software_stall_report:
            # The runtime cannot report software stalls for this workload;
            # the information simply is not available to ESTIMA.
            software = {}
        frontend_counters = {
            self._frontend_name(source): value * total_ops for source, value in frontend.items()
        }

        # --- Deterministic measurement jitter -------------------------------
        rng = np.random.default_rng(
            _stable_seed(self.machine.name, profile.name, threads, dataset_scale)
        )
        sigma = self.noise * profile.noise_level
        if sigma > 0.0:
            time_seconds *= float(np.exp(rng.normal(0.0, sigma)))
            hardware = {k: v * float(np.exp(rng.normal(0.0, sigma))) for k, v in hardware.items()}
            software = {k: v * float(np.exp(rng.normal(0.0, sigma))) for k, v in software.items()}
            frontend_counters = {
                k: v * float(np.exp(rng.normal(0.0, sigma))) for k, v in frontend_counters.items()
            }

        details = SimulationDetails(
            useful_cycles_per_op=mix.useful_cycles_per_op,
            backend_stall_cycles_per_op=float(backend_total),
            software_stall_cycles_per_op=float(software_total),
            cycles_per_op=float(cycles_per_op),
            cache_miss_fraction=float(cache.memory_fraction),
            coherence_fraction=float(cache.coherence_fraction),
            memory_latency_cycles=float(memory.effective_latency_cycles),
            bandwidth_utilisation=float(memory.bandwidth_utilisation),
            remote_access_fraction=float(memory.remote_fraction),
            stm_abort_probability=(
                profile.stm.abort_probability(threads) if profile.stm is not None else 0.0
            ),
            lock_utilisation=(
                profile.locks.utilisation(threads, cycles_per_op)
                if profile.locks is not None
                else 0.0
            ),
            sockets_used=placement.sockets_used,
            chips_used=placement.chips_used,
        )
        return SimulationResult(
            workload=profile.name,
            machine=self.machine.name,
            threads=threads,
            dataset_scale=dataset_scale,
            time=float(time_seconds),
            hardware_stalls=hardware,
            software_stalls=software,
            frontend_stalls=frontend_counters,
            memory_footprint_mb=float(profile.total_working_set_mb),
            details=details,
        )

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        workload: Workload | WorkloadProfile,
        core_counts: list[int] | None = None,
        *,
        dataset_scale: float = 1.0,
        include_software: bool = True,
    ) -> MeasurementSet:
        """Simulate a full core-count sweep and package it as a MeasurementSet."""
        if core_counts is None:
            core_counts = self.machine.core_counts()
        profile = (
            workload.profile(dataset_scale) if isinstance(workload, Workload) else workload
        )
        results = [
            self.run(profile, threads, dataset_scale=dataset_scale) for threads in core_counts
        ]
        return MeasurementSet(
            measurements=tuple(
                r.to_measurement(include_software=include_software) for r in results
            ),
            workload=profile.name,
            machine=self.machine.name,
            frequency_ghz=self.machine.frequency_ghz,
            dataset_size=dataset_scale,
        )

    # ------------------------------------------------------------------ #
    # Counter mapping
    # ------------------------------------------------------------------ #
    def _map_backend_counters(
        self, backend: dict[StallSource, float], total_ops: float
    ) -> dict[str, float]:
        """Map vendor-neutral stall sources onto this machine's counter events."""
        by_source = self.machine.counters.backend_by_source()
        totals: dict[str, float] = {event.name: 0.0 for event in self.machine.counters.backend}
        for source, cycles_per_op in backend.items():
            target = source
            while target not in by_source:
                target = FALLBACK_SOURCE.get(target)
                if target is None:
                    break
            if target is None:
                # No counter measures this source on this machine; the cycles
                # are simply invisible to ESTIMA (as on real hardware).
                continue
            totals[by_source[target].name] += cycles_per_op * total_ops
        return totals

    def _frontend_name(self, source: StallSource) -> str:
        for event in self.machine.counters.frontend:
            if event.source == source:
                return event.name
        return source.value
