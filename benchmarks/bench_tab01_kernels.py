"""Table 1: the extrapolation function kernels.

There is nothing to measure in the paper's Table 1 itself — it defines the
kernel set — so this bench validates and times what the kernels are for:
fitting measured stalled-cycle series.  Each kernel is fitted to the intruder
ROB-stall series (12 measured points) and its checkpoint RMSE is reported.
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro.core import EstimaConfig
from repro.core.fitting import fit_kernel
from repro.core.kernels import KERNELS


def bench_tab01_kernel_fit_quality(benchmark, sweep_cache):
    sweep = sweep_cache("opteron48", "intruder", OPTERON_GRID)
    measured = sweep.restrict_to(12)
    cores = measured.cores.astype(float)
    series = measured.category_series("dispatch_stall_reorder_buffer_full")

    def pipeline():
        results = {}
        for name, kernel in KERNELS.items():
            fitted = fit_kernel(kernel, cores[:10], series[:10])
            if fitted is None:
                results[name] = float("nan")
                continue
            checkpoints = fitted(cores[10:])
            results[name] = float(np.sqrt(np.mean((checkpoints - series[10:]) ** 2)))
        return results

    rmse_by_kernel = run_once(benchmark, pipeline)
    print()
    print("# Table 1: kernel families and their checkpoint RMSE on intruder ROB stalls")
    print(f"{'kernel':<10s} {'function':<50s} {'checkpoint RMSE':>16s}")
    for name, kernel in KERNELS.items():
        print(f"{name:<10s} {kernel.description:<50s} {rmse_by_kernel[name]:>16.3e}")
    assert set(rmse_by_kernel) == set(EstimaConfig().kernel_names)
