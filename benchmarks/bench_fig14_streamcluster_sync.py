"""Figure 14: streamcluster's synchronization bottleneck is invisible to
hardware stalls alone.

On the full Opteron, the correlation of stalled cycles per core with execution
time is computed with and without the pthread-wrapper synchronization cycles.
Paper: 0.86 hardware-only vs 0.98 with software stalls.
"""

from __future__ import annotations

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series, stalls_time_correlation


def bench_fig14_streamcluster_software_stalls(benchmark, sweep_cache):
    def pipeline():
        sweep = sweep_cache("opteron48", "streamcluster", OPTERON_GRID)
        return (
            sweep,
            stalls_time_correlation(sweep, software=False),
            stalls_time_correlation(sweep, software=True),
        )

    sweep, hw_only, with_sw = run_once(benchmark, pipeline)
    cores = list(sweep.cores)
    print()
    print(
        figure_series(
            "Figure 14: streamcluster — execution time and stalls per core",
            cores,
            {
                "time_s": sweep.times,
                "hw_stalls_per_core": sweep.stalls_per_core(software=False),
                "hw+sw_stalls_per_core": sweep.stalls_per_core(software=True),
            },
        )
    )
    print(f"\ncorrelation hardware-only   : {hw_only:.2f} (paper: 0.86)")
    print(f"correlation with sync cycles: {with_sw:.2f} (paper: 0.98)")
    assert with_sw >= hw_only - 0.02
