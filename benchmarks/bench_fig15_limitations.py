"""Figure 15: the streamcluster limitation — measurement window matters.

streamcluster's behaviour changes past ~30 cores (synchronization plus memory
bandwidth); stalls measured on 12 cores carry no hint of it, so the prediction
has high absolute error.  Measuring on two sockets (24 cores) captures the
onset and improves the prediction markedly.
"""

from __future__ import annotations

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series


def bench_fig15_streamcluster_measurement_window(benchmark, sweep_cache, prediction_cache):
    def pipeline():
        return {
            window: prediction_cache(
                "opteron48", "streamcluster", measurement_cores=window, target_cores=48
            )
            for window in (12, 24)
        }

    predictions = run_once(benchmark, pipeline)
    sweep = sweep_cache("opteron48", "streamcluster", OPTERON_GRID)
    print()
    errors = {}
    for label, window in (("a", 12), ("b", 24)):
        prediction = predictions[window]
        eval_cores = [c for c in OPTERON_GRID if c > 24]
        error = prediction.evaluate(sweep, core_counts=eval_cores)
        errors[window] = error.max_error_pct
        print(
            figure_series(
                f"Figure 15({label}): streamcluster measured on {window} cores — "
                f"max error beyond 24 cores {error.max_error_pct:.1f}%",
                eval_cores,
                {
                    "measured": [sweep.time_at(c) for c in eval_cores],
                    "predicted": [prediction.predicted_time_at(c) for c in eval_cores],
                },
            )
        )
        print()
    print("paper: the 24-core measurement window gives a significantly better prediction")
    if errors[24] > errors[12]:
        print(
            "note: on this substrate the wider window does not always win — "
            "see EXPERIMENTS.md (Figure 15) for the caveat."
        )
    # Both windows must at least capture the slowdown without blowing up.
    assert errors[12] < 100.0 and errors[24] < 100.0
