"""Table 7: predictions from both Xeon20 sockets to the Xeon48 machine.

Measurements on the full Xeon20 (20 cores, so NUMA effects are present in the
measurement window) are extrapolated to the 48-core Xeon48; the paper reports
an average error of 13.9% vs 17.7% for single-socket Xeon20 predictions, with
a much smaller standard deviation.

The two machines differ (frequency, cache sizes), so the cross-machine
frequency scaling of Section 4.3 is applied.
"""

from __future__ import annotations

import numpy as np

from conftest import XEON20_GRID, XEON48_GRID, campaign_workloads, run_once
from repro import EstimaConfig, EstimaPredictor, MachineSimulator
from repro.machine import get_machine
from repro.workloads import get_workload


def bench_tab07_xeon20_to_xeon48(benchmark, sweep_cache):
    names = campaign_workloads()
    xeon20 = get_machine("xeon20")
    xeon48 = get_machine("xeon48")
    config = EstimaConfig.for_cross_machine(
        measurement_frequency_ghz=xeon20.frequency_ghz,
        target_frequency_ghz=xeon48.frequency_ghz,
    )

    def pipeline():
        errors = {}
        for name in names:
            measured = sweep_cache("xeon20", name, XEON20_GRID)
            truth = sweep_cache("xeon48", name, XEON48_GRID)
            prediction = EstimaPredictor(config).predict(measured, target_cores=48)
            eval_cores = [int(c) for c in truth.cores if c > 20]
            errors[name] = prediction.evaluate(truth, core_counts=eval_cores).max_error_pct
        return errors

    errors = run_once(benchmark, pipeline)
    print()
    print("# Table 7: maximum prediction errors (%), Xeon20 (20 cores) -> Xeon48 (48 cores)")
    for name, error in errors.items():
        print(f"{name:<18s} {error:>8.1f}")
    values = np.asarray(list(errors.values()))
    print("-" * 28)
    print(f"{'Average':<18s} {np.mean(values):>8.1f}   (paper: 13.9)")
    print(f"{'Std. Dev.':<18s} {np.std(values):>8.1f}   (paper: 6.5)")
    print(f"{'Max.':<18s} {np.max(values):>8.1f}   (paper: 30.0)")
