"""Engine microbench: serial vs parallel campaign wall time, and fit caching.

Not a paper figure — this bench records what the execution-engine layer buys:
the same multi-workload campaign is timed on the serial reference backend and
on the process-pool backend (speedup scales with core count; on a single-core
host the two are expected to tie), plus a cached run showing the fit/
extrapolation/prediction cache hit counters, plus a cold-cache comparison of
the two fit-grid strategies (``bench_fit_strategy_speedup``).  The rows of
all runs are asserted identical, the engine's core guarantee.
"""

from __future__ import annotations

import os
import time

from conftest import OPTERON_GRID, run_once
from repro.core import EstimaConfig
from repro.engine.cache import clear_caches
from repro.machine import get_machine
from repro.runner import ErrorCampaign

#: Small fixed workload set so the bench times the engine, not 19 pipelines.
ENGINE_BENCH_WORKLOADS = ("lock_free_ht", "genome", "intruder", "kmeans")


def _campaign(config: EstimaConfig | None = None, executor: str | None = None):
    return ErrorCampaign(
        machine=get_machine("opteron48"),
        measurement_cores=12,
        targets={"2 CPUs": 24, "4 CPUs": 48},
        config=config or EstimaConfig(),
        core_counts=OPTERON_GRID,
        executor=executor,
    )


def bench_engine_serial_vs_parallel(benchmark):
    def pipeline():
        wall: dict[str, float] = {}
        results = {}
        for name, executor in (("serial", "serial"), ("parallel", "parallel")):
            start = time.perf_counter()
            results[name] = _campaign(executor=executor).run(ENGINE_BENCH_WORKLOADS)
            wall[name] = time.perf_counter() - start
        return wall, results

    wall, results = run_once(benchmark, pipeline)
    assert results["serial"].rows == results["parallel"].rows
    speedup = wall["serial"] / wall["parallel"]
    print()
    print(f"# Engine speedup: {len(ENGINE_BENCH_WORKLOADS)}-workload campaign, "
          f"{os.cpu_count()} CPU(s)")
    print(f"serial   : {wall['serial']:.2f} s")
    print(f"parallel : {wall['parallel']:.2f} s  (speedup {speedup:.2f}x)")
    print("rows identical across backends: True")


def bench_fit_strategy_speedup(benchmark):
    """Cold-cache serial vs vectorized fit grid, alone and composed.

    Three legs, every cache cleared before each: the scalar reference
    strategy on the serial executor, the vectorized strategy on the serial
    executor (the in-process win — bounded, because bit-identity with the
    reference solver caps how much work the lean driver may skip), and the
    vectorized strategy on the process-pool executor (the composed engine).
    Rows are asserted identical across all three; on hosts with at least 4
    cores the composed engine must beat the reference by >= 3x.
    """
    legs = (
        ("serial-strategy", "serial", "serial"),
        ("vectorized", "vectorized", "serial"),
        ("vectorized+parallel", "vectorized", "parallel"),
    )

    def pipeline():
        wall: dict[str, float] = {}
        results = {}
        for name, strategy, executor in legs:
            clear_caches()
            start = time.perf_counter()
            results[name] = _campaign(
                config=EstimaConfig(fit_strategy=strategy), executor=executor
            ).run(ENGINE_BENCH_WORKLOADS)
            wall[name] = time.perf_counter() - start
        return wall, results

    wall, results = run_once(benchmark, pipeline)
    reference = results["serial-strategy"]
    for name, _, _ in legs[1:]:
        assert results[name].rows == reference.rows, f"{name} rows diverged"
    in_process = wall["serial-strategy"] / wall["vectorized"]
    composed = wall["serial-strategy"] / wall["vectorized+parallel"]
    benchmark.extra_info["serial_strategy_s"] = wall["serial-strategy"]
    benchmark.extra_info["vectorized_s"] = wall["vectorized"]
    benchmark.extra_info["vectorized_parallel_s"] = wall["vectorized+parallel"]
    benchmark.extra_info["in_process_speedup"] = in_process
    benchmark.extra_info["composed_speedup"] = composed
    print()
    print(f"# Fit-strategy speedup: {len(ENGINE_BENCH_WORKLOADS)}-workload campaign, "
          f"cold caches, {os.cpu_count()} CPU(s)")
    print(f"serial strategy      : {wall['serial-strategy']:.2f} s")
    print(f"vectorized           : {wall['vectorized']:.2f} s  (speedup {in_process:.2f}x)")
    print(f"vectorized+parallel  : {wall['vectorized+parallel']:.2f} s  "
          f"(speedup {composed:.2f}x)")
    print("rows identical across strategies: True")
    if (os.cpu_count() or 1) >= 4:
        assert composed >= 3.0, (
            f"composed vectorized+parallel engine only {composed:.2f}x faster "
            f"than the serial reference on {os.cpu_count()} cores (>= 3x required)"
        )


def bench_engine_fit_cache(benchmark):
    def pipeline():
        start = time.perf_counter()
        result = _campaign(config=EstimaConfig(use_fit_cache=True)).run(
            ENGINE_BENCH_WORKLOADS
        )
        return time.perf_counter() - start, result

    wall, cached = run_once(benchmark, pipeline)
    plain = _campaign().run(ENGINE_BENCH_WORKLOADS)
    assert cached.rows == plain.rows
    caches = (cached.engine_stats or {}).get("caches", {})
    print()
    print(f"# Engine fit-cache campaign: {wall:.2f} s; rows identical to uncached: True")
    for region, counts in sorted(caches.items()):
        lookups = counts.get("hits", 0) + counts.get("misses", 0)
        if lookups:
            print(f"{region:>13s}: {counts.get('hits', 0)}/{lookups} hits")
    assert caches.get("prediction", {}).get("hits", 0) > 0
