"""Figure 6: memcached and SQLite predicted from a desktop to a server.

Measurements on the Haswell desktop (3 hardware threads for memcached, 4 cores
for SQLite), predictions for the 20-core Xeon, compared against runs on the
server.  The paper reports errors below 30% (memcached) and 26% (SQLite) and,
most importantly, the correct "stops scaling" behaviour.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.analysis import figure_series
from repro.machine import get_machine
from repro.runner import CrossMachineExperiment
from repro.workloads import get_workload


def bench_fig06_memcached_and_sqlite(benchmark):
    def pipeline():
        results = {}
        for workload_name, cores in (("memcached", 3), ("sqlite_tpcc", 4)):
            experiment = CrossMachineExperiment(
                measurement_machine=get_machine("haswell_desktop"),
                target_machine=get_machine("xeon20"),
            )
            results[workload_name] = experiment.run(
                get_workload(workload_name), measurement_cores=cores
            )
        return results

    results = run_once(benchmark, pipeline)
    print()
    paper_bounds = {"memcached": 30.0, "sqlite_tpcc": 26.0}
    for name, result in results.items():
        cores = [int(c) for c in result.ground_truth.cores if c >= 2]
        print(
            figure_series(
                f"Figure 6: {name} — desktop ({result.measurement_cores} cores) to Xeon20",
                cores,
                {
                    "measured": [result.ground_truth.time_at(c) for c in cores],
                    "predicted": [result.estima.predicted_time_at(c) for c in cores],
                },
            )
        )
        actual_peak = int(
            result.ground_truth.cores[int(np.argmin(result.ground_truth.times))]
        )
        print(
            f"max error {result.estima_error.max_error_pct:.1f}% "
            f"(paper: below {paper_bounds[name]:.0f}%), "
            f"predicted peak {result.estima.predicted_peak_cores()}, actual {actual_peak}"
        )
        print()
        # The qualitative claim: the server stops scaling — the predicted curve
        # flattens (no large gains from the last socket's worth of cores).
        gain = 1.0 - result.estima.predicted_time_at(20) / result.estima.predicted_time_at(12)
        assert gain < 0.4
