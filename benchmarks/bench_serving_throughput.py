"""Serving-layer bench: micro-batched throughput and warm disk-cache restarts.

Not a paper figure — this bench records what the serving subsystem buys:

* ``bench_serving_throughput``: a burst of concurrent JSON prediction
  requests is served by :class:`~repro.engine.server.PredictionServer`
  (micro-batching + cross-client dedup) and timed against the same requests
  issued one by one against a bare :class:`EstimaPredictor`.  Every served
  result is asserted bit-identical to its per-request counterpart — the
  serving layer's core guarantee.
* ``bench_serving_warm_disk_cache``: the same request set is computed twice
  against a disk-backed fit cache, with the in-memory tier dropped in
  between (a simulated process restart).  The warm pass must re-fit **zero**
  kernels: every fit/extrapolation lookup is a tier-2 (disk) hit.
* ``bench_serving_tcp_worker_scaling``: the same concurrent request burst is
  served over TCP by a 1-worker and a 4-worker pool, each starting from a
  cold cache.  Reports the throughput ratio (the multi-core serving payoff);
  on a >= 4-core machine the 4-worker pool must reach >= 1.5x the 1-worker
  predict throughput.  Every response is checked against a per-request
  predictor; across forked workers sharing the disk tier the check allows
  last-ULP wobble (<= 1e-12 relative) — the deterministic single-process
  serving paths stay pinned bit-exact by the test suite.
* ``bench_serving_http_overhead``: the same request burst served once over
  the raw NDJSON TCP transport and once through the HTTP/JSON gateway
  (``POST /v1/predict`` on keep-alive connections), both by a single
  in-process server.  Reports req/s for each and the relative HTTP framing
  overhead; every HTTP-served result is asserted bit-identical to its
  TCP-served counterpart (same engine, same numbers — only the framing
  differs).
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro.core import EstimaConfig, EstimaPredictor
from repro.engine.cache import (
    attach_disk_tier,
    caches_enabled,
    clear_caches,
    detach_disk_tier,
    reset_cache_stats,
)
from repro.engine.server import PredictionServer
from repro.engine.service import PredictionRequest, PredictionService
from repro.machine import get_machine
from repro.simulation import MachineSimulator
from repro.workloads import get_workload

SERVING_WORKLOADS = ("lock_free_ht", "genome", "intruder")
SERVING_TARGETS = (24, 48)
#: Each (workload, target) pair is requested this many times, emulating
#: several clients asking for overlapping predictions concurrently.
CLIENTS_PER_REQUEST = 3


def _request_payloads() -> list[dict]:
    simulator = MachineSimulator(get_machine("opteron48"))
    payloads = []
    for name in SERVING_WORKLOADS:
        sweep = simulator.sweep(get_workload(name), core_counts=OPTERON_GRID)
        measured = sweep.restrict_to(12).to_dict()
        for target in SERVING_TARGETS:
            for client in range(CLIENTS_PER_REQUEST):
                payloads.append(
                    {
                        "id": f"{name}@{target}#{client}",
                        "target_cores": target,
                        "measurements": measured,
                    }
                )
    return payloads


def bench_serving_throughput(benchmark):
    payloads = _request_payloads()

    async def serve_burst():
        server = PredictionServer(
            EstimaConfig(), max_batch=len(payloads), batch_window_ms=50.0
        )
        responses = await asyncio.gather(*[server.submit(p) for p in payloads])
        stats = server.stats()
        await server.stop()
        return responses, stats

    def pipeline():
        start = time.perf_counter()
        responses, stats = asyncio.run(serve_burst())
        served_wall = time.perf_counter() - start

        start = time.perf_counter()
        direct = {}
        simulator = MachineSimulator(get_machine("opteron48"))
        for name in SERVING_WORKLOADS:
            sweep = simulator.sweep(get_workload(name), core_counts=OPTERON_GRID)
            measured = sweep.restrict_to(12)
            for target in SERVING_TARGETS:
                for _ in range(CLIENTS_PER_REQUEST):
                    direct[(name, target)] = EstimaPredictor(EstimaConfig()).predict(
                        measured, target_cores=target
                    )
        direct_wall = time.perf_counter() - start
        return responses, stats, direct, served_wall, direct_wall

    responses, stats, direct, served_wall, direct_wall = run_once(benchmark, pipeline)

    assert all(r["ok"] for r in responses)
    for response in responses:
        name, rest = response["id"].split("@")
        target = int(rest.split("#")[0])
        expected = direct[(name, target)]
        assert response["result"]["predicted_times_s"] == [
            float(t) for t in expected.predicted_times
        ], f"served result diverged for {response['id']}"

    n = len(responses)
    print()
    print(f"# Serving throughput: {n} concurrent requests "
          f"({len(SERVING_WORKLOADS)} workloads x {len(SERVING_TARGETS)} targets "
          f"x {CLIENTS_PER_REQUEST} clients)")
    print(f"micro-batched serve : {served_wall:.2f} s  ({n / served_wall:.2f} req/s)")
    print(f"one-by-one predictor: {direct_wall:.2f} s  ({n / direct_wall:.2f} req/s)")
    print(f"batches formed      : {stats['server']['batches']} "
          f"(mean size {stats['server']['mean_batch_size']:.1f})")
    dedup = stats["caches"]["prediction"]
    print(f"cross-client dedup  : {dedup['hits']} hits / {dedup['hits'] + dedup['misses']} lookups")
    print("served == per-request predictor: True")
    assert dedup["hits"] > 0  # identical client requests were deduplicated


def _tcp_client_burst(address, payloads: list[dict]) -> list[dict]:
    """Send payloads over one TCP connection; return the response documents."""
    sock = socket.create_connection(address, timeout=600)
    try:
        stream = sock.makefile("rwb")
        for payload in payloads:
            stream.write(json.dumps(payload).encode() + b"\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)
        return [json.loads(line) for line in stream]
    finally:
        sock.close()


def bench_serving_tcp_worker_scaling(benchmark, tmp_path_factory):
    """1-vs-4-worker TCP pools on a cold cache: the multi-core serving payoff."""
    from repro.engine.pool import WorkerPool

    payloads = _request_payloads()
    n_clients = 6

    def run_pool(workers: int) -> tuple[list[dict], float]:
        # Fresh cache dir per pool: both measurements start cold; within one
        # pool the workers share the disk tier through the filesystem.
        cache_dir = tmp_path_factory.mktemp(f"tcp-tier2-{workers}w")
        config = EstimaConfig(use_fit_cache=True, cache_dir=str(cache_dir))
        pool = WorkerPool(
            config, workers=workers, tcp="127.0.0.1:0", batch_window_ms=5.0
        ).start()
        try:
            slices = [payloads[i::n_clients] for i in range(n_clients)]
            responses: list[list[dict]] = [[] for _ in range(n_clients)]
            start = time.perf_counter()

            def client(index: int) -> None:
                responses[index] = _tcp_client_burst(pool.address, slices[index])

            threads = [
                threading.Thread(target=client, args=(index,)) for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
        finally:
            pool.stop()
        return [response for per_client in responses for response in per_client], wall

    def pipeline():
        single_responses, single_wall = run_pool(1)
        quad_responses, quad_wall = run_pool(4)
        return single_responses, single_wall, quad_responses, quad_wall

    single_responses, single_wall, quad_responses, quad_wall = run_once(benchmark, pipeline)

    # Both pools answered everything, matching a standalone per-request
    # predictor.  The single-process serving paths are pinned bit-exact by
    # the test suite; across *forked workers under concurrency* the shared
    # disk tier can interleave cache fills between processes, which may
    # reorder float reductions — so this cross-process check allows last-ULP
    # wobble (and reports the worst deviation) while still catching any real
    # numerical divergence.
    direct = {}
    simulator = MachineSimulator(get_machine("opteron48"))
    for name in SERVING_WORKLOADS:
        sweep = simulator.sweep(get_workload(name), core_counts=OPTERON_GRID)
        measured = sweep.restrict_to(12)
        for target in SERVING_TARGETS:
            direct[(name, target)] = EstimaPredictor(EstimaConfig()).predict(
                measured, target_cores=target
            )
    worst_rel = 0.0
    for pool_label, responses in (("1w", single_responses), ("4w", quad_responses)):
        assert len(responses) == len(payloads)
        assert all(r["ok"] for r in responses)
        for response in responses:
            name, rest = response["id"].split("@")
            target = int(rest.split("#")[0])
            want = np.asarray(direct[(name, target)].predicted_times, dtype=float)
            got = np.asarray(response["result"]["predicted_times_s"], dtype=float)
            assert got.shape == want.shape
            rel = float(np.max(np.abs(got - want) / np.maximum(np.abs(want), 1e-300)))
            worst_rel = max(worst_rel, rel)
            assert rel <= 1e-12, (
                f"served result diverged for {response['id']} ({pool_label}): "
                f"max relative deviation {rel:.3e}"
            )

    n = len(payloads)
    speedup = single_wall / max(quad_wall, 1e-9)
    print()
    print(f"# TCP worker scaling: {n} concurrent requests over {n_clients} "
          f"connections, cold cache (machine has {os.cpu_count()} CPUs)")
    print(f"1 worker : {single_wall:.2f} s  ({n / single_wall:.2f} req/s)")
    print(f"4 workers: {quad_wall:.2f} s  ({n / quad_wall:.2f} req/s)")
    print(f"speedup  : {speedup:.2f}x")
    print(f"served == per-request predictor (both pools): True "
          f"(worst relative deviation {worst_rel:.1e})")
    if (os.cpu_count() or 1) >= 4:
        # The acceptance criterion; skipped on boxes that physically cannot
        # run 4 workers in parallel (the ratio is meaningless there).
        assert speedup >= 1.5, f"4-worker pool only reached {speedup:.2f}x"


def _http_client_burst(address, payloads: list[dict]) -> list[dict]:
    """POST payloads to /v1/predict over one keep-alive HTTP connection."""
    import http.client

    conn = http.client.HTTPConnection(*address, timeout=600)
    try:
        responses = []
        for payload in payloads:
            conn.request("POST", "/v1/predict", body=json.dumps(payload))
            response = conn.getresponse()
            assert response.status == 200, response.status
            responses.append(json.loads(response.read()))
        return responses
    finally:
        conn.close()


class _ThreadedAsyncServer:
    """Run a serve_tcp/serve_http coroutine factory on a background loop."""

    def __init__(self, start_serving) -> None:
        # start_serving(on_listening) must return the transport coroutine.
        self._start_serving = start_serving
        self.address: "tuple[str, int] | None" = None
        self._ready = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            task = self._loop.create_task(
                self._start_serving(
                    lambda addr: (setattr(self, "address", addr), self._ready.set())
                )
            )
            await self._stop.wait()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(body())

    def __enter__(self) -> "_ThreadedAsyncServer":
        self._thread.start()
        assert self._ready.wait(timeout=60), "server did not come up"
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


def bench_serving_http_overhead(benchmark):
    """HTTP gateway vs raw NDJSON TCP: what the standard framing costs."""
    from repro.engine.gateway import HttpGateway, serve_http
    from repro.engine.server import serve_tcp

    payloads = _request_payloads()
    n_clients = 4

    def run_transport(kind: str) -> tuple[list[dict], float]:
        server = PredictionServer(EstimaConfig(), batch_window_ms=5.0)
        if kind == "http":
            gateway = HttpGateway(server)
            box = _ThreadedAsyncServer(
                lambda on_listening: serve_http(
                    gateway, "127.0.0.1", 0, on_listening=on_listening
                )
            )
            client = _http_client_burst
        else:
            box = _ThreadedAsyncServer(
                lambda on_listening: serve_tcp(
                    server, "127.0.0.1", 0, on_listening=on_listening
                )
            )
            client = _tcp_client_burst
        with box:
            slices = [payloads[i::n_clients] for i in range(n_clients)]
            responses: list[list[dict]] = [[] for _ in range(n_clients)]
            start = time.perf_counter()

            def run_client(index: int) -> None:
                responses[index] = client(box.address, slices[index])

            threads = [
                threading.Thread(target=run_client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
        return [response for per_client in responses for response in per_client], wall

    def pipeline():
        tcp_responses, tcp_wall = run_transport("tcp")
        http_responses, http_wall = run_transport("http")
        return tcp_responses, tcp_wall, http_responses, http_wall

    tcp_responses, tcp_wall, http_responses, http_wall = run_once(benchmark, pipeline)

    # Same engine behind both framings: per-id results are bit-identical.
    assert all(r["ok"] for r in tcp_responses)
    assert all(r["ok"] for r in http_responses)
    tcp_by_id = {r["id"]: r["result"] for r in tcp_responses}
    http_by_id = {r["id"]: r["result"] for r in http_responses}
    assert set(tcp_by_id) == set(http_by_id) == {p["id"] for p in payloads}
    for request_id, tcp_result in tcp_by_id.items():
        assert json.dumps(tcp_result, sort_keys=True) == json.dumps(
            http_by_id[request_id], sort_keys=True
        ), f"HTTP-served result diverged from TCP for {request_id}"

    n = len(payloads)
    overhead_pct = 100.0 * (http_wall / max(tcp_wall, 1e-9) - 1.0)
    print()
    print(f"# HTTP gateway overhead: {n} predict requests over {n_clients} "
          f"keep-alive connections per transport")
    print(f"raw NDJSON TCP: {tcp_wall:.2f} s  ({n / tcp_wall:.2f} req/s)")
    print(f"HTTP gateway  : {http_wall:.2f} s  ({n / http_wall:.2f} req/s)")
    print(f"framing overhead: {overhead_pct:+.1f}% wall time "
          f"(HTTP-served == TCP-served: True)")


def _spawn_tcp_backend(env: dict) -> "tuple[object, tuple[str, int]]":
    """Start ``estima serve --tcp 127.0.0.1:0`` and parse its stderr banner."""
    import re
    import subprocess
    import sys

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--tcp", "127.0.0.1:0", "--batch-window-ms", "5",
        ],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stderr.readline()  # "serving on tcp HOST:PORT"
    match = re.search(r"serving on tcp ([\d.]+):(\d+)", banner)
    assert match, f"backend did not come up (stderr: {banner!r})"
    return proc, (match.group(1), int(match.group(2)))


def bench_router_scaling(benchmark):
    """1-vs-3-backend cluster router: the scale-out serving payoff.

    The same burst of distinct predict requests is pushed through
    ``Router`` (the ``estima route`` front-end) twice — once over a single
    ``estima serve --tcp`` backend process, once sharded across three — and
    the response documents are asserted bit-identical between the two
    topologies (the cluster layer's core guarantee: sharding never changes
    a number).  On a >= 4-core machine the 3-backend fleet must reach
    >= 2x the single-backend throughput.
    """
    from repro.engine.cluster.router import Router, serve_route

    env = {k: v for k, v in os.environ.items() if not k.startswith("ESTIMA_")}
    src = os.path.dirname(os.path.dirname(os.path.abspath(__file__))) + "/src"
    env["PYTHONPATH"] = src

    # Distinct (workload, target) pairs: enough keys that the consistent
    # hash spreads load across a 3-node ring.
    workloads = (
        "lock_free_ht", "genome", "intruder", "kmeans", "yada", "blackscholes",
        "raytrace", "streamcluster", "ssca2", "labyrinth", "vacation_high", "swaptions",
    )
    payloads = [
        {
            "id": f"{name}@{target}",
            "workload": name,
            "machine": "xeon20",
            "measure_cores": 10,
            "target_cores": target,
        }
        for name in workloads
        for target in (16, 20)
    ]
    n_clients = 6

    def run_topology(n_backends: int) -> tuple[list[dict], float, dict]:
        procs, addresses = [], []
        try:
            for _ in range(n_backends):
                proc, address = _spawn_tcp_backend(env)
                procs.append(proc)
                addresses.append(f"{address[0]}:{address[1]}")
            router = Router(tuple(addresses), config=EstimaConfig(), timeout=600.0)
            try:
                box = _ThreadedAsyncServer(
                    lambda on_listening: serve_route(
                        router, "127.0.0.1", 0, on_listening=on_listening
                    )
                )
                with box:
                    slices = [payloads[i::n_clients] for i in range(n_clients)]
                    responses: list[list[dict]] = [[] for _ in range(n_clients)]
                    start = time.perf_counter()

                    def run_client(index: int) -> None:
                        responses[index] = _http_client_burst(box.address, slices[index])

                    threads = [
                        threading.Thread(target=run_client, args=(index,))
                        for index in range(n_clients)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    wall = time.perf_counter() - start
                stats = router.stats()
            finally:
                router.close()
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=60)
        flat = [response for per_client in responses for response in per_client]
        return flat, wall, stats

    def pipeline():
        single_responses, single_wall, single_stats = run_topology(1)
        triple_responses, triple_wall, triple_stats = run_topology(3)
        return (
            single_responses, single_wall, single_stats,
            triple_responses, triple_wall, triple_stats,
        )

    (
        single_responses, single_wall, single_stats,
        triple_responses, triple_wall, triple_stats,
    ) = run_once(benchmark, pipeline)

    # Sharding changed nothing: the full response documents agree by id.
    assert all(r["ok"] for r in single_responses)
    assert all(r["ok"] for r in triple_responses)
    single_by_id = {r["id"]: r for r in single_responses}
    triple_by_id = {r["id"]: r for r in triple_responses}
    assert set(single_by_id) == set(triple_by_id) == {p["id"] for p in payloads}
    for request_id, single_doc in single_by_id.items():
        assert json.dumps(single_doc, sort_keys=True) == json.dumps(
            triple_by_id[request_id], sort_keys=True
        ), f"3-backend response diverged from 1-backend for {request_id}"

    n = len(payloads)
    speedup = single_wall / max(triple_wall, 1e-9)
    per_backend = triple_stats["cluster"]["per_backend"]
    shares = sorted(counts["requests"] for counts in per_backend.values())
    print()
    print(f"# Router scaling: {n} distinct predict requests over {n_clients} "
          f"keep-alive connections (machine has {os.cpu_count()} CPUs)")
    print(f"1 backend : {single_wall:.2f} s  ({n / single_wall:.2f} req/s)")
    print(f"3 backends: {triple_wall:.2f} s  ({n / triple_wall:.2f} req/s)")
    print(f"speedup   : {speedup:.2f}x  (ring shares: {shares})")
    print("3-backend responses == 1-backend responses: True")
    assert single_stats["cluster"]["backends_up"] == 1
    assert triple_stats["cluster"]["backends_up"] == 3
    assert sum(shares) >= n  # every request went through the ring
    if (os.cpu_count() or 1) >= 4:
        # The acceptance criterion; meaningless on boxes that cannot run
        # three backend processes in parallel.
        assert speedup >= 2.0, f"3-backend fleet only reached {speedup:.2f}x"


def bench_serving_warm_disk_cache(benchmark, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("estima-disk-tier")
    config = EstimaConfig(use_fit_cache=True, cache_dir=str(cache_dir))
    simulator = MachineSimulator(get_machine("opteron48"))
    measured = {
        name: simulator.sweep(get_workload(name), core_counts=OPTERON_GRID).restrict_to(12)
        for name in SERVING_WORKLOADS
    }

    def run_pass() -> tuple[float, dict]:
        service = PredictionService(config, share_max_target=False)
        reset_cache_stats()
        start = time.perf_counter()
        with caches_enabled(True):
            service.predict_batch(
                [
                    PredictionRequest(measured[name], target)
                    for name in SERVING_WORKLOADS
                    for target in SERVING_TARGETS
                ]
            )
        return time.perf_counter() - start, service.cache_stats()

    def pipeline():
        attach_disk_tier(cache_dir, max_bytes=config.cache_max_bytes)
        clear_caches()  # cold start: nothing in memory, nothing on disk yet
        try:
            cold_wall, cold_stats = run_pass()
            clear_caches()  # simulated process restart: memory gone, disk kept
            warm_wall, warm_stats = run_pass()
        finally:
            detach_disk_tier()
        return cold_wall, cold_stats, warm_wall, warm_stats

    cold_wall, cold_stats, warm_wall, warm_stats = run_once(benchmark, pipeline)

    # Tier-2 totals across every region (fit, extrapolation, and the
    # service's disk-backed prediction region: a warm restart serves whole
    # predictions from disk, so the fit regions may see no lookups at all).
    disk_hits = sum(counts["disk_hits"] for counts in warm_stats.values())
    disk_misses = sum(counts["disk_misses"] for counts in warm_stats.values())
    print()
    print(f"# Warm disk-cache restart: {len(SERVING_WORKLOADS)} workloads "
          f"x {len(SERVING_TARGETS)} targets, cache dir bytes persisted")
    print(f"cold pass (fits computed) : {cold_wall:.2f} s "
          f"({cold_stats['fit']['disk_misses']} fit computations)")
    print(f"warm pass (disk tier only): {warm_wall:.2f} s "
          f"(speedup {cold_wall / max(warm_wall, 1e-9):.1f}x)")
    for region in ("prediction", "fit", "extrapolation"):
        counts = warm_stats[region]
        lookups = counts["disk_hits"] + counts["disk_misses"]
        if lookups:
            print(f"  warm {region:>13s}: {counts['disk_hits']}/{lookups} disk hits")
    print(f"tier-2 hit rate on repeat : {disk_hits}/{disk_hits + disk_misses} "
          f"({100.0 * disk_hits / max(disk_hits + disk_misses, 1):.0f}%)")
    # The acceptance criterion: a warm run re-fits zero kernels — every
    # lookup that reaches tier 2 is served from disk, none recomputes.
    assert cold_stats["fit"]["disk_misses"] > 0  # the cold pass did real work
    assert disk_misses == 0, "warm pass recomputed work despite the disk tier"
    assert disk_hits > 0
    assert np.isfinite(warm_wall)
