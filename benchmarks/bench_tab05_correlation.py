"""Table 5: correlation of stalled cycles per core with execution time.

Every workload is executed on the full Opteron, Xeon20 and Xeon48 machines and
the Pearson correlation of stalled cycles per core with execution time is
reported.  The paper's averages are 0.93-0.97 with a minimum of 0.62.
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, XEON20_GRID, XEON48_GRID, campaign_workloads, run_once
from repro.analysis import CorrelationStudy

MACHINE_GRIDS = {
    "opteron48": OPTERON_GRID,
    "xeon20": XEON20_GRID,
    "xeon48": XEON48_GRID,
}


def bench_tab05_stalls_time_correlation(benchmark, sweep_cache):
    names = campaign_workloads()

    def pipeline():
        studies = {}
        for machine_name, grid in MACHINE_GRIDS.items():
            sweeps = [sweep_cache(machine_name, name, grid) for name in names]
            studies[machine_name] = CorrelationStudy.from_measurements(sweeps)
        return studies

    studies = run_once(benchmark, pipeline)
    print()
    print("# Table 5: correlation of stalled cycles per core with execution time")
    header = f"{'Benchmark':<18s} " + "  ".join(f"{m:>10s}" for m in MACHINE_GRIDS)
    print(header)
    for i, name in enumerate(names):
        cells = "  ".join(
            f"{studies[m].rows[i].correlation:>10.2f}" for m in MACHINE_GRIDS
        )
        print(f"{name:<18s} {cells}")
    print("-" * len(header))
    for stat, fn in (("Average", np.mean), ("Std. Dev.", np.std), ("Min.", np.min)):
        cells = "  ".join(
            f"{fn(studies[m].correlations()):>10.2f}" for m in MACHINE_GRIDS
        )
        print(f"{stat:<18s} {cells}")
    print("\npaper: averages 0.93 / 0.97 / 0.94, minimum 0.62")
    for study in studies.values():
        assert study.average() > 0.7
