"""Figure 9: weak scaling — predict for twice the cores AND twice the dataset.

genome and intruder measured on one Xeon20 socket (10 cores, default dataset),
predicted for the full machine running a 2x dataset, validated against
simulated runs of the bigger dataset.  Paper: maximum errors of 29% (genome)
and 28% (intruder), excluding the single-core point.
"""

from __future__ import annotations

from conftest import XEON20_GRID, run_once
from repro import EstimaConfig, EstimaPredictor, MachineSimulator
from repro.analysis import figure_series
from repro.machine import get_machine
from repro.workloads import get_workload

WORKLOADS = ("genome", "intruder")


def bench_fig09_weak_scaling(benchmark):
    machine = get_machine("xeon20")
    simulator = MachineSimulator(machine)

    def pipeline():
        results = {}
        for name in WORKLOADS:
            workload = get_workload(name)
            measured = simulator.sweep(
                workload, core_counts=[c for c in XEON20_GRID if c <= 10]
            )
            truth_2x = simulator.sweep(workload, core_counts=XEON20_GRID, dataset_scale=2.0)
            config = EstimaConfig.for_weak_scaling(dataset_ratio=2.0)
            prediction = EstimaPredictor(config).predict(measured, target_cores=20)
            results[name] = (prediction, truth_2x)
        return results

    results = run_once(benchmark, pipeline)
    print()
    for name, (prediction, truth) in results.items():
        cores = [int(c) for c in truth.cores if c >= 2]
        errors = prediction.evaluate(truth, core_counts=cores)
        print(
            figure_series(
                f"Figure 9: {name}, 10 cores/1x data -> 20 cores/2x data — "
                f"max error {errors.max_error_pct:.1f}% (paper: ~28-29%)",
                cores,
                {
                    "measured_2x": [truth.time_at(c) for c in cores],
                    "predicted": [prediction.predicted_time_at(c) for c in cores],
                },
            )
        )
        print()
        assert errors.max_error_pct < 80.0
