"""Figure 11: fixing the bottlenecks ESTIMA identified.

streamcluster: replace the PARSEC pthread-mutex/trylock barriers with
test-and-set spinlocks (paper: up to 74% faster).
intruder: decode more packets per transaction (paper: up to 70% faster).
"""

from __future__ import annotations

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series, optimization_improvement

PAIRS = (
    ("streamcluster", "streamcluster_spinlock", 74.0),
    ("intruder", "intruder_batch4", 70.0),
)


def bench_fig11_optimizations(benchmark, sweep_cache):
    def pipeline():
        results = {}
        for original_name, optimized_name, _paper in PAIRS:
            original = sweep_cache("opteron48", original_name, OPTERON_GRID)
            optimized = sweep_cache("opteron48", optimized_name, OPTERON_GRID)
            results[original_name] = (original, optimized)
        return results

    results = run_once(benchmark, pipeline)
    print()
    for original_name, optimized_name, paper_value in PAIRS:
        original, optimized = results[original_name]
        cores = list(original.cores)
        improvements = optimization_improvement(original, optimized)
        print(
            figure_series(
                f"Figure 11: {original_name} original vs optimized ({optimized_name})",
                cores,
                {
                    "original": original.times,
                    "optimized": optimized.times,
                },
            )
        )
        best = max(improvements.values())
        print(
            f"best improvement {best:.0f}% at high core counts "
            f"(paper reports up to {paper_value:.0f}%)\n"
        )
        assert best > 20.0
