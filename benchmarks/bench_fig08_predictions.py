"""Figure 8: ESTIMA predictions for raytrace, intruder, yada and kmeans on the
Opteron (measurements on one processor, predictions for the full machine).
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series

WORKLOADS = ("raytrace", "intruder", "yada", "kmeans")


def bench_fig08_predictions(benchmark, sweep_cache, prediction_cache):
    def pipeline():
        return {
            name: prediction_cache("opteron48", name, measurement_cores=12, target_cores=48)
            for name in WORKLOADS
        }

    predictions = run_once(benchmark, pipeline)
    print()
    for label, name in zip("abcd", WORKLOADS):
        sweep = sweep_cache("opteron48", name, OPTERON_GRID)
        prediction = predictions[name]
        cores = list(sweep.cores)
        error = prediction.evaluate(sweep)
        print(
            figure_series(
                f"Figure 8({label}): {name} — max error {error.max_error_pct:.1f}%",
                cores,
                {
                    "measured": sweep.times,
                    "predicted": [prediction.predicted_time_at(c) for c in cores],
                },
            )
        )
        actual_peak = int(sweep.cores[int(np.argmin(sweep.times))])
        print(f"predicted peak {prediction.predicted_peak_cores()}, actual peak {actual_peak}\n")

    # raytrace keeps scaling; intruder and kmeans do not — and ESTIMA says so.
    assert predictions["raytrace"].predicted_peak_cores() >= 40
    assert predictions["intruder"].predicted_peak_cores() < 40
    assert predictions["kmeans"].predicted_peak_cores() < 40
