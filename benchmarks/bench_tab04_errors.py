"""Table 4: maximum prediction errors with measurements on one processor.

Opteron: measure on 12 cores, predict for 2, 3 and 4 CPUs (24/36/48 cores).
Xeon20: measure on 10 cores (one socket), predict for the full machine.

By default a representative subset of the 19 workloads is used; set
``REPRO_FULL=1`` to run all of them as the paper does.
"""

from __future__ import annotations

from conftest import OPTERON_GRID, XEON20_GRID, campaign_workloads, run_once
from repro.core import EstimaConfig
from repro.machine import get_machine
from repro.runner import ErrorCampaign


def bench_tab04_opteron_errors(benchmark):
    names = campaign_workloads()

    def pipeline():
        campaign = ErrorCampaign(
            machine=get_machine("opteron48"),
            measurement_cores=12,
            targets={"2 CPUs": 24, "3 CPUs": 36, "4 CPUs": 48},
            config=EstimaConfig(),
            core_counts=OPTERON_GRID + [36],
        )
        return campaign.run(names)

    result = run_once(benchmark, pipeline)
    print()
    print("# Table 4 (Opteron): maximum prediction errors (%), measurements on 12 cores")
    print(result.format_table())
    print(
        f"\nworkloads below 25% error at 4 CPUs: {result.workloads_below('4 CPUs', 25.0)}"
        f" of {len(result.rows)} (paper: 16 of 19)"
    )
    print(f"all scaling behaviours predicted correctly: {result.all_behaviours_correct()}")
    assert result.all_behaviours_correct()


def bench_tab04_xeon20_errors(benchmark):
    names = campaign_workloads()

    def pipeline():
        campaign = ErrorCampaign(
            machine=get_machine("xeon20"),
            measurement_cores=10,
            targets={"2 CPUs": 20},
            config=EstimaConfig(),
            core_counts=XEON20_GRID,
        )
        return campaign.run(names)

    result = run_once(benchmark, pipeline)
    print()
    print("# Table 4 (Xeon20): maximum prediction errors (%), measurements on 10 cores")
    print(result.format_table())
    print(
        f"\nworkloads below 25% error: {result.workloads_below('2 CPUs', 25.0)} of "
        f"{len(result.rows)} (paper: 15 of 19)"
    )
