"""Figure 10: predictions for streamcluster and intruder with software stalls.

Both applications are extrapolated from one Opteron processor to the full
machine with hardware AND software stalls collected (the pthread wrapper for
streamcluster, SwissTM abort statistics for intruder); both exhibit slowdown
at high core counts, which the predictions capture.  The dominant extrapolated
categories are the starting point of the Section 4.6 bottleneck hunt.
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro.analysis import BottleneckReport, figure_series

WORKLOADS = ("streamcluster", "intruder")


def bench_fig10_bottleneck_predictions(benchmark, sweep_cache, prediction_cache):
    def pipeline():
        return {
            name: prediction_cache("opteron48", name, measurement_cores=12, target_cores=48)
            for name in WORKLOADS
        }

    predictions = run_once(benchmark, pipeline)
    print()
    for name in WORKLOADS:
        sweep = sweep_cache("opteron48", name, OPTERON_GRID)
        prediction = predictions[name]
        cores = list(sweep.cores)
        print(
            figure_series(
                f"Figure 10: {name} prediction with software stalls",
                cores,
                {
                    "measured": sweep.times,
                    "predicted": [prediction.predicted_time_at(c) for c in cores],
                },
            )
        )
        report = BottleneckReport.from_prediction(prediction)
        print(report.format_report(top=3))
        print()

    # The reported bottlenecks match the paper's findings.
    streamcluster_top = [g.category for g in
                         BottleneckReport.from_prediction(predictions["streamcluster"]).dominant(4)]
    intruder_top = [g.category for g in
                    BottleneckReport.from_prediction(predictions["intruder"]).dominant(4)]
    assert any("barrier" in c or "lock" in c for c in streamcluster_top)
    assert "stm_aborted_tx_cycles" in intruder_top
