"""Tables 2 and 3: the backend stall counters collected on AMD and Intel.

This bench verifies that a simulated run on each vendor's machine populates
exactly the events the paper lists, and reports their relative contribution
(the reason ESTIMA keeps all of them: the dominant category varies per
application, Section 5.2).
"""

from __future__ import annotations

from conftest import run_once
from repro import MachineSimulator
from repro.machine import get_machine
from repro.workloads import get_workload


def bench_tab02_tab03_counter_catalogues(benchmark):
    def pipeline():
        results = {}
        for machine_name in ("opteron48", "xeon20"):
            machine = get_machine(machine_name)
            sim = MachineSimulator(machine)
            run = sim.run(get_workload("vacation_high"), threads=machine.threads_per_socket)
            results[machine_name] = (machine, run)
        return results

    results = run_once(benchmark, pipeline)
    print()
    for machine_name, (machine, run) in results.items():
        table = "Table 2 (AMD family 10h)" if machine.vendor == "amd" else "Table 3 (Intel)"
        total = sum(run.hardware_stalls.values())
        print(f"# {table} — backend stall events on {machine_name}, vacation-high, one socket")
        print(f"{'code':<8s} {'event':<45s} {'share of stalls':>16s}")
        for event in machine.counters.backend:
            share = run.hardware_stalls.get(event.name, 0.0) / total * 100.0
            print(f"{event.code:<8s} {event.description:<45s} {share:>15.1f}%")
        print()
        assert set(run.hardware_stalls) == set(machine.counters.backend_names())
