"""Figure 16: capturing NUMA effects in the measurements improves predictions.

On the two-socket Xeon20, single-socket (10-core) measurements contain no
remote-access effects; including cores of the second socket (here 14 cores)
captures them and improves the prediction for the full machine.
"""

from __future__ import annotations

from conftest import XEON20_GRID, run_once
from repro.analysis import figure_series

WORKLOADS = ("canneal", "lock_based_sl")


def bench_fig16_numa_aware_measurements(benchmark, sweep_cache, prediction_cache):
    def pipeline():
        results = {}
        for name in WORKLOADS:
            results[name] = {
                window: prediction_cache(
                    "xeon20", name, measurement_cores=window, target_cores=20,
                    grid=XEON20_GRID,
                )
                for window in (10, 14)
            }
        return results

    results = run_once(benchmark, pipeline)
    print()
    for name in WORKLOADS:
        sweep = sweep_cache("xeon20", name, XEON20_GRID)
        eval_cores = [c for c in XEON20_GRID if c > 14]
        rows = {}
        for window, prediction in results[name].items():
            error = prediction.evaluate(sweep, core_counts=eval_cores)
            rows[f"measured on {window} cores"] = [
                prediction.predicted_time_at(c) for c in eval_cores
            ]
            print(
                f"{name}: window {window} cores -> max error beyond 14 cores "
                f"{error.max_error_pct:.1f}%"
            )
        print(
            figure_series(
                f"Figure 16: {name} on Xeon20 — single-socket vs NUMA-aware measurements",
                eval_cores,
                {"measured": [sweep.time_at(c) for c in eval_cores], **rows},
            )
        )
        print()
