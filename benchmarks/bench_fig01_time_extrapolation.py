"""Figure 1: direct time extrapolation mispredicts kmeans.

The baseline fits the Table-1 kernels to the execution times measured on one
Opteron socket (12 cores) and extrapolates; because kmeans' collapse is not
visible in those times, the baseline predicts continued scaling while the
measured times degrade.
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro import TimeExtrapolation
from repro.analysis import figure_series


def bench_fig01_kmeans_time_extrapolation(benchmark, sweep_cache):
    sweep = sweep_cache("opteron48", "kmeans", OPTERON_GRID)

    def pipeline():
        baseline = TimeExtrapolation().predict(sweep.restrict_to(12), target_cores=48)
        return baseline

    baseline = run_once(benchmark, pipeline)
    cores = [c for c in OPTERON_GRID if c > 12]
    print()
    print(
        figure_series(
            "Figure 1: time extrapolation for kmeans (Opteron, measured on 12 cores)",
            cores,
            {
                "measured": [sweep.time_at(c) for c in cores],
                "time_extrapolation": [baseline.predicted_time_at(c) for c in cores],
            },
        )
    )
    actual_peak = int(sweep.cores[int(np.argmin(sweep.times))])
    print(f"\nactual best core count   : {actual_peak}")
    print(f"baseline predicted peak  : {baseline.predicted_peak_cores()}")
    print("paper: the time extrapolation predicts kmeans keeps scaling to 48 cores; it does not.")
    # The reproduced failure mode: the baseline misses the collapse.
    assert baseline.predicted_peak_cores() > actual_peak
