"""Figure 2: stalled cycles per core and execution time are strongly correlated.

The paper shows intruder and blackscholes on the full Opteron with a
correlation of 1.00 between the two series.
"""

from __future__ import annotations

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series, stalls_time_correlation


def bench_fig02_stalls_time_correlation(benchmark, sweep_cache):
    def pipeline():
        return {
            name: sweep_cache("opteron48", name, OPTERON_GRID)
            for name in ("intruder", "blackscholes")
        }

    sweeps = run_once(benchmark, pipeline)
    print()
    for name, sweep in sweeps.items():
        corr = stalls_time_correlation(sweep)
        print(
            figure_series(
                f"Figure 2: {name} — stalled cycles/core vs execution time "
                f"(correlation {corr:.2f}, paper reports 1.00)",
                list(sweep.cores),
                {
                    "time_s": sweep.times,
                    "stalls_per_core": sweep.stalls_per_core(),
                },
            )
        )
        print()
        assert corr > 0.8
