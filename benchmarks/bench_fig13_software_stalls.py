"""Figure 13: prediction errors with and without software stalled cycles.

For the STM applications (SwissTM abort statistics) plus streamcluster (the
pthread wrapper), predictions from one Opteron socket to the full machine are
run twice — hardware stalls only vs hardware + software stalls.  The paper
reports an average accuracy improvement of 57% (up to 87% for genome).
"""

from __future__ import annotations

import os

from conftest import OPTERON_GRID, run_once
from repro.analysis import comparison_table

SUBSET = ("genome", "intruder", "kmeans", "yada", "streamcluster")


def _workloads():
    if os.environ.get("REPRO_FULL"):
        from repro.workloads import SOFTWARE_STALL_WORKLOADS

        return SOFTWARE_STALL_WORKLOADS
    return SUBSET


def bench_fig13_software_stall_accuracy(benchmark, sweep_cache, prediction_cache):
    names = _workloads()

    def pipeline():
        rows = {}
        for name in names:
            sweep = sweep_cache("opteron48", name, OPTERON_GRID)
            with_sw = prediction_cache(
                "opteron48", name, measurement_cores=12, target_cores=48,
                use_software_stalls=True,
            )
            hw_only = prediction_cache(
                "opteron48", name, measurement_cores=12, target_cores=48,
                use_software_stalls=False,
            )
            rows[name] = {
                "hw only": hw_only.evaluate(sweep).mean_error_pct,
                "hw + software": with_sw.evaluate(sweep).mean_error_pct,
            }
        return rows

    rows = run_once(benchmark, pipeline)
    print()
    print(
        comparison_table(
            "Figure 13: mean prediction error (%), Opteron 12 -> 48 cores", rows
        )
    )
    improved = sum(1 for cells in rows.values() if cells["hw + software"] <= cells["hw only"] + 1.0)
    print(
        f"\nsoftware stalls help (or do not hurt) {improved} of {len(rows)} workloads "
        "(paper: average improvement 57%, up to 87%)"
    )
    assert improved >= len(rows) // 2
