"""Figure 7: ESTIMA vs direct time extrapolation on the workloads with the
largest accuracy gaps (intruder, yada, kmeans, plus a well-behaved control).
"""

from __future__ import annotations

from conftest import OPTERON_GRID, run_once
from repro import TimeExtrapolation
from repro.analysis import comparison_table

WORKLOADS = ("intruder", "yada", "kmeans", "raytrace")


def bench_fig07_estima_vs_time_extrapolation(benchmark, sweep_cache, prediction_cache):
    def pipeline():
        rows = {}
        for name in WORKLOADS:
            sweep = sweep_cache("opteron48", name, OPTERON_GRID)
            estima = prediction_cache(
                "opteron48", name, measurement_cores=12, target_cores=48
            )
            baseline = TimeExtrapolation().predict(sweep.restrict_to(12), target_cores=48)
            rows[name] = {
                "ESTIMA": estima.evaluate(sweep).max_error_pct,
                "time extrap.": baseline.evaluate(sweep).max_error_pct,
            }
        return rows

    rows = run_once(benchmark, pipeline)
    print()
    print(
        comparison_table(
            "Figure 7: maximum prediction error (%), Opteron 12 -> 48 cores", rows
        )
    )
    print(
        "\npaper: time extrapolation errors are up to 81% (intruder) and 130% (yada) "
        "higher than ESTIMA's."
    )
    # The headline claim: ESTIMA is better where scalability collapses.
    for name in ("intruder", "kmeans"):
        assert rows[name]["ESTIMA"] <= rows[name]["time extrap."]
