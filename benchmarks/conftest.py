"""Shared fixtures and helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4 for the index).  The benches print the
paper-style rows/series to stdout — run them with
``pytest benchmarks/ --benchmark-only -s`` to see the output — and use
pytest-benchmark to time the end-to-end pipeline that produces them.

Two knobs keep the suite's runtime manageable:

* sweeps use a representative core-count grid rather than every core count;
* campaign-style benches (Tables 4, 5, 6, 7, Figure 13) default to a
  representative subset of workloads.  Set ``REPRO_FULL=1`` to run all 19
  workloads exactly as the paper does.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import EstimaConfig, EstimaPredictor, MachineSimulator, TimeExtrapolation  # noqa: E402
from repro.engine.service import PredictionRequest, PredictionService  # noqa: E402
from repro.machine import get_machine  # noqa: E402
from repro.workloads import TABLE4_WORKLOADS, get_workload  # noqa: E402

#: Core-count grid used for Opteron sweeps (dense in the measurement window).
OPTERON_GRID = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48]
XEON20_GRID = [1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20]
XEON48_GRID = [1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48]

#: Representative subset used when REPRO_FULL is not set.
SUBSET_WORKLOADS = (
    "lock_free_ht",
    "genome",
    "intruder",
    "kmeans",
    "yada",
    "blackscholes",
    "raytrace",
    "streamcluster",
)


def campaign_workloads() -> tuple[str, ...]:
    """The workload list campaign benches iterate over."""
    if os.environ.get("REPRO_FULL"):
        return TABLE4_WORKLOADS
    return SUBSET_WORKLOADS


@pytest.fixture(scope="session")
def opteron():
    return get_machine("opteron48")


@pytest.fixture(scope="session")
def xeon20():
    return get_machine("xeon20")


@pytest.fixture(scope="session")
def xeon48():
    return get_machine("xeon48")


@pytest.fixture(scope="session")
def haswell():
    return get_machine("haswell_desktop")


@pytest.fixture(scope="session")
def sweep_cache():
    """Session cache of (machine, workload, grid) -> MeasurementSet sweeps."""
    cache: dict = {}

    def get(machine_name: str, workload_name: str, grid=None):
        grid_key = tuple(grid) if grid is not None else None
        key = (machine_name, workload_name, grid_key)
        if key not in cache:
            simulator = MachineSimulator(get_machine(machine_name))
            cache[key] = simulator.sweep(
                get_workload(workload_name), core_counts=list(grid) if grid else None
            )
        return cache[key]

    return get


@pytest.fixture(scope="session")
def prediction_service():
    """Session-wide engine service deduplicating identical prediction requests.

    ``share_max_target=False`` keeps per-target kernel selection identical to a
    standalone ``EstimaPredictor`` run at that exact target, so bench numbers
    match the paper pipeline; the content-addressed cache still collapses the
    many benches that ask for the same (measurements, config, target) triple.
    """
    return PredictionService(share_max_target=False)


@pytest.fixture(scope="session")
def prediction_cache(sweep_cache, prediction_service):
    """Session cache of ESTIMA predictions, served by the engine service."""

    def get(
        machine_name: str,
        workload_name: str,
        *,
        measurement_cores: int,
        target_cores: int,
        grid=None,
        use_software_stalls: bool = True,
    ):
        sweep = sweep_cache(machine_name, workload_name, grid or OPTERON_GRID)
        config = EstimaConfig(use_software_stalls=use_software_stalls)
        [prediction] = prediction_service.predict_batch(
            [
                PredictionRequest(
                    sweep.restrict_to(measurement_cores),
                    target_cores,
                    config=config,
                )
            ]
        )
        return prediction

    return get


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark (pipelines are seconds-long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
