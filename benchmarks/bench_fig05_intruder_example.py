"""Figure 5: the step-by-step intruder prediction example (Section 3.2).

Measurements on one Opteron processor (12 cores), extrapolation to the full
48-core machine: per-category extrapolations (5a-f), stalled cycles per core
(5g), the scaling factor (5h) and the predicted vs measured execution time
(5i).
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, run_once
from repro.analysis import figure_series


def bench_fig05_intruder_step_by_step(benchmark, sweep_cache, prediction_cache):
    sweep = sweep_cache("opteron48", "intruder", OPTERON_GRID)

    def pipeline():
        return prediction_cache(
            "opteron48", "intruder", measurement_cores=12, target_cores=48
        )

    prediction = run_once(benchmark, pipeline)
    cores = list(sweep.cores)
    print()
    # 5(a)-(f): one extrapolation per stall category.
    for label, (name, result) in zip(
        "abcdef", sorted(prediction.category_extrapolations.items())
    ):
        print(
            figure_series(
                f"Figure 5({label}): {name} (chosen kernel {result.kernel_name})",
                cores,
                {
                    "measured": sweep.category_series(name),
                    "extrapolated": result.predict(np.asarray(cores, dtype=float)),
                },
                unit="cycles",
            )
        )
        print()

    # 5(g): total stalled cycles per core.
    print(
        figure_series(
            "Figure 5(g): stalled cycles per core",
            cores,
            {
                "measured": sweep.stalls_per_core(),
                "extrapolated": [prediction.stalls_per_core_at(c) for c in cores],
            },
            unit="cycles/core",
        )
    )
    print()
    # 5(h): the scaling factor.
    factor = prediction.scaling_factor
    print(
        figure_series(
            f"Figure 5(h): scaling factor (kernel {factor.kernel_name}, "
            f"correlation {factor.correlation:.2f})",
            cores,
            {"factor": factor.factor(np.asarray(cores, dtype=float))},
            unit="s per stalled cycle/core",
        )
    )
    print()
    # 5(i): predicted vs measured execution time.
    print(
        figure_series(
            "Figure 5(i): intruder execution time",
            cores,
            {
                "measured": sweep.times,
                "predicted": [prediction.predicted_time_at(c) for c in cores],
            },
        )
    )
    error = prediction.evaluate(sweep)
    actual_peak = int(sweep.cores[int(np.argmin(sweep.times))])
    print(f"\npredicted peak {prediction.predicted_peak_cores()} cores, actual peak {actual_peak}")
    print(f"max error {error.max_error_pct:.1f}% (paper Table 4: 9.2-31.9% on Opteron)")
    assert 12 < prediction.predicted_peak_cores() < 48
