"""Table 6: does adding frontend stalls improve the correlation?  (No.)

For every workload the correlation of (frontend+backend) stalls per core with
execution time is compared against backend-only; the paper reports average
improvements of +0.87% / -1.38% / -0.08% — essentially zero — which justifies
ESTIMA's decision to ignore frontend stalls.
"""

from __future__ import annotations

import numpy as np

from conftest import OPTERON_GRID, XEON20_GRID, campaign_workloads, run_once
from repro.analysis import frontend_correlation_delta

MACHINE_GRIDS = {"opteron48": OPTERON_GRID, "xeon20": XEON20_GRID}


def bench_tab06_frontend_stalls(benchmark, sweep_cache):
    names = campaign_workloads()

    def pipeline():
        deltas = {}
        for machine_name, grid in MACHINE_GRIDS.items():
            deltas[machine_name] = {
                name: frontend_correlation_delta(sweep_cache(machine_name, name, grid))
                for name in names
            }
        return deltas

    deltas = run_once(benchmark, pipeline)
    print()
    print("# Table 6: frontend+backend correlation improvement over backend-only (%)")
    header = f"{'Benchmark':<18s} " + "  ".join(f"{m:>10s}" for m in MACHINE_GRIDS)
    print(header)
    for name in names:
        cells = "  ".join(f"{deltas[m][name]:>10.2f}" for m in MACHINE_GRIDS)
        print(f"{name:<18s} {cells}")
    print("-" * len(header))
    averages = {m: float(np.mean(list(d.values()))) for m, d in deltas.items()}
    cells = "  ".join(f"{averages[m]:>10.2f}" for m in MACHINE_GRIDS)
    print(f"{'Average':<18s} {cells}")
    print("\npaper: averages +0.87% (Opteron) and -1.38% (Xeon20) — frontend stalls add nothing")
    for avg in averages.values():
        assert abs(avg) < 10.0
