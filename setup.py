"""Setuptools shim.

The pinned toolchain on the evaluation machines has no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable; this shim
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
