"""Doc-sync and link-integrity tests for the ``docs/`` subsystem.

The serving stack's documentation is load-bearing (the protocol and
configuration references are the operator contract), so it is tested like
code:

* every NDJSON op the server dispatches, every HTTP route and status code
  the gateway *and the cluster router* emit, every ``ESTIMA_*`` environment
  variable referenced in ``src/`` and every ``EstimaConfig`` field must
  appear in its reference document — adding one without documenting it
  fails CI;
* every internal markdown link in README and ``docs/*.md`` must resolve to
  an existing file (and same-file anchors to an existing heading).
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


def _read(path: Path) -> str:
    assert path.is_file(), f"missing documentation file: {path}"
    return path.read_text()


class TestServeProtocolDocSync:
    """`docs/serve-protocol.md` covers every op, route and status code."""

    @pytest.fixture(scope="class")
    def doc(self) -> str:
        return _read(DOCS / "serve-protocol.md")

    def test_every_ndjson_op_documented(self, doc):
        from repro.engine.server import SUPPORTED_OPS

        assert SUPPORTED_OPS  # the contract below must not vacuously pass
        for op in SUPPORTED_OPS:
            assert f"`{op}`" in doc, f"NDJSON op {op!r} is not documented"

    def test_every_http_route_documented(self, doc):
        from repro.engine.gateway import ROUTES

        assert ROUTES
        for method, path in ROUTES:
            assert f"`{method} {path}`" in doc, f"route {method} {path} is not documented"

    def test_every_status_code_documented(self, doc):
        from repro.engine.gateway import STATUS_REASONS

        assert STATUS_REASONS
        for status in STATUS_REASONS:
            assert re.search(rf"\b{status}\b", doc), f"status {status} is not documented"

    def test_ops_match_server_dispatch(self):
        """SUPPORTED_OPS is what handle_stream actually dispatches on."""
        import inspect

        from repro.engine import server

        source = inspect.getsource(server.PredictionServer.handle_stream)
        assert "SUPPORTED_OPS" in source
        for op in server.SUPPORTED_OPS:
            assert re.search(rf'"{op}"', source), (
                f"op {op!r} is in SUPPORTED_OPS but handle_stream never names it"
            )


class TestClusterDocSync:
    """The cluster layer is documented like the single-host stack."""

    @pytest.fixture(scope="class")
    def protocol_doc(self) -> str:
        return _read(DOCS / "serve-protocol.md")

    @pytest.fixture(scope="class")
    def architecture_doc(self) -> str:
        return _read(DOCS / "architecture.md")

    def test_router_routes_are_the_gateways(self):
        """The router's surface is the gateway's, verbatim — a client must
        not be able to tell a router from a single host."""
        from repro.engine.cluster.router import ROUTES as ROUTER_ROUTES
        from repro.engine.gateway import ROUTES as GATEWAY_ROUTES

        assert set(ROUTER_ROUTES) == set(GATEWAY_ROUTES)

    def test_every_router_route_documented(self, protocol_doc):
        from repro.engine.cluster.router import ROUTES

        assert ROUTES
        for method, path in ROUTES:
            assert f"`{method} {path}`" in protocol_doc, (
                f"router route {method} {path} is not documented"
            )

    def test_every_router_status_documented(self, protocol_doc):
        from repro.engine.cluster.router import ROUTER_STATUS_REASONS
        from repro.engine.gateway import STATUS_REASONS

        assert set(STATUS_REASONS) < set(ROUTER_STATUS_REASONS)  # 503 added
        for status in ROUTER_STATUS_REASONS:
            assert re.search(rf"\b{status}\b", protocol_doc), (
                f"router status {status} is not documented"
            )

    def test_cluster_components_in_architecture(self, architecture_doc):
        for component in (
            "HashRing",
            "RemoteExecutor",
            "Router",
            "estima route",
            "estima cache export",
            "cluster/ring.py",
            "repro.engine.cluster.ring",
            "repro.engine.cluster.remote",
            "repro.engine.cluster.router",
            "repro.engine.cluster.archive",
        ):
            assert component in architecture_doc, (
                f"{component!r} is not described in architecture.md"
            )

    def test_cluster_cli_in_protocol_doc(self, protocol_doc):
        assert "estima route" in protocol_doc
        assert "failover" in protocol_doc.lower()


class TestConfigurationDocSync:
    """`docs/configuration.md` covers every field and every env var."""

    @pytest.fixture(scope="class")
    def doc(self) -> str:
        return _read(DOCS / "configuration.md")

    def test_every_config_field_documented(self, doc):
        from repro.core.config import EstimaConfig

        for field in dataclasses.fields(EstimaConfig):
            assert f"`{field.name}`" in doc, (
                f"EstimaConfig.{field.name} is not documented in configuration.md"
            )

    def test_every_env_var_documented(self, doc):
        env_vars: set[str] = set()
        for source_file in (REPO / "src").rglob("*.py"):
            env_vars.update(re.findall(r"\bESTIMA_[A-Z][A-Z_]*", source_file.read_text()))
        assert env_vars, "expected ESTIMA_* environment variables in src/"
        for name in sorted(env_vars):
            assert f"`{name}`" in doc, f"{name} is not documented in configuration.md"


class TestInternalLinks:
    """Internal markdown links in README and docs/ resolve."""

    _LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

    def _markdown_files(self) -> list[Path]:
        files = [REPO / "README.md"] + sorted(DOCS.glob("*.md"))
        assert len(files) >= 4  # README + the three reference docs
        return files

    @staticmethod
    def _anchors(text: str) -> set[str]:
        """GitHub-style slugs of every heading in a markdown document."""
        anchors = set()
        for line in text.splitlines():
            if line.startswith("#"):
                title = line.lstrip("#").strip().lower()
                slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
                anchors.add(slug)
        return anchors

    def test_readme_links_to_docs(self):
        readme = _read(REPO / "README.md")
        for name in ("architecture.md", "serve-protocol.md", "configuration.md"):
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    def test_links_resolve(self):
        for md in self._markdown_files():
            text = md.read_text()
            for target in self._LINK.findall(text):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    resolved = (md.parent / path_part).resolve()
                    assert resolved.exists(), (
                        f"{md.relative_to(REPO)} links to missing file {target!r}"
                    )
                elif anchor:
                    assert anchor in self._anchors(text), (
                        f"{md.relative_to(REPO)} links to missing anchor #{anchor}"
                    )
