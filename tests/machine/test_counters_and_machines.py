"""Tests for the counter catalogues (Tables 2 and 3) and machine presets."""

from __future__ import annotations

import pytest

from repro.machine.counters import (
    AMD_FAMILY_10H,
    FALLBACK_SOURCE,
    INTEL_HASWELL,
    StallSource,
    catalog_for_vendor,
)
from repro.machine.machines import MACHINES, get_machine


class TestAmdCatalogue:
    def test_paper_table2_event_codes(self):
        codes = {event.code for event in AMD_FAMILY_10H.backend}
        assert codes == {"0D2h", "0D5h", "0D6h", "0D7h", "0D8h"}

    def test_five_backend_events(self):
        assert len(AMD_FAMILY_10H.backend) == 5

    def test_lookup_by_code_case_insensitive(self):
        event = AMD_FAMILY_10H.event_by_code("0d5H")
        assert event.name == "dispatch_stall_reorder_buffer_full"

    def test_each_backend_event_has_distinct_source(self):
        sources = [event.source for event in AMD_FAMILY_10H.backend]
        assert len(sources) == len(set(sources))


class TestIntelCatalogue:
    def test_paper_table3_event_codes(self):
        codes = {event.code for event in INTEL_HASWELL.backend}
        assert codes == {"0487h", "01A2h", "04A2h", "08A2h", "10A2h"}

    def test_rob_full_maps_to_memory_latency(self):
        assert INTEL_HASWELL.event_by_code("10A2h").source is StallSource.MEMORY_LATENCY

    def test_frontend_events_marked(self):
        assert all(event.frontend for event in INTEL_HASWELL.frontend)
        assert all(not event.frontend for event in INTEL_HASWELL.backend)

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            INTEL_HASWELL.event_by_name("not_an_event")
        with pytest.raises(KeyError):
            INTEL_HASWELL.event_by_code("FFFFh")


class TestVendorLookup:
    def test_vendor_lookup(self):
        assert catalog_for_vendor("amd") is AMD_FAMILY_10H
        assert catalog_for_vendor("Intel") is INTEL_HASWELL

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            catalog_for_vendor("sparc")

    def test_fallbacks_resolve_to_available_sources(self):
        # Every fallback chain must terminate in a source each vendor provides.
        for catalog in (AMD_FAMILY_10H, INTEL_HASWELL):
            available = set(catalog.backend_by_source())
            for source in StallSource:
                if source in (StallSource.FRONTEND_ICACHE, StallSource.FRONTEND_DECODE):
                    continue
                visited = set()
                current = source
                while current not in available and current in FALLBACK_SOURCE:
                    assert current not in visited, "fallback cycle"
                    visited.add(current)
                    current = FALLBACK_SOURCE[current]
                assert current in available, (catalog.vendor, source)


class TestMachinePresets:
    def test_all_paper_machines_registered(self):
        assert set(MACHINES) == {"haswell_desktop", "opteron48", "xeon20", "xeon48"}

    def test_opteron_geometry(self):
        machine = get_machine("opteron48")
        assert machine.total_cores == 48
        assert machine.vendor == "amd"
        assert machine.frequency_ghz == pytest.approx(2.1)
        assert machine.topology.chips_per_socket == 2  # multi-chip module

    def test_xeon20_geometry(self):
        machine = get_machine("xeon20")
        assert machine.total_threads == 20
        assert machine.threads_per_socket == 10
        assert machine.vendor == "intel"

    def test_haswell_has_smt(self):
        machine = get_machine("haswell_desktop")
        assert machine.total_cores == 4
        assert machine.total_threads == 8

    def test_xeon48_is_four_sockets(self):
        machine = get_machine("xeon48")
        assert machine.topology.sockets == 4
        assert machine.total_threads == 48

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError):
            get_machine("power9")

    def test_counters_match_vendor(self):
        assert get_machine("opteron48").counters.vendor == "amd"
        assert get_machine("xeon20").counters.vendor == "intel"

    def test_describe_mentions_geometry(self):
        text = get_machine("opteron48").describe()
        assert "4 socket" in text and "6 cores" in text
