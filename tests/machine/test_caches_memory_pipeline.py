"""Tests for the cache, memory and pipeline component models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.caches import CacheHierarchy, CacheLevel
from repro.machine.counters import StallSource
from repro.machine.machines import opteron48
from repro.machine.memory import MemorySystem
from repro.machine.pipeline import InstructionMix, decompose_stalls


def _hierarchy() -> CacheHierarchy:
    return CacheHierarchy(
        levels=(
            CacheLevel(name="L1", size_kb=32.0, latency_cycles=4.0),
            CacheLevel(name="L2", size_kb=256.0, latency_cycles=12.0),
            CacheLevel(name="L3", size_kb=8192.0, latency_cycles=36.0, shared=True),
        )
    )


def _behaviour(hierarchy, **overrides):
    kwargs = dict(
        private_working_set_kb=10_000.0,
        shared_working_set_kb=200_000.0,
        threads_on_chip=4,
        shared_access_fraction=0.4,
        shared_write_fraction=0.2,
        total_threads=8,
        locality=0.97,
    )
    kwargs.update(overrides)
    return hierarchy.behaviour(**kwargs)


class TestCacheHierarchy:
    def test_fractions_form_a_distribution(self):
        behaviour = _behaviour(_hierarchy())
        total = sum(behaviour.hit_fractions.values()) + behaviour.memory_fraction
        assert total + behaviour.coherence_fraction == pytest.approx(1.0, abs=1e-9)

    def test_high_locality_means_low_miss_rate(self):
        behaviour = _behaviour(_hierarchy(), locality=0.99)
        assert behaviour.miss_rate() < 0.05

    def test_miss_rate_grows_when_llc_is_shared_by_more_threads(self):
        few = _behaviour(_hierarchy(), threads_on_chip=1)
        many = _behaviour(_hierarchy(), threads_on_chip=8)
        assert many.memory_fraction >= few.memory_fraction

    def test_coherence_needs_multiple_threads(self):
        single = _behaviour(_hierarchy(), total_threads=1)
        many = _behaviour(_hierarchy(), total_threads=16)
        assert single.coherence_fraction == 0.0
        assert many.coherence_fraction > 0.0

    def test_coherence_grows_with_shared_writes(self):
        read_only = _behaviour(_hierarchy(), shared_write_fraction=0.0)
        write_heavy = _behaviour(_hierarchy(), shared_write_fraction=0.5)
        assert write_heavy.coherence_fraction > read_only.coherence_fraction

    def test_tiny_working_set_fits_in_cache(self):
        behaviour = _behaviour(
            _hierarchy(), private_working_set_kb=8.0, shared_working_set_kb=4.0, locality=0.9
        )
        assert behaviour.memory_fraction == pytest.approx(0.0, abs=1e-6)

    def test_invalid_locality_rejected(self):
        with pytest.raises(ValueError):
            _behaviour(_hierarchy(), locality=1.5)

    def test_invalid_cache_level_rejected(self):
        with pytest.raises(ValueError):
            CacheLevel(name="L1", size_kb=0.0, latency_cycles=4.0)

    @given(
        locality=st.floats(min_value=0.5, max_value=1.0),
        shared=st.floats(min_value=0.0, max_value=1.0),
        writes=st.floats(min_value=0.0, max_value=1.0),
        threads=st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_behaviour_always_well_formed(self, locality, shared, writes, threads):
        behaviour = _behaviour(
            _hierarchy(),
            locality=locality,
            shared_access_fraction=shared,
            shared_write_fraction=writes,
            total_threads=threads,
        )
        assert 0.0 <= behaviour.memory_fraction <= 1.0
        assert 0.0 <= behaviour.coherence_fraction <= 1.0
        assert behaviour.miss_rate() <= 1.0 + 1e-9
        assert behaviour.avg_hit_latency_cycles >= 0.0


class TestMemorySystem:
    def _memory(self) -> MemorySystem:
        return MemorySystem(
            local_latency_ns=80.0, bandwidth_gbs_per_socket=20.0, numa_factor=2.0,
            intra_socket_factor=1.4,
        )

    def _placement(self, threads: int):
        return opteron48().topology.place(threads)

    def test_latency_cycles_conversion(self):
        assert self._memory().latency_cycles(2.0) == pytest.approx(160.0)

    def test_single_socket_has_no_remote_accesses(self):
        memory = self._memory()
        assert memory.remote_access_fraction(self._placement(6), 0.5) == 0.0

    def test_remote_fraction_grows_with_sockets(self):
        memory = self._memory()
        two = memory.remote_access_fraction(self._placement(24), 0.5)
        four = memory.remote_access_fraction(self._placement(48), 0.5)
        assert 0.0 < two < four

    def test_multi_chip_module_has_cross_chip_accesses_within_socket(self):
        memory = self._memory()
        assert memory.cross_chip_fraction(self._placement(12), 0.5) > 0.0

    def test_bandwidth_saturation_inflates_latency(self):
        memory = self._memory()
        light = memory.behaviour(
            placement=self._placement(12),
            frequency_ghz=2.1,
            misses_per_second_per_thread=1e6,
            shared_access_fraction=0.5,
        )
        heavy = memory.behaviour(
            placement=self._placement(12),
            frequency_ghz=2.1,
            misses_per_second_per_thread=5e8,
            shared_access_fraction=0.5,
        )
        assert heavy.queue_inflation > light.queue_inflation
        assert heavy.effective_latency_cycles > light.effective_latency_cycles

    def test_queue_inflation_is_capped(self):
        memory = self._memory()
        crazy = memory.behaviour(
            placement=self._placement(12),
            frequency_ghz=2.1,
            misses_per_second_per_thread=1e12,
            shared_access_fraction=0.5,
        )
        assert crazy.queue_inflation <= 4.0 + 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(local_latency_ns=0.0, bandwidth_gbs_per_socket=20.0, numa_factor=2.0)
        with pytest.raises(ValueError):
            MemorySystem(local_latency_ns=80.0, bandwidth_gbs_per_socket=20.0, numa_factor=0.5)


class TestPipeline:
    def _mix(self, **overrides) -> InstructionMix:
        kwargs = dict(
            instructions_per_op=2000.0,
            mem_refs_per_op=600.0,
            store_fraction=0.3,
            flop_fraction=0.1,
            branch_fraction=0.15,
            branch_miss_rate=0.05,
        )
        kwargs.update(overrides)
        return InstructionMix(**kwargs)

    def _decompose(self, mix=None, *, locality=0.97, misses_per_second=1e7):
        hierarchy = _hierarchy()
        cache = _behaviour(hierarchy, locality=locality)
        memory = MemorySystem(
            local_latency_ns=80.0, bandwidth_gbs_per_socket=20.0, numa_factor=2.0
        ).behaviour(
            placement=opteron48().topology.place(8),
            frequency_ghz=2.1,
            misses_per_second_per_thread=misses_per_second,
            shared_access_fraction=0.4,
        )
        return decompose_stalls(mix or self._mix(), cache, memory)

    def test_all_backend_sources_present(self):
        breakdown = self._decompose()
        assert set(breakdown.backend) == {
            StallSource.MEMORY_LATENCY,
            StallSource.STORE_PRESSURE,
            StallSource.DEPENDENCY,
            StallSource.FPU_PRESSURE,
            StallSource.BRANCH_RECOVERY,
            StallSource.ALLOCATION,
        }

    def test_all_stalls_non_negative(self):
        breakdown = self._decompose()
        assert all(v >= 0.0 for v in breakdown.backend.values())
        assert all(v >= 0.0 for v in breakdown.frontend.values())

    def test_memory_latency_dominates_for_poor_locality(self):
        poor = self._decompose(locality=0.85)
        good = self._decompose(locality=0.999)
        assert (
            poor.backend[StallSource.MEMORY_LATENCY] > good.backend[StallSource.MEMORY_LATENCY]
        )

    def test_fp_heavy_mix_increases_fpu_stalls(self):
        fp = self._decompose(self._mix(flop_fraction=0.5))
        scalar = self._decompose(self._mix(flop_fraction=0.0))
        assert fp.backend[StallSource.FPU_PRESSURE] > scalar.backend[StallSource.FPU_PRESSURE]
        assert scalar.backend[StallSource.FPU_PRESSURE] == 0.0

    def test_branchy_mix_increases_branch_recovery(self):
        branchy = self._decompose(self._mix(branch_miss_rate=0.2))
        clean = self._decompose(self._mix(branch_miss_rate=0.0))
        assert (
            branchy.backend[StallSource.BRANCH_RECOVERY] > clean.backend[StallSource.BRANCH_RECOVERY]
        )

    def test_useful_cycles_follow_ipc(self):
        mix = self._mix(base_ipc=2.0)
        assert mix.useful_cycles_per_op == pytest.approx(1000.0)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            self._mix(instructions_per_op=0.0)
        with pytest.raises(ValueError):
            self._mix(store_fraction=1.5)
        with pytest.raises(ValueError):
            self._mix(mlp=0.5)
