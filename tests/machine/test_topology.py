"""Tests for machine topology and thread placement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.topology import Topology


class TestTopology:
    def test_opteron_like_counts(self):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        assert topo.total_chips == 8
        assert topo.total_cores == 48
        assert topo.total_threads == 48
        assert topo.threads_per_socket == 12

    def test_smt_multiplies_threads(self):
        topo = Topology(sockets=1, chips_per_socket=1, cores_per_chip=4, smt=2)
        assert topo.total_cores == 4
        assert topo.total_threads == 8

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Topology(sockets=0, chips_per_socket=1, cores_per_chip=1)

    def test_core_order_is_socket_first(self):
        topo = Topology(sockets=2, chips_per_socket=1, cores_per_chip=2)
        order = list(topo.core_order())
        assert order[0][0] == 0 and order[1][0] == 0
        assert order[2][0] == 1

    def test_core_counts_start_at_one(self):
        topo = Topology(sockets=1, chips_per_socket=1, cores_per_chip=8)
        counts = topo.core_counts(step=2)
        assert counts[0] == 1
        assert counts[-1] == 8


class TestPlacement:
    def test_single_thread_single_socket(self):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        placement = topo.place(1)
        assert placement.sockets_used == 1
        assert placement.chips_used == 1
        assert not placement.crosses_socket

    def test_one_socket_worth_of_threads_stays_on_socket(self):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        placement = topo.place(12)
        assert placement.sockets_used == 1
        assert placement.chips_used == 2  # the Opteron MCM effect

    def test_thirteen_threads_spill_to_second_socket(self):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        placement = topo.place(13)
        assert placement.sockets_used == 2
        assert placement.crosses_socket

    def test_full_machine(self):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        placement = topo.place(48)
        assert placement.sockets_used == 4
        assert placement.chips_used == 8
        assert placement.max_threads_per_chip == 6

    def test_too_many_threads_rejected(self):
        topo = Topology(sockets=1, chips_per_socket=1, cores_per_chip=4)
        with pytest.raises(ValueError):
            topo.place(5)

    def test_zero_threads_rejected(self):
        topo = Topology(sockets=1, chips_per_socket=1, cores_per_chip=4)
        with pytest.raises(ValueError):
            topo.place(0)

    @given(threads=st.integers(min_value=1, max_value=48))
    @settings(max_examples=48, deadline=None)
    def test_placement_conserves_threads(self, threads):
        topo = Topology(sockets=4, chips_per_socket=2, cores_per_chip=6)
        placement = topo.place(threads)
        assert int(np.sum(placement.threads_per_chip)) == threads
        assert int(np.sum(placement.threads_per_socket)) == threads
        assert placement.sockets_used == int(np.ceil(threads / topo.threads_per_socket))
