"""Round-trip coverage for :mod:`repro.runner.io`.

The original tool is file-oriented: counters are collected into files and the
extrapolation runs from those files later (possibly on another machine).  The
pipeline must therefore be insensitive to a JSON round trip: measure → write →
read → predict has to give the exact same numbers as predicting from the
in-memory measurements.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import EstimaPredictor, TimeExtrapolation
from repro.runner import (
    load_measurements,
    load_prediction_json,
    save_measurements,
    save_prediction_json,
)


class TestMeasurementRoundTrip:
    def test_loaded_set_is_equal(self, tmp_path, intruder_opteron_sweep):
        path = save_measurements(intruder_opteron_sweep, tmp_path / "m.json")
        loaded = load_measurements(path)
        assert loaded == intruder_opteron_sweep

    def test_all_fields_survive(self, tmp_path, intruder_opteron_sweep):
        loaded = load_measurements(
            save_measurements(intruder_opteron_sweep, tmp_path / "m.json")
        )
        assert loaded.workload == intruder_opteron_sweep.workload
        assert loaded.machine == intruder_opteron_sweep.machine
        assert loaded.frequency_ghz == intruder_opteron_sweep.frequency_ghz
        np.testing.assert_array_equal(loaded.cores, intruder_opteron_sweep.cores)
        np.testing.assert_array_equal(loaded.times, intruder_opteron_sweep.times)
        for name in intruder_opteron_sweep.category_names():
            np.testing.assert_array_equal(
                loaded.category_series(name),
                intruder_opteron_sweep.category_series(name),
            )

    def test_prediction_identical_after_round_trip(self, tmp_path, intruder_opteron_sweep):
        """measure -> write -> read -> predict == predict from memory, bit for bit."""
        measured = intruder_opteron_sweep.restrict_to(12)
        path = save_measurements(measured, tmp_path / "measured.json")
        reloaded = load_measurements(path)

        direct = EstimaPredictor().predict(measured, target_cores=48)
        from_file = EstimaPredictor().predict(reloaded, target_cores=48)

        np.testing.assert_array_equal(from_file.predicted_times, direct.predicted_times)
        np.testing.assert_array_equal(from_file.stalls_per_core, direct.stalls_per_core)
        assert from_file.scaling_factor.kernel_name == direct.scaling_factor.kernel_name
        assert from_file.scaling_factor.fitted.params == direct.scaling_factor.fitted.params
        assert {
            name: result.kernel_name
            for name, result in from_file.category_extrapolations.items()
        } == {
            name: result.kernel_name
            for name, result in direct.category_extrapolations.items()
        }

    def test_baseline_identical_after_round_trip(self, tmp_path, intruder_opteron_sweep):
        measured = intruder_opteron_sweep.restrict_to(12)
        reloaded = load_measurements(save_measurements(measured, tmp_path / "m.json"))
        direct = TimeExtrapolation().predict(measured, target_cores=48)
        from_file = TimeExtrapolation().predict(reloaded, target_cores=48)
        np.testing.assert_array_equal(from_file.predicted_times, direct.predicted_times)


class TestPredictionJsonRoundTrip:
    def test_prediction_summary_round_trip(self, tmp_path, intruder_prediction):
        path = save_prediction_json(intruder_prediction, tmp_path / "p.json")
        payload = load_prediction_json(path)
        assert payload["workload"] == intruder_prediction.workload
        assert payload["predicted_times"] == [
            float(t) for t in intruder_prediction.predicted_times
        ]
        assert payload["scaling_factor_kernel"] == intruder_prediction.scaling_factor.kernel_name

    def test_file_is_plain_json(self, tmp_path, intruder_prediction):
        path = save_prediction_json(intruder_prediction, tmp_path / "p.json")
        parsed = json.loads(path.read_text())
        assert isinstance(parsed["predicted_times"], list)
