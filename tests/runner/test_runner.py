"""Tests for the experiment / campaign harness and its persistence helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimaConfig
from repro.machine import get_machine
from repro.runner import (
    CrossMachineExperiment,
    ErrorCampaign,
    Experiment,
    load_measurements,
    load_prediction_json,
    save_measurements,
    save_prediction_csv,
    save_prediction_json,
    save_table,
)
from repro.workloads import get_workload

OPTERON_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 24, 36, 48]


@pytest.fixture(scope="module")
def intruder_experiment_result():
    experiment = Experiment(machine=get_machine("opteron48"))
    return experiment.run(
        get_workload("intruder"),
        measurement_cores=12,
        target_cores=48,
        core_counts=OPTERON_COUNTS,
    )


class TestExperiment:
    def test_result_contains_both_predictions(self, intruder_experiment_result):
        result = intruder_experiment_result
        assert result.workload == "intruder"
        assert result.machine == "opteron48"
        assert result.estima.target_cores == 48
        assert result.baseline.target_cores == 48

    def test_errors_scored_beyond_measurement_window(self, intruder_experiment_result):
        result = intruder_experiment_result
        assert np.all(result.estima_error.cores > 12)
        assert np.all(result.baseline_error.cores > 12)

    def test_estima_beats_baseline_for_intruder(self, intruder_experiment_result):
        result = intruder_experiment_result
        assert result.estima_error.max_error_pct < result.baseline_error.max_error_pct

    def test_behaviour_check_true_for_intruder(self, intruder_experiment_result):
        assert intruder_experiment_result.scaling_behaviour_correct()

    def test_actual_peak_in_measured_range(self, intruder_experiment_result):
        result = intruder_experiment_result
        assert result.actual_peak_cores in list(result.ground_truth.cores)

    def test_ground_truth_helper(self):
        experiment = Experiment(machine=get_machine("xeon20"))
        truth = experiment.ground_truth(get_workload("genome"), core_counts=[1, 2, 4])
        assert list(truth.cores) == [1, 2, 4]


class TestCrossMachineExperiment:
    def test_memcached_desktop_to_server(self):
        experiment = CrossMachineExperiment(
            measurement_machine=get_machine("haswell_desktop"),
            target_machine=get_machine("xeon20"),
        )
        result = experiment.run(get_workload("memcached"), measurement_cores=3)
        assert result.machine == "xeon20"
        assert result.measurement_cores == 3
        assert result.estima.target_cores == 20
        # The paper reports errors below 30% for memcached; hold a loose bound.
        assert result.estima_error.max_error_pct < 60.0
        # Frequency scaling was applied (desktop is 3.4 GHz, server 2.8 GHz).
        assert result.estima.frequency_ratio == pytest.approx(3.4 / 2.8)


class TestErrorCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        campaign = ErrorCampaign(
            machine=get_machine("opteron48"),
            measurement_cores=12,
            targets={"2 CPUs": 24, "4 CPUs": 48},
            core_counts=OPTERON_COUNTS,
        )
        return campaign.run(["genome", "blackscholes", "intruder"])

    def test_one_row_per_workload(self, small_campaign):
        assert {row.workload for row in small_campaign.rows} == {
            "genome",
            "blackscholes",
            "intruder",
        }
        assert small_campaign.target_labels == ("2 CPUs", "4 CPUs")

    def test_aggregate_statistics(self, small_campaign):
        errors = small_campaign.errors_for("4 CPUs")
        assert errors.shape == (3,)
        assert small_campaign.max_error("4 CPUs") == pytest.approx(float(np.max(errors)))
        assert small_campaign.average_error("4 CPUs") == pytest.approx(float(np.mean(errors)))

    def test_workloads_below_threshold(self, small_campaign):
        below = small_campaign.workloads_below("4 CPUs", 25.0)
        assert 0 <= below <= 3

    def test_no_behaviour_mispredictions(self, small_campaign):
        assert small_campaign.all_behaviours_correct()

    def test_table_formatting(self, small_campaign):
        table = small_campaign.format_table()
        assert "Benchmark" in table
        assert "intruder" in table
        assert "Average" in table and "Std. Dev." in table and "Max." in table


class TestPersistence:
    def test_measurement_round_trip(self, tmp_path, intruder_experiment_result):
        path = save_measurements(intruder_experiment_result.ground_truth, tmp_path / "m.json")
        loaded = load_measurements(path)
        assert list(loaded.cores) == list(intruder_experiment_result.ground_truth.cores)

    def test_prediction_csv(self, tmp_path, intruder_experiment_result):
        path = save_prediction_csv(intruder_experiment_result.estima, tmp_path / "pred.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "cores,predicted_time_s,stalls_per_core"
        assert len(lines) == 49

    def test_prediction_json_round_trip(self, tmp_path, intruder_experiment_result):
        path = save_prediction_json(intruder_experiment_result.estima, tmp_path / "pred.json")
        payload = load_prediction_json(path)
        assert payload["workload"] == "intruder"
        assert len(payload["predicted_times"]) == 48
        assert "stm_aborted_tx_cycles" in payload["category_kernels"]

    def test_save_table(self, tmp_path):
        rows = [
            {"benchmark": "genome", "error": np.float64(4.4)},
            {"benchmark": "intruder", "error": np.float64(9.2)},
        ]
        path = save_table(rows, tmp_path / "table.csv")
        content = path.read_text()
        assert "benchmark,error" in content
        assert "genome,4.4" in content

    def test_save_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_table([], tmp_path / "table.csv")
