"""Tests for the ``estima`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_predict_requires_target_cores(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--workload", "genome", "--machine", "xeon20"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--workload", "doom", "--machine", "xeon20", "--output", "x.json"]
            )


class TestCommands:
    def test_list_prints_workloads_and_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "intruder" in out
        assert "opteron48" in out

    def test_measure_writes_json(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        code = main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "haswell_desktop",
                "--cores",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["workload"] == "genome"
        assert len(payload["measurements"]) == 4

    def test_predict_from_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "xeon20",
                "--cores",
                "10",
                "--output",
                str(output),
            ]
        )
        code = main(["predict", "--input", str(output), "--target-cores", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ESTIMA prediction" in out
        assert "Bottleneck report" in out

    def test_predict_needs_input_or_workload(self, capsys):
        assert main(["predict", "--target-cores", "20"]) == 2

    def test_predict_simulating_directly_with_baseline(self, capsys):
        code = main(
            [
                "predict",
                "--workload",
                "blackscholes",
                "--machine",
                "xeon20",
                "--measure-cores",
                "10",
                "--target-cores",
                "20",
                "--baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Time-extrapolation baseline" in out

    def test_predict_json_output_is_machine_readable(self, capsys):
        code = main(
            [
                "predict",
                "--workload",
                "genome",
                "--machine",
                "xeon20",
                "--measure-cores",
                "10",
                "--target-cores",
                "20",
                "--baseline",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "genome"
        assert payload["target_cores"] == 20
        assert len(payload["predicted_times_s"]) == 20
        assert payload["prediction_cores"] == list(range(1, 21))
        assert payload["scaling_factor"]["kernel"]
        assert isinstance(payload["predicted_peak_cores"], int)
        assert len(payload["baseline"]["predicted_times_s"]) == 20


CAMPAIGN_ARGS = [
    "campaign",
    "--machine",
    "xeon20",
    "--measure-cores",
    "10",
    "--workloads",
    "genome,blackscholes",
    "--core-counts",
    "1,2,3,4,6,8,10,12,16,20",
]


class TestCampaignCommand:
    def test_text_table_and_engine_line(self, capsys):
        code = main(CAMPAIGN_ARGS + ["--targets", "full=20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out
        assert "genome" in out and "blackscholes" in out
        assert "executor=serial" in out

    def test_json_output_with_fit_cache(self, capsys):
        code = main(
            CAMPAIGN_ARGS + ["--targets", "half=16,full=20", "--fit-cache", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["workload"] for row in payload["rows"]} == {"genome", "blackscholes"}
        assert payload["target_labels"] == ["half", "full"]
        assert set(payload["aggregates"]) == {"half", "full"}
        caches = payload["engine"]["caches"]
        assert caches["prediction"]["hits"] > 0

    def test_bare_core_count_targets_and_csv_output(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        code = main(
            CAMPAIGN_ARGS + ["--targets", "20", "--output", str(out_csv)]
        )
        assert code == 0
        content = out_csv.read_text()
        assert "estima[20 cores]" in content
        assert "genome" in content

    def test_unknown_workload_rejected(self, capsys):
        code = main(
            ["campaign", "--machine", "xeon20", "--measure-cores", "10",
             "--targets", "20", "--workloads", "doom"]
        )
        assert code == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_bad_targets_rejected(self, capsys):
        code = main(
            ["campaign", "--machine", "xeon20", "--measure-cores", "10",
             "--targets", " , "]
        )
        assert code == 2
        assert "invalid --targets" in capsys.readouterr().err
