"""Tests for the ``estima`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_predict_requires_target_cores(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--workload", "genome", "--machine", "xeon20"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--workload", "doom", "--machine", "xeon20", "--output", "x.json"]
            )


class TestCommands:
    def test_list_prints_workloads_and_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "intruder" in out
        assert "opteron48" in out

    def test_measure_writes_json(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        code = main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "haswell_desktop",
                "--cores",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["workload"] == "genome"
        assert len(payload["measurements"]) == 4

    def test_predict_from_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "xeon20",
                "--cores",
                "10",
                "--output",
                str(output),
            ]
        )
        code = main(["predict", "--input", str(output), "--target-cores", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ESTIMA prediction" in out
        assert "Bottleneck report" in out

    def test_predict_needs_input_or_workload(self, capsys):
        assert main(["predict", "--target-cores", "20"]) == 2

    def test_predict_simulating_directly_with_baseline(self, capsys):
        code = main(
            [
                "predict",
                "--workload",
                "blackscholes",
                "--machine",
                "xeon20",
                "--measure-cores",
                "10",
                "--target-cores",
                "20",
                "--baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Time-extrapolation baseline" in out
