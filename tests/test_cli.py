"""Tests for the ``estima`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_predict_requires_target_cores(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--workload", "genome", "--machine", "xeon20"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--workload", "doom", "--machine", "xeon20", "--output", "x.json"]
            )


class TestCommands:
    def test_list_prints_workloads_and_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "intruder" in out
        assert "opteron48" in out

    def test_measure_writes_json(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        code = main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "haswell_desktop",
                "--cores",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["workload"] == "genome"
        assert len(payload["measurements"]) == 4

    def test_predict_from_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "meas.json"
        main(
            [
                "measure",
                "--workload",
                "genome",
                "--machine",
                "xeon20",
                "--cores",
                "10",
                "--output",
                str(output),
            ]
        )
        code = main(["predict", "--input", str(output), "--target-cores", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ESTIMA prediction" in out
        assert "Bottleneck report" in out

    def test_predict_needs_input_or_workload(self, capsys):
        assert main(["predict", "--target-cores", "20"]) == 2

    def test_predict_simulating_directly_with_baseline(self, capsys):
        code = main(
            [
                "predict",
                "--workload",
                "blackscholes",
                "--machine",
                "xeon20",
                "--measure-cores",
                "10",
                "--target-cores",
                "20",
                "--baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Time-extrapolation baseline" in out

    def test_predict_json_output_is_machine_readable(self, capsys):
        code = main(
            [
                "predict",
                "--workload",
                "genome",
                "--machine",
                "xeon20",
                "--measure-cores",
                "10",
                "--target-cores",
                "20",
                "--baseline",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "genome"
        assert payload["target_cores"] == 20
        assert len(payload["predicted_times_s"]) == 20
        assert payload["prediction_cores"] == list(range(1, 21))
        assert payload["scaling_factor"]["kernel"]
        assert isinstance(payload["predicted_peak_cores"], int)
        assert len(payload["baseline"]["predicted_times_s"]) == 20


CAMPAIGN_ARGS = [
    "campaign",
    "--machine",
    "xeon20",
    "--measure-cores",
    "10",
    "--workloads",
    "genome,blackscholes",
    "--core-counts",
    "1,2,3,4,6,8,10,12,16,20",
]


class TestCampaignCommand:
    def test_text_table_and_engine_line(self, capsys):
        code = main(CAMPAIGN_ARGS + ["--targets", "full=20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out
        assert "genome" in out and "blackscholes" in out
        assert "executor=serial" in out

    def test_json_output_with_fit_cache(self, capsys):
        code = main(
            CAMPAIGN_ARGS + ["--targets", "half=16,full=20", "--fit-cache", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["workload"] for row in payload["rows"]} == {"genome", "blackscholes"}
        assert payload["target_labels"] == ["half", "full"]
        assert set(payload["aggregates"]) == {"half", "full"}
        caches = payload["engine"]["caches"]
        assert caches["prediction"]["hits"] > 0

    def test_bare_core_count_targets_and_csv_output(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        code = main(
            CAMPAIGN_ARGS + ["--targets", "20", "--output", str(out_csv)]
        )
        assert code == 0
        content = out_csv.read_text()
        assert "estima[20 cores]" in content
        assert "genome" in content

    def test_unknown_workload_rejected(self, capsys):
        code = main(
            ["campaign", "--machine", "xeon20", "--measure-cores", "10",
             "--targets", "20", "--workloads", "doom"]
        )
        assert code == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_bad_targets_rejected(self, capsys):
        code = main(
            ["campaign", "--machine", "xeon20", "--measure-cores", "10",
             "--targets", " , "]
        )
        assert code == 2
        assert "invalid --targets" in capsys.readouterr().err

    def test_stats_flag_prints_executor_and_tier_counters(self, capsys):
        code = main(
            CAMPAIGN_ARGS + ["--targets", "full=20", "--fit-cache", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executor counters:" in out
        assert "backend=serial" in out
        assert "cache tiers:" in out

    def test_json_engine_block_has_executor_stats(self, capsys):
        code = main(
            CAMPAIGN_ARGS + ["--targets", "full=20", "--stats", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        executor_stats = payload["engine"]["executor_stats"]
        assert executor_stats["backend"] == "serial"
        assert executor_stats["tasks"] == 2


class TestPredictStats:
    PREDICT_ARGS = [
        "predict", "--workload", "genome", "--machine", "xeon20",
        "--measure-cores", "10", "--target-cores", "20",
    ]

    def test_stats_text_block(self, capsys):
        code = main(self.PREDICT_ARGS + ["--fit-cache", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine: executor=serial" in out
        assert "fit:" in out and "hits" in out

    def test_stats_json_block(self, capsys):
        code = main(self.PREDICT_ARGS + ["--fit-cache", "--stats", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        caches = payload["engine"]["caches"]
        # hits when an earlier in-process test already warmed the region,
        # misses otherwise — either way the fit cache was consulted.
        assert caches["fit"]["hits"] + caches["fit"]["misses"] > 0
        assert set(caches["fit"]) == {"hits", "misses", "disk_hits", "disk_misses"}

    def test_no_stats_flag_omits_engine_block(self, capsys):
        code = main(self.PREDICT_ARGS + ["--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "engine" not in payload

    def test_threads_executor_accepted(self, capsys):
        code = main(self.PREDICT_ARGS + ["--executor", "threads:2", "--stats"])
        assert code == 0
        assert "executor=threads:2" in capsys.readouterr().out

    def test_invalid_executor_rejected(self, capsys):
        code = main(self.PREDICT_ARGS + ["--executor", "warp"])
        assert code == 2
        assert "invalid --executor" in capsys.readouterr().err

    def test_stats_includes_fit_stage_timings(self, capsys):
        code = main(self.PREDICT_ARGS + ["--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fit stages:" in out
        assert "nonlinear_solve" in out


class TestProfileCommand:
    PROFILE_ARGS = [
        "profile", "--workload", "genome", "--machine", "xeon20",
        "--measure-cores", "10", "--target-cores", "20",
    ]

    def test_text_report_compares_both_strategies(self, capsys):
        code = main(self.PROFILE_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "serial:" in out and "vectorized:" in out
        assert "nonlinear_solve" in out
        assert "speedup:" in out
        assert "predicted rows identical: yes" in out

    def test_json_report_is_machine_readable(self, capsys):
        code = main(self.PROFILE_ARGS + ["--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows_identical"] is True
        assert set(payload["strategies"]) == {"serial", "vectorized"}
        for leg in payload["strategies"].values():
            assert leg["wall_s"] > 0.0
            assert leg["profile"]["nonlinear_solve"]["calls"] > 0
        assert payload["speedup"] > 0.0

    def test_needs_input_or_workload(self, capsys):
        assert main(["profile", "--target-cores", "20"]) == 2
        assert "profile needs" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_on_empty_dir(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path / "c"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0
        assert payload["schema_version"] >= 1

    def test_warm_then_stats_then_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        code = main(
            [
                "cache", "warm", "--cache-dir", cache_dir, "--machine", "xeon20",
                "--workloads", "genome", "--measure-cores", "10",
                "--target-cores", "20", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warmed"] == ["genome"]
        assert payload["store"]["entries"] > 0
        assert "fit" in payload["store"]["regions"]

        # Simulate a process restart: drop the in-memory tier (the disk tier
        # survives), exactly what a fresh `estima predict` process would see.
        from repro.engine.cache import clear_caches

        clear_caches()

        # A later predict run in the same cache dir starts warm: the fit
        # region is served entirely from disk, re-fitting zero kernels.
        code = main(
            [
                "predict", "--workload", "genome", "--machine", "xeon20",
                "--measure-cores", "10", "--target-cores", "20",
                "--fit-cache", "--cache-dir", cache_dir, "--stats", "--json",
            ]
        )
        assert code == 0
        caches = json.loads(capsys.readouterr().out)["engine"]["caches"]
        assert caches["fit"]["disk_misses"] == 0
        assert caches["fit"]["disk_hits"] > 0
        assert caches["extrapolation"]["disk_misses"] == 0

        code = main(["cache", "clear", "--cache-dir", cache_dir, "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["removed"] > 0

    def test_cache_dir_implies_fit_cache(self, tmp_path, capsys):
        """--cache-dir alone must use the warmed tier, not silently ignore it."""
        cache_dir = str(tmp_path / "c")
        assert main(
            ["cache", "warm", "--cache-dir", cache_dir, "--machine", "xeon20",
             "--workloads", "genome", "--measure-cores", "10",
             "--target-cores", "20"]
        ) == 0
        capsys.readouterr()
        from repro.engine.cache import clear_caches

        clear_caches()  # simulated process restart
        code = main(
            ["predict", "--workload", "genome", "--machine", "xeon20",
             "--measure-cores", "10", "--target-cores", "20",
             "--cache-dir", cache_dir, "--stats", "--json"]  # no --fit-cache
        )
        assert code == 0
        caches = json.loads(capsys.readouterr().out)["engine"]["caches"]
        assert caches["fit"]["disk_hits"] > 0

    def test_warm_requires_machine_and_target(self, tmp_path, capsys):
        code = main(["cache", "warm", "--cache-dir", str(tmp_path / "c")])
        assert code == 2
        assert "needs --machine and --target-cores" in capsys.readouterr().err

    def test_warm_rejects_unknown_workloads(self, tmp_path, capsys):
        code = main(
            ["cache", "warm", "--cache-dir", str(tmp_path / "c"),
             "--machine", "xeon20", "--target-cores", "20", "--workloads", "doom"]
        )
        assert code == 2
        assert "unknown workloads" in capsys.readouterr().err


class TestServeConfigValidation:
    """Satellite: malformed ESTIMA_SERVE_WORKERS / --tcp values fail fast."""

    def test_malformed_env_serve_workers_rejected_at_config(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_SERVE_WORKERS", "many")
        with pytest.raises(ValueError, match="ESTIMA_SERVE_WORKERS"):
            EstimaConfig()

    def test_valid_env_serve_workers_accepted(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_SERVE_WORKERS", "4")
        EstimaConfig()  # must not raise

    def test_negative_serve_workers_rejected_at_config(self):
        from repro.core import EstimaConfig

        with pytest.raises(ValueError, match="serve_workers"):
            EstimaConfig(serve_workers=-1)

    def test_malformed_tcp_rejected_at_config(self):
        from repro.core import EstimaConfig

        with pytest.raises(ValueError, match="HOST:PORT"):
            EstimaConfig(serve_tcp="nonsense")
        with pytest.raises(ValueError, match="port"):
            EstimaConfig(serve_tcp="127.0.0.1:notaport")
        with pytest.raises(ValueError, match="0..65535"):
            EstimaConfig(serve_tcp="127.0.0.1:70000")

    def test_valid_tcp_accepted_at_config(self):
        from repro.core import EstimaConfig

        EstimaConfig(serve_tcp="0.0.0.0:8080", serve_workers=2)  # must not raise

    def test_cli_rejects_malformed_tcp(self, capsys):
        assert main(["serve", "--tcp", "nonsense"]) == 2
        assert "invalid serve configuration" in capsys.readouterr().err

    def test_cli_rejects_malformed_env_workers(self, monkeypatch, capsys):
        monkeypatch.setenv("ESTIMA_SERVE_WORKERS", "lots")
        assert main(["serve"]) == 2
        assert "ESTIMA_SERVE_WORKERS" in capsys.readouterr().err

    def test_cli_rejects_workers_without_socket_transport(self, capsys):
        assert main(["serve", "--workers", "2"]) == 2
        assert "--workers needs a socket transport" in capsys.readouterr().err

    def test_cli_rejects_tcp_plus_socket(self, capsys):
        assert main(["serve", "--tcp", "127.0.0.1:0", "--socket", "/tmp/x.sock"]) == 2
        assert "at most one" in capsys.readouterr().err

    def test_cli_rejects_http_plus_tcp(self, capsys):
        assert main(["serve", "--http", "127.0.0.1:0", "--tcp", "127.0.0.1:0"]) == 2
        assert "at most one" in capsys.readouterr().err


class TestServeHttpConfigValidation:
    """Satellite: malformed ESTIMA_SERVE_HTTP / --http values fail fast."""

    def test_malformed_http_rejected_at_config(self):
        from repro.core import EstimaConfig

        with pytest.raises(ValueError, match="serve_http"):
            EstimaConfig(serve_http="nonsense")
        with pytest.raises(ValueError, match="port"):
            EstimaConfig(serve_http="127.0.0.1:notaport")
        with pytest.raises(ValueError, match="0..65535"):
            EstimaConfig(serve_http="127.0.0.1:70000")

    def test_valid_http_accepted_at_config(self):
        from repro.core import EstimaConfig

        EstimaConfig(serve_http="0.0.0.0:7979", serve_workers=4)  # must not raise

    def test_malformed_env_serve_http_rejected_at_config(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_SERVE_HTTP", "no-port-here")
        with pytest.raises(ValueError, match="ESTIMA_SERVE_HTTP"):
            EstimaConfig()

    def test_valid_env_serve_http_accepted(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_SERVE_HTTP", "127.0.0.1:7979")
        EstimaConfig()  # must not raise

    def test_cli_rejects_malformed_http(self, capsys):
        assert main(["serve", "--http", "nonsense"]) == 2
        assert "invalid serve configuration" in capsys.readouterr().err

    def test_cli_rejects_malformed_env_http(self, monkeypatch, capsys):
        monkeypatch.setenv("ESTIMA_SERVE_HTTP", "nonsense")
        assert main(["serve"]) == 2
        assert "ESTIMA_SERVE_HTTP" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_round_trip_over_stdio_subprocess(self, tmp_path):
        """End-to-end: the `estima serve` process answers NDJSON on stdio."""
        import subprocess
        import sys as _sys
        from pathlib import Path

        measurements = tmp_path / "meas.json"
        assert main(
            ["measure", "--workload", "genome", "--machine", "xeon20",
             "--cores", "10", "--output", str(measurements)]
        ) == 0
        request = {
            "id": 1,
            "target_cores": 20,
            "measurements": json.loads(measurements.read_text()),
        }
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [_sys.executable, "-m", "repro.cli", "serve", "--stats"],
            input=json.dumps(request) + "\n",
            capture_output=True,
            text=True,
            timeout=300,
            env={**__import__("os").environ, "PYTHONPATH": str(src)},
        )
        assert proc.returncode == 0, proc.stderr
        response = json.loads(proc.stdout.strip().splitlines()[-1])
        assert response["id"] == 1 and response["ok"]
        assert len(response["result"]["predicted_times_s"]) == 20
        # --stats: the shutdown report on stderr is machine-readable
        stats = json.loads(proc.stderr.strip().splitlines()[-1])
        assert stats["server"]["responses"] == 1
