"""Tests for the workload registry and the demand profiles of all 21 workloads."""

from __future__ import annotations

import pytest

from repro.workloads import (
    PRODUCTION_WORKLOADS,
    SOFTWARE_STALL_WORKLOADS,
    STM_WORKLOADS,
    TABLE4_WORKLOADS,
    WORKLOADS,
    Workload,
    WorkloadProfile,
    get_workload,
    iter_workloads,
    workload_names,
)
from repro.workloads.profiles import scaled_ops


class TestRegistry:
    def test_table4_has_19_benchmarks(self):
        assert len(TABLE4_WORKLOADS) == 19

    def test_two_production_applications(self):
        assert set(PRODUCTION_WORKLOADS) == {"memcached", "sqlite_tpcc"}

    def test_stamp_suite_complete(self):
        assert set(STM_WORKLOADS) == {
            "genome",
            "intruder",
            "kmeans",
            "labyrinth",
            "ssca2",
            "vacation_high",
            "vacation_low",
            "yada",
        }

    def test_total_registered_workloads_cover_paper_plus_variants(self):
        # 19 benchmarks + 2 production + 2 optimized variants (Section 4.6)
        assert len(WORKLOADS) == 23

    def test_every_name_resolves(self):
        for name in workload_names():
            workload = get_workload(name)
            assert isinstance(workload, Workload)
            assert workload.name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("quicksort")

    def test_iter_workloads_defaults_to_table4(self):
        names = [name for name, _ in iter_workloads()]
        assert names == list(TABLE4_WORKLOADS)

    def test_software_stall_workloads_report_them(self):
        for name in SOFTWARE_STALL_WORKLOADS:
            assert get_workload(name).reports_software_stalls, name

    def test_stm_workloads_expose_stm_profile(self):
        for name in STM_WORKLOADS:
            assert get_workload(name).uses_stm, name


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_profile_is_valid(self, name):
        profile = get_workload(name).profile()
        assert isinstance(profile, WorkloadProfile)
        assert profile.total_ops > 0
        assert profile.mix.instructions_per_op > 0
        assert 0.0 <= profile.shared_access_fraction <= 1.0
        assert 0.0 <= profile.locality <= 1.0
        assert profile.noise_level < 0.2

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_dataset_scaling_increases_footprint(self, name):
        workload = get_workload(name)
        small = workload.profile(1.0)
        big = workload.profile(2.0)
        assert big.total_working_set_mb >= small.total_working_set_mb
        assert big.total_ops >= small.total_ops

    def test_blackscholes_is_embarrassingly_parallel(self):
        profile = get_workload("blackscholes").profile()
        assert profile.sync_models() == ()
        assert profile.shared_access_fraction < 0.05

    def test_intruder_and_yada_are_contended_stm(self):
        for name in ("intruder", "yada"):
            profile = get_workload(name).profile()
            assert profile.stm is not None
            assert profile.stm.aborts_per_commit(48) > 2.0, name

    def test_genome_has_low_contention(self):
        profile = get_workload("genome").profile()
        assert profile.stm is not None
        assert profile.stm.aborts_per_commit(48) < 1.0

    def test_streamcluster_uses_trylock_barriers(self):
        profile = get_workload("streamcluster").profile()
        assert profile.barrier is not None and profile.barrier.trylock_based
        optimized = get_workload("streamcluster_spinlock").profile()
        assert optimized.barrier is not None and not optimized.barrier.trylock_based

    def test_intruder_batching_widens_conflict_table(self):
        base = get_workload("intruder").profile()
        batched = get_workload("intruder_batch4").profile()
        assert batched.stm.conflict_table_size > base.stm.conflict_table_size
        assert batched.stm.tx_per_op < base.stm.tx_per_op

    def test_sqlite_has_a_single_writer_lock(self):
        profile = get_workload("sqlite_tpcc").profile()
        assert profile.locks is not None
        assert profile.locks.num_locks == 1

    def test_memcached_is_read_mostly(self):
        profile = get_workload("memcached").profile()
        assert profile.shared_write_fraction < 0.15

    def test_lock_free_variants_have_no_locks(self):
        for name in ("lock_free_ht", "lock_free_sl"):
            profile = get_workload(name).profile()
            assert profile.locks is None
            assert profile.lockfree is not None

    def test_knn_work_grows_quadratically_with_dataset(self):
        workload = get_workload("knn")
        assert workload.profile(2.0).total_ops == pytest.approx(
            4.0 * workload.profile(1.0).total_ops
        )

    def test_profile_with_returns_modified_copy(self):
        profile = get_workload("genome").profile()
        other = profile.with_(serial_fraction=0.5)
        assert other.serial_fraction == 0.5
        assert profile.serial_fraction != 0.5

    def test_invalid_profile_fields_rejected(self):
        profile = get_workload("genome").profile()
        with pytest.raises(ValueError):
            profile.with_(shared_access_fraction=1.5)
        with pytest.raises(ValueError):
            profile.with_(total_ops=0.0)
        with pytest.raises(ValueError):
            profile.with_(locality=-0.1)


class TestScaledOps:
    def test_linear_scaling(self):
        assert scaled_ops(100.0, 2.0) == 200.0

    def test_exponent(self):
        assert scaled_ops(100.0, 4.0, exponent=0.5) == pytest.approx(200.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            scaled_ops(0.0, 1.0)
        with pytest.raises(ValueError):
            scaled_ops(1.0, 0.0)
