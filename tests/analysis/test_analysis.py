"""Tests for the analysis layer: correlations, bottleneck reports, formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BottleneckReport,
    CorrelationStudy,
    PaperComparison,
    comparison_table,
    figure_series,
    format_paper_comparison,
    frontend_correlation_delta,
    optimization_improvement,
    stalls_time_correlation,
)
from repro.machine import get_machine
from repro.simulation import MachineSimulator
from repro.workloads import get_workload

CORE_COUNTS = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48]


@pytest.fixture(scope="module")
def intruder_sweep():
    return MachineSimulator(get_machine("opteron48")).sweep(
        get_workload("intruder"), core_counts=CORE_COUNTS
    )


@pytest.fixture(scope="module")
def blackscholes_sweep():
    return MachineSimulator(get_machine("opteron48")).sweep(
        get_workload("blackscholes"), core_counts=CORE_COUNTS
    )


class TestCorrelation:
    def test_correlation_is_high_for_contended_workload(self, intruder_sweep):
        # Table 5: intruder correlation 1.00 on Opteron.
        assert stalls_time_correlation(intruder_sweep) > 0.9

    def test_correlation_is_high_for_scalable_workload(self, blackscholes_sweep):
        assert stalls_time_correlation(blackscholes_sweep) > 0.9

    def test_software_stalls_do_not_hurt_intruder_correlation(self, intruder_sweep):
        with_sw = stalls_time_correlation(intruder_sweep, software=True)
        without_sw = stalls_time_correlation(intruder_sweep, software=False)
        assert with_sw >= without_sw - 0.05

    def test_frontend_delta_is_small(self, intruder_sweep):
        # Table 6: adding frontend stalls changes correlation by ~0.
        assert abs(frontend_correlation_delta(intruder_sweep)) < 15.0

    def test_study_aggregates(self, intruder_sweep, blackscholes_sweep):
        study = CorrelationStudy.from_measurements([intruder_sweep, blackscholes_sweep])
        assert len(study.rows) == 2
        assert 0.0 <= study.minimum() <= study.average() <= 1.0
        assert set(study.by_workload()) == {"intruder", "blackscholes"}
        table = study.format_table()
        assert "intruder" in table and "Average" in table


class TestBottleneck:
    def test_report_ranks_aborted_transactions_for_intruder(self, intruder_prediction):
        report = BottleneckReport.from_prediction(intruder_prediction)
        top_categories = [growth.category for growth in report.dominant(3)]
        assert "stm_aborted_tx_cycles" in top_categories

    def test_report_shares_are_a_distribution(self, intruder_prediction):
        report = BottleneckReport.from_prediction(intruder_prediction)
        assert sum(g.share_at_target for g in report.growths) == pytest.approx(1.0, abs=1e-6)

    def test_fastest_growing_includes_contended_category(self, intruder_prediction):
        report = BottleneckReport.from_prediction(intruder_prediction)
        fastest = [growth.category for growth in report.fastest_growing(2)]
        assert "stm_aborted_tx_cycles" in fastest

    def test_format_report_mentions_hint(self, intruder_prediction):
        text = BottleneckReport.from_prediction(intruder_prediction).format_report()
        assert "aborted STM transactions" in text

    def test_optimization_improvement_positive_for_intruder_fix(self):
        sim = MachineSimulator(get_machine("opteron48"))
        original = sim.sweep(get_workload("intruder"), core_counts=[12, 48])
        optimized = sim.sweep(get_workload("intruder_batch4"), core_counts=[12, 48])
        improvements = optimization_improvement(original, optimized)
        assert improvements[48] > 20.0  # the paper reports up to 70%

    def test_optimization_improvement_streamcluster_fix(self):
        sim = MachineSimulator(get_machine("opteron48"))
        original = sim.sweep(get_workload("streamcluster"), core_counts=[48])
        optimized = sim.sweep(get_workload("streamcluster_spinlock"), core_counts=[48])
        improvements = optimization_improvement(original, optimized, core_counts=[48])
        assert improvements[48] > 20.0  # the paper reports up to 74%


class TestReportFormatting:
    def test_figure_series_layout(self):
        text = figure_series(
            "Figure 5(i): intruder",
            [1, 2, 4],
            {"measured": [4.0, 2.0, 1.1], "predicted": [4.1, 2.1, 1.0]},
        )
        assert "Figure 5(i)" in text
        assert "measured" in text and "predicted" in text
        assert len(text.splitlines()) == 5

    def test_figure_series_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            figure_series("x", [1, 2], {"a": [1.0]})

    def test_comparison_table_layout(self):
        text = comparison_table(
            "Table 4", {"genome": {"2 CPUs": 4.4, "4 CPUs": 4.6}, "yada": {"2 CPUs": 8.1, "4 CPUs": 15.1}}
        )
        assert "genome" in text and "yada" in text and "2 CPUs" in text

    def test_comparison_table_empty_raises(self):
        with pytest.raises(ValueError):
            comparison_table("x", {})

    def test_paper_comparison_rows(self):
        rows = [
            PaperComparison("Table 4", "intruder max error (%)", 31.9, 21.6, note="4 CPUs"),
            PaperComparison("Fig 11", "streamcluster improvement (%)", 74.0, 51.0),
        ]
        text = format_paper_comparison(rows)
        assert "intruder max error" in text
        assert "74.00" in text
        assert rows[0].matches_direction
