"""Exhaustive interleaving checks for the DiskStore flock ledger.

Two writer processes-worth of stores (separate :class:`DiskStore`
instances over one directory, exactly like two ``estima serve`` workers)
race their puts.  The store's contract, asserted on *every* schedule:

* the byte budget holds after the dust settles — a fresh scan of the
  directory never exceeds ``max_bytes``;
* every surviving entry is intact (atomic publish: a reader sees the
  whole blob or a miss, never a torn write);
* the shared ledger remains a parseable byte count;
* no orphaned temp files are left behind.

The writers' ledger sections are serialised by the flock — the harness's
stall detection classifies a writer sleeping on the flock as
unschedulable until the holder's release lets it proceed.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.engine.store import DiskStore
from repro.testing import Scenario, explore

PAYLOAD = b"x" * 200


def _seed(root: Path) -> int:
    """Pre-populate the directory and its ledger; returns the seeded bytes."""

    seeder = DiskStore(root, max_bytes=10_000_000)
    assert seeder.put("fit", "seed0001", PAYLOAD)
    assert seeder.put("fit", "seed0002", PAYLOAD)
    return seeder.total_bytes()


class TwoWriterLedger(Scenario):
    """Both writers put one entry; together they overflow the budget."""

    name = "flock-ledger-two-writers"
    stall_timeout = 0.05
    deadlock_timeout = 10.0

    def start(self, controller):
        root = Path(tempfile.mkdtemp(prefix="estima-ledger-"))
        seeded = _seed(root)
        entry_size = seeded // 2
        # One more entry fits, two overflow: the last writer through the
        # ledger must detect the overflow and evict.
        max_bytes = seeded + entry_size + entry_size // 2
        context = {
            "root": root,
            "max_bytes": max_bytes,
            "results": {},
            "keys": {"w1": "aaaa0001", "w2": "bbbb0001"},
        }

        def writer(name: str) -> None:
            store = DiskStore(root, max_bytes=max_bytes)
            context["results"][name] = store.put("fit", context["keys"][name], PAYLOAD)

        controller.spawn("w1", writer, "w1")
        controller.spawn("w2", writer, "w2")
        return context

    def check(self, context):
        root = context["root"]
        # Both puts reported success.
        assert context["results"] == {"w1": True, "w2": True}
        # Byte budget: a fresh scan of the directory is within budget.
        fresh = DiskStore(root, max_bytes=context["max_bytes"])
        fresh.refresh()
        total = fresh.total_bytes()
        assert total <= context["max_bytes"], (
            f"budget exceeded after concurrent puts: {total} > {context['max_bytes']}"
        )
        # Entries are whole-or-absent, never torn.
        survivors = 0
        for key in ["seed0001", "seed0002", *context["keys"].values()]:
            value = fresh.get("fit", key)
            if fresh.is_miss(value):
                continue
            assert value == PAYLOAD, f"torn entry for {key}: {value!r}"
            survivors += 1
        assert survivors >= 1, "eviction removed everything"
        # The shared ledger is a parseable non-negative byte count.
        ledger_text = (root / ".lock").read_bytes().decode("ascii", "replace").strip()
        assert ledger_text, "ledger was never written"
        assert int(ledger_text) >= 0
        # Atomic publish leaves no temp droppings.
        assert not list(root.rglob(".tmp-*")), "orphaned temp files"

    def cleanup(self, context):
        shutil.rmtree(context["root"], ignore_errors=True)


class TestFlockLedgerExploration:
    def test_every_interleaving_respects_the_byte_budget(self):
        result = explore(TwoWriterLedger(), max_depth=8, max_schedules=200)
        assert not result.failures, result.failures[0].describe(result.scenario)
        # The exploration must have genuinely branched (several distinct
        # interleavings of publish/acquire/read/rescan/release) and must
        # have covered the whole bounded space.
        assert result.schedules >= 10, result.summary()
        assert not result.truncated, result.summary()
        assert result.divergences == 0, result.summary()

    def test_single_writer_schedule_is_replayable(self):
        # The all-w1-first schedule is the sequential baseline; it must
        # pass and produce a trace that visits the ledger points.
        from repro.testing import replay

        # w1's put fits the budget: start, publish, acquire, read, release.
        trace = replay(TwoWriterLedger(), ["w1"] * 5)
        points = [point for _, point in trace]
        assert "store.put.publish" in points
        assert "store.ledger.acquire" in points
        assert "store.ledger.release" in points


@pytest.mark.parametrize("order", [["w1", "w2"], ["w2", "w1"]])
def test_scripted_first_mover_controls_publish_order(order):
    """Directed schedules: whichever writer is released first publishes
    first — sanity that the controller actually steers the store code."""

    from repro.testing import ScheduleController

    scenario = TwoWriterLedger()
    controller = ScheduleController(stall_timeout=0.05, deadlock_timeout=10.0)
    with controller.install():
        context = scenario.start(controller)
        try:
            first, second = order
            controller.drive([first, f"{first}@store.put.publish", second])
            publishes = [actor for actor, point in controller.trace
                         if point == "store.put.publish"]
            assert publishes[0] == first
            scenario.check(context)
        finally:
            scenario.cleanup(context)
