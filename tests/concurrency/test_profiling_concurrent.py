"""Snapshot-delta arithmetic of the profiler under concurrent stage writers.

Two threads hammer the *same* stage of one :class:`Profiler` while
genuinely overlapping (proved via :func:`assert_parallel_execution` and a
named barrier, not hoped-for timing).  The accumulator's contract is that
the totals are exact under contention: ``calls`` is an integer equal to
the sum of both writers' iterations, counters add up to the precise event
total, and ``profile_delta`` over a bracketing snapshot pair reports
exactly the work done inside the bracket — no lost updates, no
double-counts, no bleed-through from untouched stages.
"""

from __future__ import annotations

import threading

from repro.engine.profiling import Profiler, profile_delta
from repro.testing import assert_parallel_execution, get_barrier

ITERATIONS = 200


class TestConcurrentStageWriters:
    def test_same_stage_totals_add_up_exactly(self):
        profiler = Profiler()
        before = profiler.snapshot()
        started = get_barrier("profiling.writers.start", 2)

        def writer():
            # Both writers inside their first stage() at the same time:
            # the barrier trips only when both threads have entered.
            with profiler.stage("nonlinear_solve"):
                started.wait(timeout=5)
                profiler.count("nonlinear_starts_pruned", 3)
            for _ in range(ITERATIONS - 1):
                with profiler.stage("nonlinear_solve"):
                    profiler.count("nonlinear_starts_pruned", 3)

        assert_parallel_execution(
            [writer, writer],
            timeout=30,
            message="profiler stage writers never overlapped",
        )

        delta = profile_delta(before, profiler.snapshot())
        stage = delta["nonlinear_solve"]
        assert stage["calls"] == 2 * ITERATIONS
        assert isinstance(stage["calls"], int)
        assert stage["wall_s"] >= 0.0
        assert stage["cpu_s"] >= 0.0
        counter = delta["nonlinear_starts_pruned"]
        assert counter["calls"] == 2 * ITERATIONS * 3
        assert counter["wall_s"] == 0.0 and counter["cpu_s"] == 0.0

    def test_delta_brackets_only_the_enclosed_work(self):
        profiler = Profiler()
        with profiler.stage("design_solve"):
            pass
        profiler.count("warmup_events", 7)

        before = profiler.snapshot()
        done = threading.Barrier(3)

        def writer(stage_name):
            def run():
                for _ in range(ITERATIONS):
                    with profiler.stage(stage_name):
                        profiler.count(f"{stage_name}_events")
                done.wait(timeout=5)
            return run

        threads = [threading.Thread(target=writer("design_solve")),
                   threading.Thread(target=writer("design_solve"))]
        for thread in threads:
            thread.start()
        done.wait(timeout=5)
        for thread in threads:
            thread.join(timeout=5)
        delta = profile_delta(before, profiler.snapshot())

        # Exactly the bracketed work — pre-existing totals subtract away...
        assert delta["design_solve"]["calls"] == 2 * ITERATIONS
        assert delta["design_solve_events"]["calls"] == 2 * ITERATIONS
        # ...and stages untouched inside the bracket are dropped entirely.
        assert "warmup_events" not in delta
        assert set(delta) == {"design_solve", "design_solve_events"}
