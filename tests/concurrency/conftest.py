"""Shared guards for the deterministic concurrency suite.

Every test here may install a process-global :class:`ScheduleController`;
the autouse fixture guarantees no controller or named barrier leaks from
one test into the next (a leaked controller would silently gate sync
points in unrelated tests).
"""

from __future__ import annotations

import pytest

from repro.testing import (
    clear_barriers,
    installed_controller,
    set_sync_debug,
    uninstall_controller,
)


@pytest.fixture(autouse=True)
def _clean_sync_state():
    assert installed_controller() is None, "controller leaked from a previous test"
    yield
    # Failing tests must not poison the rest of the suite.
    uninstall_controller()
    clear_barriers()
    set_sync_debug(False)
    assert installed_controller() is None
