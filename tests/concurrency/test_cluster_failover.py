"""Backend-dies-mid-campaign failover under scripted and explored schedules.

Backend A owns the campaign key.  It serves row 1 of the campaign and
then hangs; a killer actor drops it (listener and live connections) at a
schedule-controlled moment — before the client connects, between send
and first row, or mid-stream.  Backend B serves the complete campaign.

The invariant on every schedule: the documents returned by
``BackendPool.request`` contain each campaign row **exactly once** (the
partial stream from A is discarded wholesale, never spliced), exactly
one failover is recorded, A ends marked down and B up, and the
exponential backoff fired exactly once per retry on the dead owner.

The module also pins the health-probe boundary behaviour the router
depends on: down hosts are deferred (not skipped), ``mark_probe`` heals
them back to the front of the failover order, and a probe that lied
costs exactly one more exhausted attempt budget before the host is
re-marked down.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.engine.cluster.remote import BackendPool
from repro.testing import Scenario, ScheduleController, explore, sync_point

FULL_CAMPAIGN = [
    {"ok": True, "op": "campaign", "row": 1},
    {"ok": True, "op": "campaign", "row": 2},
    {"ok": True, "op": "campaign", "done": True},
]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _key_owned_by(pool: BackendPool, address: str) -> str:
    for i in range(200):
        key = f"probe-key-{i}"
        if pool.ring.node_for(key) == address:
            return key
    raise AssertionError(f"no probe key owned by {address}")


class _NdjsonBackend(threading.Thread):
    """Scripted NDJSON backend: one response list per request line."""

    def __init__(self, documents) -> None:
        super().__init__(daemon=True)
        self._documents = documents
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]

    def run(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                stream = conn.makefile("rwb")
                for raw in stream:
                    json.loads(raw)
                    for document in self._documents:
                        stream.write(json.dumps(document).encode() + b"\n")
                    stream.flush()
            except (OSError, ValueError):
                pass
            finally:
                conn.close()

    def close(self) -> None:
        for fn in (lambda: self._listener.shutdown(socket.SHUT_RDWR), self._listener.close):
            try:
                fn()
            except OSError:
                pass


class _DyingBackend(threading.Thread):
    """Serves row 1 of the campaign, then hangs until :meth:`kill`.

    ``kill`` closes the listener and every live connection — exactly what
    the OS does to a crashed ``estima serve`` host: in-flight streams see
    EOF mid-stream, later connects are refused.
    """

    def __init__(self) -> None:
        super().__init__(daemon=True)
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._die = threading.Event()
        self._conns: list[socket.socket] = []
        self._lock = threading.Lock()

    def run(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._conns.append(conn)
            try:
                stream = conn.makefile("rwb")
                raw = stream.readline()
                if raw:
                    stream.write(json.dumps(FULL_CAMPAIGN[0]).encode() + b"\n")
                    stream.flush()
                    self._die.wait()
            except (OSError, ValueError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def kill(self) -> None:
        self._die.set()
        # shutdown() before close(): a close alone does not wake a thread
        # blocked in accept() — the in-flight syscall pins the kernel
        # socket, and one more connect could slip in and be served.
        for fn in (lambda: self._listener.shutdown(socket.SHUT_RDWR), self._listener.close):
            try:
                fn()
            except OSError:
                pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            for fn in (lambda: conn.shutdown(socket.SHUT_RDWR), conn.close):
                try:
                    fn()
                except OSError:
                    pass


class MidCampaignFailover(Scenario):
    """A client's campaign races backend A's death; B has the replica."""

    name = "backend-dies-mid-campaign"
    stall_timeout = 0.1
    deadlock_timeout = 15.0

    def start(self, controller):
        dying = _DyingBackend()
        healthy = _NdjsonBackend(FULL_CAMPAIGN)
        dying.start()
        healthy.start()
        sleeps: list[float] = []
        pool = BackendPool(
            [dying.address, healthy.address],
            retries=1,
            backoff_base_s=0.001,
            sleep=sleeps.append,
        )
        context = {
            "dying": dying,
            "healthy": healthy,
            "pool": pool,
            "sleeps": sleeps,
            "key": _key_owned_by(pool, dying.address),
            "documents": None,
        }

        def client():
            context["documents"] = pool.request(context["key"], {"op": "campaign", "id": 7})

        def killer():
            sync_point("test.backend.kill")
            dying.kill()

        controller.spawn("client", client)
        controller.spawn("killer", killer)
        return context

    def check(self, context):
        pool = context["pool"]
        documents = context["documents"]
        assert documents is not None, "client never completed"
        # Each campaign row exactly once: the partial stream from A is
        # discarded wholesale — the returned exchange is B's, complete.
        rows = [doc["row"] for doc in documents if "row" in doc]
        assert rows == [1, 2], f"campaign rows duplicated/dropped/reordered: {rows}"
        assert [doc for doc in documents if doc.get("done")] == [FULL_CAMPAIGN[-1]]
        stats = pool.stats()
        assert stats["failovers"] == 1, stats
        assert stats["per_backend"][context["dying"].address]["up"] is False
        assert stats["per_backend"][context["healthy"].address]["up"] is True
        # Exponential backoff fired exactly once per retry on the dead
        # owner (retries=1 -> one sleep of the base), never on B.
        assert context["sleeps"] == [0.001], context["sleeps"]

    def cleanup(self, context):
        context["pool"].close()
        context["dying"].kill()
        context["healthy"].close()


class TestMidCampaignFailoverExploration:
    def test_every_kill_timing_preserves_rows_exactly_once(self):
        result = explore(MidCampaignFailover(), max_depth=8, max_schedules=200)
        assert not result.failures, result.failures[0].describe(result.scenario)
        assert result.schedules >= 5, result.summary()
        assert not result.truncated, result.summary()
        assert result.divergences == 0, result.summary()

    def test_scripted_kill_mid_stream_discards_partial_rows(self):
        # The client has already read row 1 from A when the host dies:
        # the mid-stream EOF must throw away the partial exchange and the
        # returned documents must be B's complete campaign.
        scenario = MidCampaignFailover()
        controller = ScheduleController(stall_timeout=0.1, deadlock_timeout=15.0)
        with controller.install():
            context = scenario.start(controller)
            try:
                controller.drive([
                    "client",                        # start -> first attempt
                    "client@cluster.pool.attempt",   # send to A
                    "client@cluster.client.sent",    # read row 1 from A
                    "killer",                        # start -> poised to kill
                    "killer@test.backend.kill",      # A dies under the stream
                ])
                points = [point for _, point in controller.trace]
                assert "cluster.pool.failover" in points
                scenario.check(context)
            finally:
                scenario.cleanup(context)

    def test_scripted_kill_before_connect_fails_over_without_sending(self):
        # A dies before the client ever connects: every attempt on A is a
        # refused connect (no bytes sent), so the one and only successful
        # send of the whole exchange is to B.
        scenario = MidCampaignFailover()
        controller = ScheduleController(stall_timeout=0.1, deadlock_timeout=15.0)
        with controller.install():
            context = scenario.start(controller)
            try:
                controller.drive([
                    "killer",
                    "killer@test.backend.kill",
                    "client",
                ])
                sends = [actor for actor, point in controller.trace
                         if point == "cluster.client.sent"]
                assert sends == ["client"], sends
                scenario.check(context)
            finally:
                scenario.cleanup(context)


class TestHealthProbeBoundaries:
    """healthy -> dead -> probed -> healed, with backoff pinned exactly."""

    def test_probe_heals_then_lying_probe_costs_one_budget(self):
        healthy = _NdjsonBackend([{"ok": True, "echo": 1}])
        healthy.start()
        dead_address = f"127.0.0.1:{_free_port()}"
        sleeps: list[float] = []
        pool = BackendPool(
            [dead_address, healthy.address],
            retries=2,
            backoff_base_s=0.001,
            sleep=sleeps.append,
        )
        try:
            key = _key_owned_by(pool, dead_address)
            # Healthy -> dead: 1 + retries attempts on the owner, backoff
            # strictly between attempts (none before the first, none after
            # the last): exactly ``retries`` sleeps, doubling from base.
            assert pool.request(key, {"id": 1}) == [{"ok": True, "echo": 1}]
            assert sleeps == [0.001, 0.002], sleeps
            assert not pool.host_up(dead_address)
            # Down hosts are deferred, not retried: the next request goes
            # straight to the healthy replica with zero sleeps and no new
            # failover (rank 0 of the reordered schedule succeeds).
            sleeps.clear()
            assert pool.request(key, {"id": 2}) == [{"ok": True, "echo": 1}]
            assert sleeps == []
            assert pool.stats()["failovers"] == 1
            # Probed -> healed: the probe flips the host up and back to the
            # front of the failover order.
            pool.mark_probe(dead_address, up=True)
            assert pool.host_up(dead_address)
            # The probe lied (host still refuses connects): exactly one
            # more exhausted budget — same backoff ladder — then down again.
            sleeps.clear()
            assert pool.request(key, {"id": 3}) == [{"ok": True, "echo": 1}]
            assert sleeps == [0.001, 0.002], sleeps
            assert not pool.host_up(dead_address)
            assert pool.stats()["failovers"] == 2
        finally:
            pool.close()
            healthy.close()

    def test_zero_retries_means_one_attempt_and_no_backoff(self):
        healthy = _NdjsonBackend([{"ok": True, "echo": 2}])
        healthy.start()
        dead_address = f"127.0.0.1:{_free_port()}"
        sleeps: list[float] = []
        pool = BackendPool(
            [dead_address, healthy.address],
            retries=0,
            backoff_base_s=0.001,
            sleep=sleeps.append,
        )
        try:
            key = _key_owned_by(pool, dead_address)
            assert pool.request(key, {"id": 4}) == [{"ok": True, "echo": 2}]
            assert sleeps == [], "backoff must not fire before the first attempt"
            stats = pool.stats()
            assert stats["per_backend"][dead_address]["retries"] == 0
            assert stats["per_backend"][dead_address]["requests"] == 1
        finally:
            pool.close()
            healthy.close()
