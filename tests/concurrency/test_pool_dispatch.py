"""Exhaustive interleaving checks for SCM_RIGHTS dispatch + crash restart.

``WorkerPool._dispatch`` is driven directly against stub worker handles
(real AF_UNIX socketpairs, no forking), so each explored schedule runs
in microseconds.  A supervisor actor re-enacts the crash-then-restart
timeline of the health loop: the worker's end of the fd channel closes
(what the OS does when a worker dies), the liveness flag flips (what
``Process.is_alive`` eventually reports), and the slot is re-spawned
under the pool lock — interleaved arbitrarily with a dispatch in flight.

The invariant on every schedule: the accepted connection is handed off
**exactly once** — delivered to exactly one live worker channel, or
delivered-then-lost only when the crash demonstrably closed the channel
*after* the hand-off (the documented contract: a worker crash can only
drop the connections that worker already held).
"""

from __future__ import annotations

import os
import socket
import threading
from types import SimpleNamespace

from repro.engine.pool import WorkerPool
from repro.testing import Scenario, ScheduleController, explore, sync_point


class _StubProcess:
    def __init__(self):
        self.alive = True

    def is_alive(self):
        return self.alive


def _handle(index):
    parent, child = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    return SimpleNamespace(
        index=index, process=_StubProcess(), fd_channel=parent, child=child
    )


def _drain_fds(sock):
    """Count (and close) fds delivered to one worker channel end."""

    delivered = 0
    try:
        sock.setblocking(False)
        while True:
            msg, fds, _flags, _addr = socket.recv_fds(sock, 16, 8)
            if not msg and not fds:
                break
            delivered += len(fds)
            for fd in fds:
                os.close(fd)
    except (BlockingIOError, OSError):
        pass
    return delivered


class CrashRestartDispatch(Scenario):
    """One dispatch races a worker-0 crash and its supervised restart."""

    name = "scm-rights-crash-restart"
    stall_timeout = 0.05
    deadlock_timeout = 10.0

    def start(self, controller):
        handles = [_handle(0), _handle(1)]
        pool = SimpleNamespace(_lock=threading.Lock(), _handles=handles, _rr=0)
        conn_server, conn_client = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        context = {
            "pool": pool,
            "old0": handles[0],
            "w1": handles[1],
            "new0": None,
            "conn": (conn_server, conn_client),
            "result": None,
            "lost_to_crash": 0,
        }

        def dispatcher():
            context["result"] = WorkerPool._dispatch(pool, conn_server)

        def supervisor():
            old = context["old0"]
            # The worker process dies: the OS closes its end of the fd
            # channel.  Anything already queued there is lost with it —
            # count it first, exactly once, as delivered-then-lost.
            context["lost_to_crash"] = _drain_fds(old.child)
            old.child.close()
            sync_point("test.crash.flagged")
            # is_alive() catches up with reality.
            old.process.alive = False
            sync_point("test.respawn")
            # The health loop forks a replacement in the same slot, under
            # the pool lock, after closing the supervisor-side channel.
            with pool._lock:
                if pool._handles[0] is old:
                    old.fd_channel.close()
                    replacement = _handle(0)
                    context["new0"] = replacement
                    pool._handles[0] = replacement

        controller.spawn("dispatch", dispatcher)
        controller.spawn("supervisor", supervisor)
        return context

    def check(self, context):
        assert context["result"] is True, "dispatch found no live worker"
        live = 0
        for handle in (context["new0"], context["w1"]):
            if handle is not None:
                live += _drain_fds(handle.child)
        total = live + context["lost_to_crash"]
        assert total == 1, (
            f"connection handed off {total} times "
            f"(live={live}, lost_to_crash={context['lost_to_crash']})"
        )

    def cleanup(self, context):
        for handle in (context["old0"], context["w1"], context["new0"]):
            if handle is None:
                continue
            for sock in (handle.fd_channel, handle.child):
                try:
                    sock.close()
                except OSError:
                    pass
        for sock in context["conn"]:
            try:
                sock.close()
            except OSError:
                pass


class TestCrashRestartExploration:
    def test_every_interleaving_hands_off_exactly_once(self):
        result = explore(CrashRestartDispatch(), max_depth=10, max_schedules=300)
        assert not result.failures, result.failures[0].describe(result.scenario)
        assert result.schedules >= 10, result.summary()
        assert not result.truncated, result.summary()
        assert result.divergences == 0, result.summary()

    def test_crash_between_liveness_check_and_send_fails_over(self):
        # The classic TOCTOU window: dispatch has already passed
        # ``is_alive`` for worker 0 (blocked at pool.dispatch.pick), then
        # the channel dies under it.  The send must fail over to worker 1.
        scenario = CrashRestartDispatch()
        controller = ScheduleController(stall_timeout=0.05, deadlock_timeout=10.0)
        with controller.install():
            context = scenario.start(controller)
            try:
                # Releasing an actor *from* a point runs its next segment:
                # dispatch paused at pick has passed is_alive(w0) but not
                # yet sent; the supervisor's start segment then closes the
                # channel under it before the send goes out.
                controller.drive([
                    "dispatch",                            # start -> paused at pick
                    "supervisor",                          # worker dies: channel closes
                    "dispatch@pool.dispatch.pick",         # send now -> EPIPE on w0
                    "dispatch@pool.dispatch.send_failed",  # move on to w1
                    "dispatch@pool.dispatch.pick",         # w1 is alive
                    "dispatch@pool.dispatch.sent",         # delivered
                    "supervisor@test.crash.flagged",
                    "supervisor@test.respawn",
                ])
                points = [point for _, point in controller.trace]
                assert "pool.dispatch.send_failed" in points
                assert context["result"] is True
                assert _drain_fds(context["w1"].child) == 1
            finally:
                scenario.cleanup(context)

    def test_restart_completes_before_dispatch_lands_on_new_worker(self):
        # Crash + restart fully first: dispatch must deliver to the
        # replacement worker in slot 0 (round-robin still starts there).
        scenario = CrashRestartDispatch()
        controller = ScheduleController(stall_timeout=0.05, deadlock_timeout=10.0)
        with controller.install():
            context = scenario.start(controller)
            try:
                controller.drive([
                    "supervisor",
                    "supervisor@test.crash.flagged",
                    "supervisor@test.respawn",
                    "dispatch",
                    "dispatch@pool.dispatch.pick",
                    "dispatch@pool.dispatch.sent",
                ])
                assert context["result"] is True
                assert _drain_fds(context["new0"].child) == 1
                assert _drain_fds(context["w1"].child) == 0
            finally:
                scenario.cleanup(context)
