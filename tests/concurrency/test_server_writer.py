"""Ordered-response writer and micro-batch queue under scripted schedules.

``_OrderedResponseWriter`` is the state machine that turns concurrent
request execution back into strict FIFO responses per connection.  The
exploration grants ``write``/``finish`` to concurrent slot owners in
every order within the depth bound and asserts the output line order
never changes.  The mutation test re-seeds the race the slot logic
exists to prevent (a writer that skips the slot wait) and requires the
explorer to catch it with a replayable schedule.

The micro-batch tests script ``submit`` arrivals against the live
batcher task: enqueues released back-to-back coalesce into one batch;
with a zero window, serialised arrivals form one batch each.
"""

from __future__ import annotations

import asyncio
import json
from types import SimpleNamespace

import pytest

from repro.engine.server import PredictionServer, _OrderedResponseWriter
from repro.testing import (
    Scenario,
    ScheduleController,
    background_event_loop,
    explore,
    replay,
    sync_point_async,
)


class _StubStream:
    """Duck-typed asyncio.StreamWriter: records written NDJSON lines."""

    def __init__(self):
        self.lines = []

    def write(self, data: bytes) -> None:
        self.lines.append(json.loads(data))

    async def drain(self) -> None:
        return None


class OrderedWriterScenario(Scenario):
    """N concurrent responders; output must be FIFO on every schedule."""

    name = "ordered-writer"
    stall_timeout = 0.05
    deadlock_timeout = 10.0
    actors = 2

    def make_writer(self, stream):
        return _OrderedResponseWriter(stream)

    def start(self, controller):
        stream = _StubStream()
        context = {"stream": stream, "loop_cm": background_event_loop()}
        loop = context["loop_cm"].__enter__()
        writer = self.make_writer(stream)

        async def respond(seq: int) -> None:
            await writer.write(seq, {"id": seq})
            await writer.finish(seq)

        for seq in range(self.actors):
            controller.spawn_task(f"r{seq}", respond(seq), loop)
        return context

    def check(self, context):
        ids = [line["id"] for line in context["stream"].lines]
        assert ids == list(range(self.actors)), f"responses reordered: {ids}"

    def cleanup(self, context):
        context["loop_cm"].__exit__(None, None, None)


class RacyWriter(_OrderedResponseWriter):
    """The seeded mutation: ``write`` skips the slot wait entirely."""

    async def write(self, seq, document):
        await sync_point_async("server.writer.write")
        async with self._cond:
            self._writer.write(json.dumps(document).encode() + b"\n")
            await self._writer.drain()


class RacyWriterScenario(OrderedWriterScenario):
    name = "ordered-writer-mutated"

    def make_writer(self, stream):
        return RacyWriter(stream)


class TestOrderedWriterExploration:
    def test_every_interleaving_preserves_fifo_output(self):
        result = explore(OrderedWriterScenario(), max_depth=8, max_schedules=120)
        assert not result.failures, result.failures[0].describe(result.scenario)
        assert result.schedules >= 4, result.summary()
        assert not result.truncated, result.summary()
        assert result.divergences == 0, result.summary()

    def test_mutated_writer_is_caught_with_replayable_schedule(self):
        result = explore(RacyWriterScenario(), max_depth=8, max_schedules=120)
        assert result.failures, "explorer missed the seeded writer race"
        failure = result.failures[0]
        with pytest.raises(AssertionError, match="reordered"):
            replay(RacyWriterScenario(), failure.choices)

    def test_three_slots_granted_in_reverse_still_emit_in_order(self):
        scenario = OrderedWriterScenario()
        scenario.actors = 3
        controller = ScheduleController(stall_timeout=0.05, deadlock_timeout=10.0)
        with controller.install():
            context = scenario.start(controller)
            try:
                # Grant the writes in reverse slot order: r2 and r1 enter
                # the condition first and sleep on their slots; r0 unblocks
                # the chain.  Output must still be 0, 1, 2.
                controller.drive([
                    "r2", "r2@server.writer.write",
                    "r1", "r1@server.writer.write",
                    "r0", "r0@server.writer.write",
                ])
                scenario.check(context)
            finally:
                scenario.cleanup(context)


def _stub_prediction(target_cores):
    """Minimal baseline-prediction shape accepted by ``result_payload``."""

    return SimpleNamespace(
        workload="stub",
        machine="testbench",
        measured=SimpleNamespace(cores=[1, 2, 4]),
        target_cores=target_cores,
        predicted_peak_cores=lambda: target_cores,
        prediction_cores=[target_cores],
        predicted_times=[1.0],
        extrapolation=SimpleNamespace(kernel_name="amdahl"),
    )


class _RecordingService:
    """predict_batch stub: records batch compositions, echoes markers."""

    def __init__(self):
        self.batches = []

    def predict_batch(self, requests):
        self.batches.append([request.target_cores for request in requests])
        return [_stub_prediction(request.target_cores) for request in requests]


@pytest.fixture(scope="module")
def payloads(intruder_opteron_sweep):
    measured = intruder_opteron_sweep.restrict_to(12)
    return [
        {"id": f"c{target}", "target_cores": target, "measurements": measured.to_dict()}
        for target in (24, 36)
    ]


class TestMicroBatchSchedules:
    def _submit_scenario(self, payloads, *, window_ms, schedule):
        service = _RecordingService()
        server = PredictionServer(
            service=service, max_batch=8, batch_window_ms=window_ms, queue_limit=16
        )
        controller = ScheduleController(stall_timeout=0.1, deadlock_timeout=15.0)
        results = {}

        async def client(name, payload):
            results[name] = await server.submit(payload)

        with background_event_loop() as loop:
            try:
                with controller.install():
                    controller.spawn_task("a", client("a", payloads[0]), loop)
                    controller.spawn_task("b", client("b", payloads[1]), loop)
                    controller.drive(schedule)
            finally:
                asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
        for name, target in (("a", 24), ("b", 36)):
            response = results[name]
            assert response["ok"] is True, response
            assert response["result"]["target_cores"] == target
        return service

    def test_back_to_back_enqueues_coalesce_into_one_batch(self, payloads):
        # Both enqueues released before the 300 ms window closes: the
        # batcher must see one batch of two.
        service = self._submit_scenario(
            payloads,
            window_ms=300.0,
            schedule=["a", "b", "a@server.submit.enqueue", "b@server.submit.enqueue"],
        )
        assert service.batches == [[24, 36]]

    def test_zero_window_serial_arrivals_form_singleton_batches(self, payloads):
        # b's enqueue is withheld until a's response resolved: with no
        # coalescing window each arrival is its own batch.
        service = self._submit_scenario(
            payloads,
            window_ms=0.0,
            schedule=["a", "a@server.submit.enqueue", "b", "b@server.submit.enqueue"],
        )
        assert service.batches == [[24], [36]]
