"""Unit tests for the schedule-control substrate itself.

The centrepiece is the mutation test: a deliberately racy read-modify-
write counter whose lost update the explorer must find and report as a
replayable schedule — the end-to-end proof that the harness can catch
real interleaving bugs, not just replay happy paths.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.testing import (
    DeadlockError,
    KNOWN_SYNC_POINTS,
    ScheduleController,
    ScheduleError,
    Scenario,
    assert_parallel_execution,
    background_event_loop,
    clear_barriers,
    explore,
    format_schedule,
    get_barrier,
    install_controller,
    installed_controller,
    replay,
    set_sync_debug,
    sync_point,
    sync_point_async,
    uninstall_controller,
)

FAST = dict(stall_timeout=0.05, deadlock_timeout=5.0)


class TestSyncPointNoController:
    def test_noop_without_controller(self):
        assert installed_controller() is None
        sync_point("anything")  # must simply return

    def test_unregistered_thread_passes_through(self):
        controller = ScheduleController(**FAST)
        with controller.install():
            sync_point("pool.dispatch.pick")  # main thread is not an actor

    def test_known_sync_points_are_threaded_through_the_engine(self):
        from pathlib import Path

        engine = Path(__file__).resolve().parents[2] / "src" / "repro" / "engine"
        source = "\n".join(p.read_text() for p in engine.rglob("*.py"))
        for name in KNOWN_SYNC_POINTS:
            assert f'"{name}"' in source, f"sync point {name} missing from engine"


class TestScheduleController:
    def test_scripted_order_is_obeyed(self):
        controller = ScheduleController(**FAST)
        out = []

        def actor(tag):
            sync_point("work")
            out.append(tag)
            sync_point("again")
            out.append(tag.lower())

        with controller.install():
            controller.spawn("a", actor, "A")
            controller.spawn("b", actor, "B")
            trace = controller.drive(
                ["b", "a", "b@work", "a@work", "b@again", "a@again"]
            )
        assert out == ["B", "A", "b", "a"]
        assert trace == [
            ("b", "start"), ("a", "start"),
            ("b", "work"), ("a", "work"),
            ("b", "again"), ("a", "again"),
        ]

    def test_reversed_script_reverses_effects(self):
        controller = ScheduleController(**FAST)
        out = []

        def actor(tag):
            sync_point("work")
            out.append(tag)

        with controller.install():
            controller.spawn("a", actor, "A")
            controller.spawn("b", actor, "B")
            controller.drive(["a", "b", "a", "b"])
        assert out == ["A", "B"]

    def test_divergent_script_raises_with_trace(self):
        controller = ScheduleController(**FAST)

        def actor():
            sync_point("work")

        with controller.install():
            controller.spawn("a", actor)
            with pytest.raises(ScheduleError, match="enabled"):
                controller.drive(["nope"])

    def test_wrong_point_annotation_raises(self):
        controller = ScheduleController(**FAST)

        def actor():
            sync_point("work")

        with controller.install():
            controller.spawn("a", actor)
            with pytest.raises(ScheduleError, match="blocked at"):
                controller.drive(["a@elsewhere"])

    def test_actor_exception_is_reraised_by_drive(self):
        controller = ScheduleController(**FAST)

        def boom():
            sync_point("work")
            raise ValueError("kaput")

        with controller.install():
            controller.spawn("a", boom)
            with pytest.raises(ValueError, match="kaput"):
                controller.drive()
        assert isinstance(controller.errors()["a"], ValueError)

    def test_stalled_actor_is_not_schedulable_and_wakes_on_its_own(self):
        # Actor b sleeps on a real lock held by a: only a is enabled
        # while it holds the lock; b finishes once a releases it.
        controller = ScheduleController(**FAST)
        lock = threading.Lock()
        order = []

        def holder():
            with lock:
                sync_point("inside")
                order.append("a")

        def waiter():
            sync_point("about-to-wait")
            with lock:
                order.append("b")

        with controller.install():
            controller.spawn("a", holder)
            controller.spawn("b", waiter)
            controller.drive(["a", "b", "b@about-to-wait", "a@inside"])
        assert order == ["a", "b"]

    def test_deadlock_detection_on_stalled_only_state(self):
        controller = ScheduleController(stall_timeout=0.05, deadlock_timeout=0.4)
        lock = threading.Lock()
        lock.acquire()
        try:
            def stuck():
                sync_point("go")
                with lock:
                    pass

            with controller.install():
                controller.spawn("a", stuck)
                controller.release(controller.wait_quiescent()[0])  # a@start
                controller.release(controller.wait_quiescent()[0])  # a@go
                with pytest.raises(DeadlockError, match="stalled"):
                    controller.wait_quiescent()
        finally:
            lock.release()

    def test_double_install_rejected(self):
        first = ScheduleController(**FAST)
        second = ScheduleController(**FAST)
        install_controller(first)
        try:
            with pytest.raises(ScheduleError, match="already installed"):
                install_controller(second)
        finally:
            uninstall_controller(first)

    def test_async_actors_follow_script(self):
        out = []

        async def actor(tag):
            await sync_point_async("work")
            out.append(tag)
            await sync_point_async("again")
            out.append(tag.lower())

        controller = ScheduleController(**FAST)
        with background_event_loop() as loop:
            with controller.install():
                controller.spawn_task("x", actor("X"), loop)
                controller.spawn_task("y", actor("Y"), loop)
                controller.drive(["y", "x", "y@work", "x@work", "x@again", "y@again"])
        assert out == ["Y", "X", "x", "y"]

    def test_mixed_thread_and_task_actors(self):
        out = []

        def threaded():
            sync_point("t")
            out.append("thread")

        async def tasked():
            await sync_point_async("c")
            out.append("coro")

        controller = ScheduleController(**FAST)
        with background_event_loop() as loop:
            with controller.install():
                controller.spawn("t", threaded)
                controller.spawn_task("c", tasked(), loop)
                controller.drive(["c", "t", "c@c", "t@t"])
        assert out == ["coro", "thread"]


class TestBarriers:
    def test_named_barrier_is_shared(self):
        b1 = get_barrier("gate", 2)
        b2 = get_barrier("gate", 2)
        assert b1 is b2

    def test_parties_mismatch_rejected(self):
        get_barrier("gate", 2)
        with pytest.raises(ValueError, match="parties"):
            get_barrier("gate", 3)

    def test_clear_barriers_aborts_waiters(self):
        barrier = get_barrier("gate", 2)
        errors = []

        def waiter():
            try:
                barrier.wait(timeout=5.0)
            except threading.BrokenBarrierError:
                errors.append("broken")

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        clear_barriers()
        thread.join(5.0)
        assert errors == ["broken"]
        assert get_barrier("gate", 3).parties == 3  # registry was emptied


class TestAssertParallelExecution:
    def test_overlapping_callables_pass(self):
        barrier = get_barrier("overlap", 2)
        spans = assert_parallel_execution(
            [lambda: barrier.wait(5.0), lambda: barrier.wait(5.0)]
        )
        assert len(spans) == 2

    def test_serialised_work_windows_fail(self):
        # Callables report their actual work windows; a mutex around the
        # work serialises them, so there is no common instant.
        lock = threading.Lock()

        def critical():
            with lock:
                start = time.monotonic()
                time.sleep(0.05)
                return (start, time.monotonic())

        with pytest.raises(AssertionError, match="concurrently"):
            assert_parallel_execution([critical, critical])

    def test_reported_windows_pass_when_overlapping(self):
        barrier = get_barrier("windows", 2)

        def work():
            barrier.wait(5.0)
            start = time.monotonic()
            time.sleep(0.05)
            return (start, time.monotonic())

        spans = assert_parallel_execution([work, work])
        assert max(s for s, _ in spans) < min(e for _, e in spans)

    def test_errors_propagate(self):
        def boom():
            raise RuntimeError("inside")

        with pytest.raises(RuntimeError, match="inside"):
            assert_parallel_execution([boom, lambda: None])

    def test_needs_two_callables(self):
        with pytest.raises(ValueError):
            assert_parallel_execution([lambda: None])


class TestSyncDebug:
    def test_arrivals_logged_when_enabled(self, capsys):
        set_sync_debug(True)
        sync_point("debug.check")
        set_sync_debug(False)
        sync_point("debug.silent")
        err = capsys.readouterr().err
        assert "point=debug.check" in err
        assert "debug.silent" not in err


# ---------------------------------------------------------------------------
# The mutation test: a seeded race the explorer must catch.
# ---------------------------------------------------------------------------


class RacyCounter(Scenario):
    """Two writers do an unsynchronised read-modify-write: a seeded race."""

    name = "racy-counter"
    stall_timeout = 0.05
    deadlock_timeout = 5.0

    def start(self, controller):
        state = {"n": 0}

        def increment():
            sync_point("read")
            value = state["n"]
            sync_point("write")
            state["n"] = value + 1

        controller.spawn("w1", increment)
        controller.spawn("w2", increment)
        return state

    def check(self, state):
        assert state["n"] == 2, f"lost update: n={state['n']}"


class LockedCounter(RacyCounter):
    """Same shape with a lock: the fixed version must pass every schedule."""

    name = "locked-counter"

    def start(self, controller):
        state = {"n": 0}
        lock = threading.Lock()

        def increment():
            sync_point("enter")
            with lock:
                sync_point("read")
                value = state["n"]
                sync_point("write")
                state["n"] = value + 1

        controller.spawn("w1", increment)
        controller.spawn("w2", increment)
        return state


class TestExplorer:
    def test_seeded_race_is_caught_with_replayable_schedule(self):
        result = explore(RacyCounter(), max_depth=8, max_schedules=100)
        assert result.failures, "explorer missed the seeded lost-update race"
        failure = result.failures[0]
        # The report is a replayable script...
        description = failure.describe(result.scenario)
        assert "replay" in description
        assert format_schedule(failure.trace) in description
        # ...and replaying those exact choices reproduces the bug.
        with pytest.raises(AssertionError, match="lost update"):
            replay(RacyCounter(), failure.choices)
        # raise_on_failure surfaces the same report.
        with pytest.raises(AssertionError, match="racy-counter"):
            result.raise_on_failure()

    def test_fixed_version_passes_every_schedule(self):
        result = explore(LockedCounter(), max_depth=10, max_schedules=200)
        assert result.schedules > 1, "exploration found no alternative schedules"
        assert not result.failures, result.failures[0].describe(result.scenario)
        assert not result.truncated
        assert result.divergences == 0
        result.raise_on_failure()  # no-op when clean

    def test_exploration_is_exhaustive_for_a_known_model(self):
        # Two actors x two sync points each, fully independent: the
        # schedule space is the interleavings of two sequences of three
        # steps (start, p1, p2): C(6, 3) = 20.
        class Independent(Scenario):
            name = "independent"
            stall_timeout = 0.05
            deadlock_timeout = 5.0

            def start(self, controller):
                def actor():
                    sync_point("p1")
                    sync_point("p2")

                controller.spawn("a", actor)
                controller.spawn("b", actor)
                return None

        result = explore(Independent(), max_depth=6, max_schedules=100)
        assert result.schedules == 20
        assert not result.failures and not result.truncated

    def test_replay_of_passing_schedule_returns_trace(self):
        trace = replay(LockedCounter(), ["w1", "w1", "w1", "w1", "w2"])
        assert trace[0] == ("w1", "start")
        assert ("w2", "write") in trace
