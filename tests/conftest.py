"""Shared pytest fixtures.

The expensive part of most integration tests is the simulated core-count sweep
plus the ESTIMA regression, so sweeps and predictions for the commonly used
(workload, machine) pairs are built once per session and shared.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the test suite from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import EstimaConfig, EstimaPredictor, MachineSimulator, get_machine, get_workload  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running stress tests (deselect with '-m \"not slow\"')",
    )


#: Core counts used by the shared Opteron sweeps: dense where measurements
#: happen (1..12) and coarser beyond, to keep the suite fast.
OPTERON_CORE_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48]
XEON20_CORE_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20]


@pytest.fixture(scope="session")
def opteron():
    return get_machine("opteron48")


@pytest.fixture(scope="session")
def xeon20():
    return get_machine("xeon20")


@pytest.fixture(scope="session")
def haswell():
    return get_machine("haswell_desktop")


@pytest.fixture(scope="session")
def opteron_simulator(opteron):
    return MachineSimulator(opteron)


@pytest.fixture(scope="session")
def xeon20_simulator(xeon20):
    return MachineSimulator(xeon20)


def _sweep(machine_name: str, workload_name: str, core_counts):
    simulator = MachineSimulator(get_machine(machine_name))
    return simulator.sweep(get_workload(workload_name), core_counts=list(core_counts))


@pytest.fixture(scope="session")
def intruder_opteron_sweep():
    """Full-machine intruder measurements on the Opteron (ground truth)."""
    return _sweep("opteron48", "intruder", OPTERON_CORE_COUNTS)


@pytest.fixture(scope="session")
def blackscholes_opteron_sweep():
    return _sweep("opteron48", "blackscholes", OPTERON_CORE_COUNTS)


@pytest.fixture(scope="session")
def kmeans_opteron_sweep():
    return _sweep("opteron48", "kmeans", OPTERON_CORE_COUNTS)


@pytest.fixture(scope="session")
def intruder_prediction(intruder_opteron_sweep):
    """ESTIMA prediction for intruder: measure on 12 cores, predict to 48."""
    measured = intruder_opteron_sweep.restrict_to(12)
    return EstimaPredictor(EstimaConfig()).predict(measured, target_cores=48)


@pytest.fixture(scope="session")
def blackscholes_prediction(blackscholes_opteron_sweep):
    measured = blackscholes_opteron_sweep.restrict_to(12)
    return EstimaPredictor(EstimaConfig()).predict(measured, target_cores=48)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
