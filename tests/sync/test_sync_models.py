"""Tests for the synchronization substrates (locks, barriers, STM, lock-free)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync import (
    BarrierModel,
    LockFreeModel,
    MutexModel,
    SpinlockModel,
    StmModel,
    SyncCost,
    combine_costs,
)

WORK_CYCLES = 3000.0


class TestSpinlock:
    def _lock(self, **overrides) -> SpinlockModel:
        kwargs = dict(acquires_per_op=1.0, critical_section_cycles=100.0, num_locks=1, kind="ttas")
        kwargs.update(overrides)
        return SpinlockModel(**kwargs)

    def test_single_thread_never_spins(self):
        cost = self._lock().cost(1, WORK_CYCLES)
        assert cost.software_stall_cycles["lock_spin_cycles"] == 0.0

    def test_spin_cycles_grow_with_threads(self):
        lock = self._lock()
        costs = [lock.cost(n, WORK_CYCLES).total_software_cycles for n in (2, 8, 24, 48)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_striping_reduces_contention(self):
        coarse = self._lock(num_locks=1).cost(24, WORK_CYCLES).total_software_cycles
        striped = self._lock(num_locks=64).cost(24, WORK_CYCLES).total_software_cycles
        assert striped < coarse

    def test_ticket_lock_avoids_release_storm(self):
        ttas = self._lock(kind="ttas").cost(48, WORK_CYCLES).total_software_cycles
        ticket = self._lock(kind="ticket").cost(48, WORK_CYCLES).total_software_cycles
        assert ticket <= ttas

    def test_serialization_floor_accounts_for_striping(self):
        coarse = self._lock(num_locks=1).cost(1, WORK_CYCLES).serialized_cycles
        striped = self._lock(num_locks=10).cost(1, WORK_CYCLES).serialized_cycles
        assert striped == pytest.approx(coarse / 10.0)

    def test_utilisation_bounded(self):
        lock = self._lock(critical_section_cycles=10_000.0)
        assert lock.utilisation(48, WORK_CYCLES) <= 0.98

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            self._lock(kind="mcs")

    def test_zero_acquires_is_free(self):
        cost = self._lock(acquires_per_op=0.0).cost(48, WORK_CYCLES)
        assert cost.total_software_cycles == 0.0


class TestMutex:
    def _mutex(self, **overrides) -> MutexModel:
        kwargs = dict(acquires_per_op=1.0, critical_section_cycles=200.0, num_locks=1)
        kwargs.update(overrides)
        return MutexModel(**kwargs)

    def test_single_thread_never_blocks(self):
        assert self._mutex().cost(1, WORK_CYCLES).total_software_cycles == 0.0

    def test_blocking_cost_exceeds_spinlock_at_moderate_contention(self):
        # The regime of the paper's streamcluster fix: short critical sections,
        # moderate contention — futex round trips dominate, so a test-and-set
        # spinlock is cheaper than the pthread mutex it replaces.
        work = 30_000.0
        mutex = self._mutex().cost(24, work).total_software_cycles
        spin = SpinlockModel(
            acquires_per_op=1.0, critical_section_cycles=200.0, num_locks=1
        ).cost(24, work).total_software_cycles
        assert mutex > spin

    def test_block_cycles_grow_with_threads(self):
        mutex = self._mutex()
        costs = [mutex.cost(n, WORK_CYCLES).total_software_cycles for n in (2, 12, 48)]
        assert costs == sorted(costs)

    def test_trylock_loop_reported(self):
        looping = self._mutex(trylock_loop=True).cost(24, WORK_CYCLES)
        assert looping.software_stall_cycles["lock_block_cycles"] > 0.0

    def test_serialization_grows_under_contention(self):
        light = self._mutex().cost(2, WORK_CYCLES).serialized_cycles
        heavy = self._mutex().cost(48, WORK_CYCLES).serialized_cycles
        assert heavy > light


class TestBarrier:
    def _barrier(self, **overrides) -> BarrierModel:
        kwargs = dict(barriers_per_op=0.01, phase_cycles_per_op=2000.0, imbalance_cv=0.2)
        kwargs.update(overrides)
        return BarrierModel(**kwargs)

    def test_single_thread_is_free(self):
        assert self._barrier().cost(1, WORK_CYCLES).total_software_cycles == 0.0

    def test_wait_grows_with_threads(self):
        barrier = self._barrier()
        costs = [barrier.cost(n, WORK_CYCLES).total_software_cycles for n in (2, 12, 48)]
        assert costs == sorted(costs)

    def test_imbalance_wait_scales_with_cv(self):
        balanced = self._barrier(imbalance_cv=0.0).cost(24, WORK_CYCLES).total_software_cycles
        skewed = self._barrier(imbalance_cv=0.4).cost(24, WORK_CYCLES).total_software_cycles
        assert skewed > balanced

    def test_trylock_barrier_is_more_expensive(self):
        plain = self._barrier().cost(48, WORK_CYCLES).total_software_cycles
        trylock = self._barrier(trylock_based=True).cost(48, WORK_CYCLES).total_software_cycles
        assert trylock > plain

    def test_expected_wait_fraction_grows_slowly(self):
        barrier = self._barrier()
        assert barrier.expected_wait_fraction(1) == 0.0
        assert 0.0 < barrier.expected_wait_fraction(8) < barrier.expected_wait_fraction(48)


class TestStm:
    def _stm(self, **overrides) -> StmModel:
        kwargs = dict(
            tx_per_op=1.0,
            tx_body_cycles=1000.0,
            tx_accesses=100.0,
            write_footprint=8.0,
            conflict_table_size=20_000.0,
            contention_growth=2.0,
        )
        kwargs.update(overrides)
        return StmModel(**kwargs)

    def test_single_thread_never_aborts(self):
        stm = self._stm()
        assert stm.aborts_per_commit(1) == 0.0
        assert stm.cost(1, WORK_CYCLES).software_stall_cycles["stm_aborted_tx_cycles"] == 0.0

    def test_aborts_grow_with_threads(self):
        stm = self._stm()
        aborts = [stm.aborts_per_commit(n) for n in (2, 12, 24, 48)]
        assert aborts == sorted(aborts)
        assert aborts[-1] > aborts[0]

    def test_aborts_capped(self):
        stm = self._stm(write_footprint=100.0, conflict_table_size=100.0, contention_growth=2.5)
        assert stm.aborts_per_commit(48) <= 40.0

    def test_abort_probability_consistent_with_aborts(self):
        stm = self._stm()
        aborts = stm.aborts_per_commit(24)
        assert stm.abort_probability(24) == pytest.approx(aborts / (1.0 + aborts))

    def test_bigger_conflict_table_means_fewer_aborts(self):
        small = self._stm(conflict_table_size=1_000.0).aborts_per_commit(24)
        large = self._stm(conflict_table_size=1_000_000.0).aborts_per_commit(24)
        assert large < small

    def test_aborted_cycles_proportional_to_tx_rate(self):
        one = self._stm(tx_per_op=1.0).cost(24, WORK_CYCLES).total_software_cycles
        two = self._stm(tx_per_op=2.0).cost(24, WORK_CYCLES).total_software_cycles
        assert two == pytest.approx(2.0 * one, rel=1e-6)

    def test_zero_transactions_is_free(self):
        assert self._stm(tx_per_op=0.0).cost(48, WORK_CYCLES).total_software_cycles == 0.0

    def test_committed_overhead_positive(self):
        assert self._stm().committed_overhead_cycles() > 0.0


class TestLockFree:
    def _lf(self, **overrides) -> LockFreeModel:
        kwargs = dict(cas_per_op=0.5, retry_body_cycles=200.0, hot_locations=1000.0)
        kwargs.update(overrides)
        return LockFreeModel(**kwargs)

    def test_single_thread_never_retries(self):
        assert self._lf().failure_probability(1) == 0.0

    def test_failures_grow_with_threads_and_are_bounded(self):
        lf = self._lf()
        probs = [lf.failure_probability(n) for n in (2, 12, 48)]
        assert probs == sorted(probs)
        assert probs[-1] <= 0.9

    def test_more_hot_locations_reduce_retries(self):
        few = self._lf(hot_locations=10.0).cost(24, WORK_CYCLES).total_software_cycles
        many = self._lf(hot_locations=100_000.0).cost(24, WORK_CYCLES).total_software_cycles
        assert many < few

    def test_read_only_workload_never_retries(self):
        assert self._lf(update_fraction=0.0).failure_probability(48) == 0.0


class TestSyncCost:
    def test_combine_costs_sums_categories(self):
        a = SyncCost(software_stall_cycles={"x": 1.0}, extra_coherence_accesses=2.0, serialized_cycles=3.0)
        b = SyncCost(software_stall_cycles={"x": 4.0, "y": 5.0}, extra_coherence_accesses=1.0)
        merged = combine_costs(a, b)
        assert merged.software_stall_cycles == {"x": 5.0, "y": 5.0}
        assert merged.extra_coherence_accesses == 3.0
        assert merged.serialized_cycles == 3.0
        assert merged.total_software_cycles == 10.0

    def test_combine_nothing_is_empty(self):
        merged = combine_costs()
        assert merged.total_software_cycles == 0.0

    @given(threads=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_all_models_produce_finite_nonnegative_costs(self, threads):
        models = [
            SpinlockModel(acquires_per_op=1.0, critical_section_cycles=100.0),
            MutexModel(acquires_per_op=1.0, critical_section_cycles=100.0),
            BarrierModel(barriers_per_op=0.01, phase_cycles_per_op=1000.0),
            StmModel(
                tx_per_op=1.0,
                tx_body_cycles=500.0,
                tx_accesses=50.0,
                write_footprint=5.0,
                conflict_table_size=10_000.0,
            ),
            LockFreeModel(cas_per_op=0.5, retry_body_cycles=100.0, hot_locations=100.0),
        ]
        for model in models:
            cost = model.cost(threads, WORK_CYCLES)
            assert cost.total_software_cycles >= 0.0
            assert cost.extra_coherence_accesses >= 0.0
            assert cost.serialized_cycles >= 0.0
