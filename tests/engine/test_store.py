"""Tests for the disk-backed cache tier and its wiring into ContentCache."""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.engine.cache import ContentCache, attach_disk_tier, detach_disk_tier, get_cache
from repro.engine.store import SCHEMA_VERSION, DiskStore, store_for


@pytest.fixture()
def store(tmp_path):
    return DiskStore(tmp_path / "cache", max_bytes=1 << 20)


class TestDiskStore:
    def test_roundtrip(self, store):
        assert store.put("fit", "abcd1234", {"x": 1, "y": [1.0, 2.0]})
        value = store.get("fit", "abcd1234")
        assert not store.is_miss(value)
        assert value == {"x": 1, "y": [1.0, 2.0]}

    def test_absent_key_is_miss(self, store):
        assert store.is_miss(store.get("fit", "nope"))
        assert store.stats.reads == 1
        assert store.stats.read_hits == 0

    def test_none_is_storable(self, store):
        store.put("fit", "aa11", None)
        value = store.get("fit", "aa11")
        assert not store.is_miss(value)
        assert value is None

    def test_regions_are_separate(self, store):
        store.put("fit", "aa11", "fit-value")
        store.put("extrapolation", "aa11", "ex-value")
        assert store.get("fit", "aa11") == "fit-value"
        assert store.get("extrapolation", "aa11") == "ex-value"
        assert set(store.regions()) == {"fit", "extrapolation"}

    def test_persists_across_instances(self, tmp_path):
        first = DiskStore(tmp_path / "c")
        first.put("fit", "aa11", ("shared", 42))
        second = DiskStore(tmp_path / "c")  # a "new process"
        assert second.get("fit", "aa11") == ("shared", 42)

    def test_schema_mismatch_is_ignored(self, store, tmp_path):
        store.put("fit", "aa11", "current")
        path = store._path("fit", "aa11")
        path.write_bytes(
            pickle.dumps({"schema": SCHEMA_VERSION + 1, "key": "aa11", "value": "stale"})
        )
        assert store.is_miss(store.get("fit", "aa11"))
        assert store.stats.invalid_entries == 1

    def test_corrupt_file_is_ignored(self, store):
        store.put("fit", "aa11", "value")
        store._path("fit", "aa11").write_bytes(b"\x00not a pickle")
        assert store.is_miss(store.get("fit", "aa11"))
        assert store.stats.invalid_entries == 1

    def test_size_bounded_lru_eviction(self, tmp_path):
        store = DiskStore(tmp_path / "c", max_bytes=2048)
        payload = "x" * 256  # each entry ~ a few hundred bytes pickled
        for i in range(16):
            store.put("fit", f"k{i:02d}", payload)
        assert store.total_bytes() <= 2048
        assert store.stats.evictions > 0
        assert 0 < store.entry_count() < 16
        # The most recently written keys survive.
        assert store.get("fit", "k15") == payload

    def test_read_refreshes_recency(self, tmp_path):
        store = DiskStore(tmp_path / "c", max_bytes=1600)
        payload = "x" * 128
        store.put("fit", "keep", payload)
        store.put("fit", "other", payload)
        for i in range(12):
            store.get("fit", "keep")  # keep it hot
            store.put("fit", f"filler{i}", payload)
        assert store.get("fit", "keep") == payload

    def test_clear_whole_store_and_region(self, store):
        store.put("fit", "aa11", 1)
        store.put("extrapolation", "bb22", 2)
        assert store.clear("fit") == 1
        assert store.is_miss(store.get("fit", "aa11"))
        assert store.get("extrapolation", "bb22") == 2
        assert store.clear() == 1
        assert store.entry_count() == 0

    def test_describe_is_json_friendly(self, store):
        import json

        store.put("fit", "aa11", np.arange(4))
        json.dumps(store.describe())  # must not raise

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStore(tmp_path, max_bytes=0)

    def test_store_for_shares_instances(self, tmp_path):
        a = store_for(tmp_path / "shared")
        b = store_for(tmp_path / "shared")
        assert a is b


_MP_BUDGET = 32 * 1024
_MP_PAYLOAD = "x" * 1024


def _mp_writer(root, seed: str) -> None:
    """One writer process: 60 ~1KB puts (over budget), interleaved reads."""
    store = DiskStore(root, max_bytes=_MP_BUDGET)
    for i in range(60):
        assert store.put("fit", f"{seed}{i:03d}", _MP_PAYLOAD)
        if i % 7 == 0:
            store.get("fit", f"{seed}{max(i - 3, 0):03d}")


def _mp_schema_reader(root) -> None:
    """Exit 0 iff the schema-mismatched entry reads as a clean miss."""
    store = DiskStore(root, max_bytes=_MP_BUDGET)
    value = store.get("fit", "aa11")
    if not store.is_miss(value) or store.stats.invalid_entries != 1:
        raise SystemExit(1)


class TestDiskStoreMultiProcess:
    """Satellite: concurrent writers never corrupt entries or bust the budget."""

    def test_two_writers_settle_within_budget_without_corruption(self, tmp_path):
        root = tmp_path / "shared"
        ctx = multiprocessing.get_context("fork")
        writers = [ctx.Process(target=_mp_writer, args=(root, seed)) for seed in ("aa", "bb")]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
        assert [proc.exitcode for proc in writers] == [0, 0]

        # After settling, the bytes actually on disk respect the budget even
        # though each process wrote ~2x the budget and never saw the other's
        # index — the flock'd rescan-then-evict step converges them.
        on_disk = list(root.rglob("*.entry"))
        total = sum(path.stat().st_size for path in on_disk)
        assert 0 < total <= _MP_BUDGET
        # Every surviving entry is intact: atomic writes mean a concurrent
        # reader/evictor can never have torn one.
        fresh = DiskStore(root, max_bytes=_MP_BUDGET)
        for path in on_disk:
            value = fresh.get("fit", path.stem)
            assert not fresh.is_miss(value)
            assert value == _MP_PAYLOAD
        assert fresh.stats.invalid_entries == 0

    def test_schema_mismatch_is_clean_miss_across_processes(self, tmp_path):
        root = tmp_path / "shared"
        store = DiskStore(root, max_bytes=_MP_BUDGET)
        store.put("fit", "aa11", "current")
        store._path("fit", "aa11").write_bytes(
            pickle.dumps({"schema": SCHEMA_VERSION + 1, "key": "aa11", "value": "stale"})
        )
        reader = multiprocessing.get_context("fork").Process(
            target=_mp_schema_reader, args=(root,)
        )
        reader.start()
        reader.join(timeout=60)
        assert reader.exitcode == 0

    def test_refresh_sees_entries_written_by_other_instances(self, tmp_path):
        first = DiskStore(tmp_path / "c")
        second = DiskStore(tmp_path / "c")  # a "second process"
        assert second.entry_count() == 0
        first.put("fit", "aa11", "value")
        second.refresh()
        assert second.entry_count() == 1
        assert second.total_bytes() > 0


class TestTieredContentCache:
    def test_disk_tier_serves_memory_misses(self, tmp_path):
        store = DiskStore(tmp_path / "c")
        cache = ContentCache("t", enabled=True, store=store)
        assert cache.get_or_compute("aa11", lambda: "computed") == "computed"
        assert cache.disk_stats.misses == 1  # both tiers missed: one compute
        cache.clear()  # simulate a fresh process (memory tier gone)
        calls = []
        value = cache.get_or_compute("aa11", lambda: calls.append(1) or "recomputed")
        assert value == "computed"  # served from disk, not recomputed
        assert calls == []
        assert cache.stats.misses == 2
        assert cache.disk_stats.hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ContentCache("t", enabled=True, store=DiskStore(tmp_path / "c"))
        cache.get_or_compute("aa11", lambda: "v")
        cache.clear()
        cache.get_or_compute("aa11", lambda: "other")  # disk hit, promoted
        cache.get_or_compute("aa11", lambda: "other")  # now a memory hit
        assert cache.stats.hits == 1
        assert cache.disk_stats.hits == 1

    def test_valid_predicate_applies_to_disk_entries(self, tmp_path):
        cache = ContentCache("t", enabled=True, store=DiskStore(tmp_path / "c"))
        cache.get_or_compute("aa11", lambda: 10)
        cache.clear()
        value = cache.get_or_compute("aa11", lambda: 20, valid=lambda v: v >= 15)
        assert value == 20  # stale disk entry rejected and overwritten
        assert cache.disk_stats.misses == 2
        cache.clear()
        assert cache.get_or_compute("aa11", lambda: 30, valid=lambda v: v >= 15) == 20

    def test_without_store_behaviour_unchanged(self):
        cache = ContentCache("t", enabled=True)
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 2)
        assert cache.stats_dict() == {"hits": 1, "misses": 1, "disk_hits": 0, "disk_misses": 0}

    def test_attach_disk_tier_to_global_regions(self, tmp_path):
        store = attach_disk_tier(tmp_path / "c")
        try:
            assert get_cache("fit").store is store
            assert get_cache("extrapolation").store is store
        finally:
            detach_disk_tier()
        assert get_cache("fit").store is None


class TestCrossProcessWarmStart:
    """The acceptance flow: process 2 re-fits zero kernels after process 1."""

    def test_fits_survive_a_simulated_process_restart(self, tmp_path):
        from repro.core.fitting import fit_kernel
        from repro.core.kernels import get_kernel
        from repro.engine.cache import FIT_CACHE, caches_enabled

        cores = np.arange(1, 13, dtype=float)
        values = 1e9 * (1.0 + 0.3 * cores + 0.02 * cores**2)
        store = attach_disk_tier(tmp_path / "c")
        try:
            with caches_enabled(True):
                cold = fit_kernel(get_kernel("Rat22"), cores, values)
                # "Restart": memory tier emptied, counters zeroed, disk kept.
                FIT_CACHE.clear()
                FIT_CACHE.reset_stats()
                warm = fit_kernel(get_kernel("Rat22"), cores, values)
            assert warm.params == cold.params
            assert warm.train_rmse == cold.train_rmse
            assert FIT_CACHE.disk_stats.hits == 1
            assert FIT_CACHE.disk_stats.misses == 0  # zero kernels re-fitted
        finally:
            detach_disk_tier()
            FIT_CACHE.clear()
            FIT_CACHE.reset_stats()
