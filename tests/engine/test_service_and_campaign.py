"""Engine integration tests: batched prediction service and campaign paths.

The central safety net of the engine refactor lives here: an
:class:`~repro.runner.ErrorCampaign` run serially, in parallel worker
processes, and with the fit cache enabled must produce *identical* rows, and
those rows must match a hand-rolled replica of the original (pre-engine)
serial loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimaConfig, EstimaPredictor
from repro.engine import SerialExecutor
from repro.engine.service import PredictionRequest, PredictionService
from repro.machine import get_machine
from repro.runner import ErrorCampaign, Experiment
from repro.workloads import get_workload

CAMPAIGN_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 24, 36, 48]
CAMPAIGN_WORKLOADS = ["genome", "blackscholes"]
CAMPAIGN_TARGETS = {"2 CPUs": 24, "4 CPUs": 48}


def _campaign(config: EstimaConfig | None = None, executor=None) -> ErrorCampaign:
    return ErrorCampaign(
        machine=get_machine("opteron48"),
        measurement_cores=12,
        targets=CAMPAIGN_TARGETS,
        config=config or EstimaConfig(),
        core_counts=CAMPAIGN_COUNTS,
        executor=executor,
    )


@pytest.fixture(scope="module")
def serial_campaign():
    return _campaign().run(CAMPAIGN_WORKLOADS)


class TestPredictionService:
    @pytest.fixture(scope="class")
    def measured(self, intruder_opteron_sweep):
        return intruder_opteron_sweep.restrict_to(12)

    def test_single_request_matches_direct_predictor(self, measured):
        service = PredictionService()
        prediction = service.predict(measured, 48)
        direct = EstimaPredictor().predict(measured, target_cores=48)
        np.testing.assert_array_equal(prediction.predicted_times, direct.predicted_times)
        assert prediction.scaling_factor.kernel_name == direct.scaling_factor.kernel_name

    def test_multi_target_batch_slices_the_max_target_curve(self, measured):
        service = PredictionService()
        low, high = service.predict_batch(
            [PredictionRequest(measured, 24), PredictionRequest(measured, 48)]
        )
        assert high.target_cores == 48
        assert low.target_cores == 24
        np.testing.assert_array_equal(low.predicted_times, high.predicted_times[:24])
        np.testing.assert_array_equal(low.stalls_per_core, high.stalls_per_core[:24])
        assert list(low.prediction_cores) == list(range(1, 25))

    def test_multi_target_batch_records_dedup_hits(self, measured):
        service = PredictionService()
        service.predict_batch(
            [PredictionRequest(measured, t) for t in (24, 36, 48)]
        )
        stats = service.cache_stats()["prediction"]
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_duplicate_requests_across_batches_hit(self, measured):
        service = PredictionService()
        first = service.predict(measured, 48)
        second = service.predict(measured, 48)
        assert first is second
        assert service.cache_stats()["prediction"]["hits"] == 1

    def test_results_in_request_order(self, measured):
        service = PredictionService()
        predictions = service.predict_batch(
            [
                PredictionRequest(measured, 48),
                PredictionRequest(measured, 16),
                PredictionRequest(measured, 32),
            ]
        )
        assert [p.target_cores for p in predictions] == [48, 16, 32]

    def test_baseline_requests_are_separate(self, measured):
        service = PredictionService()
        estima = service.predict(measured, 48)
        baseline = service.predict(measured, 48, baseline=True)
        assert estima.target_cores == baseline.target_cores == 48
        assert not np.array_equal(estima.predicted_times, baseline.predicted_times)

    def test_share_max_target_off_computes_each_target(self, measured):
        service = PredictionService(share_max_target=False)
        low, high = service.predict_batch(
            [PredictionRequest(measured, 24), PredictionRequest(measured, 48)]
        )
        assert service.cache_stats()["prediction"]["misses"] == 2
        direct_low = EstimaPredictor().predict(measured, target_cores=24)
        np.testing.assert_array_equal(low.predicted_times, direct_low.predicted_times)
        assert high.target_cores == 48

    def test_predictor_predict_batch_routes_through_service(self, measured):
        predictions = EstimaPredictor().predict_batch([(measured, 24), (measured, 48)])
        direct = EstimaPredictor().predict(measured, target_cores=24)
        np.testing.assert_array_equal(predictions[0].predicted_times, direct.predicted_times)
        assert predictions[1].target_cores == 48


class TestCampaignEquivalence:
    """Serial, parallel and cached campaigns must agree bit for bit."""

    def test_matches_pre_engine_serial_loop(self, serial_campaign):
        """Replica of the seed implementation: one experiment per workload at
        the largest target, every target label scored on that prediction."""
        experiment = Experiment(machine=get_machine("opteron48"))
        max_target = max(CAMPAIGN_TARGETS.values())
        for row in serial_campaign.rows:
            result = experiment.run(
                get_workload(row.workload),
                measurement_cores=12,
                target_cores=max_target,
                core_counts=CAMPAIGN_COUNTS,
            )
            for label, target in CAMPAIGN_TARGETS.items():
                eval_cores = [
                    int(c) for c in result.ground_truth.cores if 12 < c <= target
                ]
                estima = result.estima.evaluate(
                    result.ground_truth, core_counts=eval_cores
                ).max_error_pct
                baseline = result.baseline.evaluate(
                    result.ground_truth, core_counts=eval_cores
                ).max_error_pct
                assert row.max_errors_pct[label] == estima
                assert row.baseline_errors_pct[label] == baseline
            assert row.behaviour_correct == result.scaling_behaviour_correct()

    def test_parallel_rows_identical(self, serial_campaign):
        parallel = _campaign(executor="parallel:2").run(CAMPAIGN_WORKLOADS)
        assert parallel.rows == serial_campaign.rows
        assert parallel.engine_stats["executor"] == "parallel"

    def test_threads_rows_identical(self, serial_campaign):
        """The fit-level thread backend reproduces the serial rows bit for bit."""
        threaded = _campaign(executor="threads:2").run(CAMPAIGN_WORKLOADS)
        assert threaded.rows == serial_campaign.rows
        assert threaded.engine_stats["executor"] == "threads"
        # The backend really fanned fits out (its counters moved).
        assert threaded.engine_stats["executor_stats"]["tasks"] > 0

    def test_threads_via_config_rows_identical(self, serial_campaign):
        threaded = _campaign(config=EstimaConfig(executor="threads", max_workers=2)).run(
            CAMPAIGN_WORKLOADS
        )
        assert threaded.rows == serial_campaign.rows

    def test_fit_cached_rows_identical_and_cache_hits(self, serial_campaign):
        cached = _campaign(config=EstimaConfig(use_fit_cache=True)).run(
            CAMPAIGN_WORKLOADS
        )
        assert cached.rows == serial_campaign.rows
        caches = cached.engine_stats["caches"]
        # The acceptance criterion: a multi-target campaign reports cache hits.
        total_hits = sum(counts.get("hits", 0) for counts in caches.values())
        assert total_hits > 0
        assert caches["prediction"]["hits"] > 0
        assert caches["fit"]["misses"] > 0  # the fit cache was actually consulted

    def test_explicit_executor_instance(self, serial_campaign):
        explicit = _campaign(executor=SerialExecutor()).run(CAMPAIGN_WORKLOADS)
        assert explicit.rows == serial_campaign.rows
        # engine_stats is diagnostic only and excluded from result equality.
        assert explicit == serial_campaign

    def test_rows_in_input_order(self, serial_campaign):
        assert [row.workload for row in serial_campaign.rows] == CAMPAIGN_WORKLOADS

    def test_engine_stats_attached(self, serial_campaign):
        stats = serial_campaign.engine_stats
        assert stats["executor"] == "serial"
        assert stats["workloads"] == len(CAMPAIGN_WORKLOADS)
        # Serial campaigns share one service: 2 kinds x 2 targets x 2 workloads
        # = 8 requests, half of which are dedup hits.
        assert stats["caches"]["prediction"]["hits"] == 4


class TestFitStrategyEquivalence:
    """The vectorized fit grid must reproduce the serial strategy's rows.

    This is the acceptance pin of the vectorized engine
    (:mod:`repro.core.fastfit`): a campaign over the *full* workload
    registry set produces bit-identical rows under ``fit_strategy="serial"``
    and ``fit_strategy="vectorized"``.  A reduced core grid keeps the solve
    count (and runtime) down without losing any code path — linear and
    non-linear kernels, realism screening, checkpoint scoring and the
    allow-negative fallback all run for every workload.
    """

    # Measurement points below 12 cores plus the two evaluation targets.
    REDUCED_COUNTS = [1, 2, 4, 8, 12, 24, 48]

    def _strategy_campaign(self, strategy):
        from repro.engine.cache import clear_caches
        from repro.workloads import TABLE4_WORKLOADS

        clear_caches()
        campaign = ErrorCampaign(
            machine=get_machine("opteron48"),
            measurement_cores=12,
            targets=CAMPAIGN_TARGETS,
            config=EstimaConfig(fit_strategy=strategy),
            core_counts=self.REDUCED_COUNTS,
            executor=SerialExecutor(),
        )
        return campaign.run(list(TABLE4_WORKLOADS))

    def test_full_registry_rows_bit_identical(self):
        serial = self._strategy_campaign("serial")
        vectorized = self._strategy_campaign("vectorized")
        assert len(serial.rows) >= 19
        for s_row, v_row in zip(serial.rows, vectorized.rows):
            assert s_row == v_row, f"{s_row.workload}: {s_row} != {v_row}"
        assert serial == vectorized


class TestExperimentRunMany:
    def test_run_many_matches_run(self):
        experiment = Experiment(machine=get_machine("xeon20"))
        single = experiment.run(
            get_workload("genome"), measurement_cores=10, target_cores=20
        )
        [many] = experiment.run_many(
            ["genome"], measurement_cores=10, target_cores=20
        )
        np.testing.assert_array_equal(
            many.estima.predicted_times, single.estima.predicted_times
        )
        assert many.workload == "genome"

    def test_run_many_accepts_workload_objects_and_orders_results(self):
        experiment = Experiment(machine=get_machine("xeon20"))
        results = experiment.run_many(
            [get_workload("blackscholes"), "genome"],
            measurement_cores=10,
            target_cores=20,
        )
        assert [r.workload for r in results] == ["blackscholes", "genome"]
